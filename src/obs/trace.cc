#include "obs/trace.h"

#include <algorithm>
#include <sstream>

namespace lite::obs {

namespace {
std::string EscapeTrace(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Per-thread span nesting depth (wall-clock spans only).
thread_local int t_span_depth = 0;
}  // namespace

int CurrentThreadTid() {
  static std::atomic<int> next{0};
  thread_local int tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  thread_names_.clear();
  epoch_ = std::chrono::steady_clock::now();
  epoch_set_ = true;
  recording_.store(true, std::memory_order_release);
}

void TraceRecorder::Stop() {
  recording_.store(false, std::memory_order_release);
}

double TraceRecorder::NowMicros() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!epoch_set_) return 0.0;
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceRecorder::AddEvent(TraceEvent event) {
  if (!recording()) return;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void TraceRecorder::SetThreadName(int tid, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  thread_names_[tid] = name;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = events_;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string TraceRecorder::ToChromeTrace() const {
  std::vector<TraceEvent> events = Events();
  std::map<int, std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names = thread_names_;
  }
  // Every tid gets a metadata row; unnamed tids get a generated name so the
  // exported trace is self-describing.
  for (const auto& e : events) {
    if (!names.count(e.tid)) {
      names[e.tid] = (e.tid >= kSimulatedTidBase ? "sim " : "thread ") +
                     std::to_string(e.tid);
    }
  }
  std::ostringstream os;
  os.precision(3);
  os << std::fixed;
  os << "[\n";
  for (const auto& [tid, name] : names) {
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\"" << EscapeTrace(name) << "\"}},\n";
  }
  bool first = true;
  for (const auto& e : events) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"" << EscapeTrace(e.name)
       << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid << ",\"ts\":" << e.ts_us
       << ",\"dur\":" << e.dur_us << ",\"args\":{\"depth\":" << e.depth
       << (e.failed ? ",\"failed\":true" : "") << "}}";
  }
  os << "\n]\n";
  return os.str();
}

Span::Span(std::string name, Histogram* latency) {
  if (!Enabled()) return;
  active_ = true;
  name_ = std::move(name);
  latency_ = latency;
  start_ = std::chrono::steady_clock::now();
  ++t_span_depth;
  // Capture the recorder-relative open time up front: constructor order then
  // guarantees parent.ts <= child.ts, and destructor order child.end <=
  // parent.end, so recorded spans on one tid nest exactly (the testkit span
  // invariant relies on this, with no epsilon).
  TraceRecorder& recorder = TraceRecorder::Global();
  if (recorder.recording()) {
    ts_us_ = recorder.NowMicros();
    in_trace_ = true;
  }
}

Span::~Span() {
  if (!active_) return;
  --t_span_depth;
  auto end = std::chrono::steady_clock::now();
  double dur_us =
      std::chrono::duration<double, std::micro>(end - start_).count();
  if (latency_ != nullptr) latency_->Observe(dur_us * 1e-6);
  TraceRecorder& recorder = TraceRecorder::Global();
  if (!in_trace_ || !recorder.recording()) return;
  TraceEvent event;
  event.name = name_;
  event.tid = CurrentThreadTid();
  event.ts_us = ts_us_;
  event.dur_us = recorder.NowMicros() - ts_us_;
  event.depth = t_span_depth;
  event.failed = failed_;
  recorder.AddEvent(std::move(event));
}

}  // namespace lite::obs
