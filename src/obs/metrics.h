// Observability metrics: a process-wide registry of named counters, gauges
// and fixed-bucket latency histograms instrumenting the tuning stack
// (candidate scoring, encoder cache, adaptive updates, the thread pool, the
// resilient harness). Design constraints, in order:
//
//   * hot-path updates must never perturb results (observability is strictly
//     read-only with respect to the computation it observes) and must stay
//     cheap enough that scoring overhead is < 2% — counters and histograms
//     are sharded padded atomics, so PredictBatch workers on different
//     shards never contend on a cache line;
//   * everything is thread-safe: updates are lock-free, registration and
//     snapshots take a registry mutex (both are rare);
//   * the whole subsystem can be switched off at runtime (LITE_OBS=0, or
//     SetEnabled(false)); disabled updates are a relaxed atomic load and a
//     branch, and results are bit-identical either way (the differential
//     suite proves it).
//
// This library is a leaf: it depends on the standard library only, so every
// layer (util, sparksim, lite, tuning, testkit) can link it.
#ifndef LITE_OBS_METRICS_H_
#define LITE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace lite::obs {

/// Global observability switch. Initialized from the LITE_OBS environment
/// variable on first use ("0" disables, anything else — including unset —
/// enables); SetEnabled overrides it at runtime (benches and the
/// differential suite toggle it). Reading is one relaxed atomic load.
bool Enabled();
void SetEnabled(bool on);

namespace detail {
/// Number of independent shards per metric. Each shard lives on its own
/// cache line; a thread picks its shard once (round-robin at first use) so
/// concurrent writers on different shards never false-share.
inline constexpr size_t kShards = 16;

/// This thread's shard index in [0, kShards).
size_t ShardIndex();

struct alignas(64) PaddedCount {
  std::atomic<uint64_t> v{0};
};

struct alignas(64) PaddedSum {
  std::atomic<double> v{0.0};
};

/// CAS-loop add (std::atomic<double>::fetch_add is not portable pre-C++20
/// library support; this compiles everywhere and is equally relaxed).
inline void AtomicAdd(std::atomic<double>* a, double d) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}
}  // namespace detail

/// Monotonically increasing event count. Value() sums the shards, so exact
/// totals are observable once writers have been joined (or quiesced).
class Counter {
 public:
  void Inc(uint64_t n = 1) {
    if (!Enabled()) return;
    shards_[detail::ShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void Reset() {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  detail::PaddedCount shards_[detail::kShards];
};

/// Last-written (Set) or accumulated (Add) floating-point value.
class Gauge {
 public:
  void Set(double v) {
    if (!Enabled()) return;
    value_.v.store(v, std::memory_order_relaxed);
  }
  void Add(double d) {
    if (!Enabled()) return;
    detail::AtomicAdd(&value_.v, d);
  }
  double Value() const { return value_.v.load(std::memory_order_relaxed); }
  void Reset() { value_.v.store(0.0, std::memory_order_relaxed); }

 private:
  detail::PaddedSum value_;
};

struct HistogramSnapshot {
  /// Upper bounds of the finite buckets (ascending); an implicit +Inf
  /// overflow bucket follows, so bucket_counts.size() == bounds.size() + 1.
  std::vector<double> bounds;
  /// Per-bucket (non-cumulative) observation counts. Bucket i counts
  /// observations v with bounds[i-1] < v <= bounds[i] (Prometheus `le`
  /// semantics; the first bucket counts v <= bounds[0]).
  std::vector<uint64_t> bucket_counts;
  uint64_t count = 0;  ///< total observations == sum of bucket_counts.
  double sum = 0.0;    ///< sum of observed values.
};

/// Fixed-bucket histogram; bounds are immutable after construction.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);
  HistogramSnapshot Snapshot() const;
  void Reset();
  const std::vector<double>& bounds() const { return bounds_; }

  /// Default wall/simulated-latency buckets: log-spaced from 1 microsecond
  /// to the 7200 s failure cap, so one layout serves both recommendation
  /// wall times and simulated run durations.
  static const std::vector<double>& LatencyBounds();

 private:
  struct Shard {
    std::unique_ptr<std::atomic<uint64_t>[]> counts;  ///< bounds + overflow.
    detail::PaddedSum sum;
  };

  std::vector<double> bounds_;
  Shard shards_[detail::kShards];
};

struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Name -> metric registry. Get* registers on first use and returns a
/// pointer that stays valid for the registry's lifetime, so hot call sites
/// cache it in a function-local static. Names should be Prometheus-style
/// (`lite_recommendations_total`); an optional `{label="value"}` suffix is
/// passed through to the text exporter as a labeled series.
class MetricsRegistry {
 public:
  /// Process-wide registry used by all built-in instrumentation.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// Registers with `bounds` (LatencyBounds() when empty) on first use;
  /// later calls return the existing histogram regardless of `bounds`.
  Histogram* GetHistogram(std::string_view name,
                          std::vector<double> bounds = {});

  /// Consistent point-in-time copy of every registered metric.
  MetricsSnapshot Snapshot() const;
  /// Zeroes every metric; registered names and pointers stay valid.
  void Reset();

  /// Exporters. Formats are documented in docs/OBSERVABILITY.md; the JSON
  /// form round-trips through ParseMetricsJson.
  std::string ToJson() const;
  std::string ToPrometheusText() const;

 private:
  mutable std::mutex mu_;  ///< guards the maps; metric updates are lock-free.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Renders a snapshot in the same formats (the registry exporters are
/// Snapshot() + these).
std::string SnapshotToJson(const MetricsSnapshot& snap);
std::string SnapshotToPrometheusText(const MetricsSnapshot& snap);

/// Parses the ToJson() format back. Returns false (out unspecified) on
/// malformed input — never throws or reads out of bounds.
bool ParseMetricsJson(const std::string& json, MetricsSnapshot* out);

}  // namespace lite::obs

#endif  // LITE_OBS_METRICS_H_
