// Bagged random forest regression — the RFR model of Adaptive Candidate
// Generation (Section IV-A) that maps (datasize, application) to a knob's
// promising "mean value".
#ifndef LITE_ML_RANDOM_FOREST_H_
#define LITE_ML_RANDOM_FOREST_H_

#include <vector>

#include "ml/decision_tree.h"
#include "util/rng.h"

namespace lite {

struct ForestOptions {
  size_t num_trees = 32;
  TreeOptions tree;
  /// Bootstrap-sample fraction per tree.
  double subsample = 1.0;
};

class RandomForestRegressor {
 public:
  explicit RandomForestRegressor(ForestOptions options = {}) : options_(options) {}

  void Fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y, Rng* rng);

  /// Mean prediction over trees.
  double Predict(const std::vector<double>& features) const;

  /// Per-tree predictions (lets callers derive ensemble spread).
  std::vector<double> PredictPerTree(const std::vector<double>& features) const;

  size_t NumTrees() const { return trees_.size(); }

  /// Tree access (exposed for serialization).
  const std::vector<DecisionTreeRegressor>& trees() const { return trees_; }
  void set_trees(std::vector<DecisionTreeRegressor> trees) {
    trees_ = std::move(trees);
  }

 private:
  ForestOptions options_;
  std::vector<DecisionTreeRegressor> trees_;
};

}  // namespace lite

#endif  // LITE_ML_RANDOM_FOREST_H_
