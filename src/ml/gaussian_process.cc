#include "ml/gaussian_process.h"

#include <cmath>

#include "util/logging.h"
#include "util/stats.h"

namespace lite {

double GaussianProcess::Kernel(const std::vector<double>& a,
                               const std::vector<double>& b) const {
  double d2 = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    d2 += d * d;
  }
  double ls2 = options_.length_scale * options_.length_scale;
  return options_.signal_variance * std::exp(-0.5 * d2 / ls2);
}

double GaussianProcess::LogMarginalLikelihood(
    const std::vector<std::vector<double>>& x,
    const std::vector<double>& y_standardized, const GpOptions& options) {
  size_t n = x.size();
  GaussianProcess probe(options);
  Matrix k(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double v = probe.Kernel(x[i], x[j]);
      k.at(i, j) = v;
      k.at(j, i) = v;
    }
    k.at(i, i) += options.noise_variance;
  }
  Matrix chol = k;
  if (!CholeskyDecompose(&chol)) return -1e18;
  std::vector<double> alpha =
      BackSubstitute(chol, ForwardSubstitute(chol, y_standardized));
  double fit_term = 0.0;
  for (size_t i = 0; i < n; ++i) fit_term += y_standardized[i] * alpha[i];
  double logdet = 0.0;
  for (size_t i = 0; i < n; ++i) logdet += std::log(chol.at(i, i));
  return -0.5 * fit_term - logdet -
         0.5 * static_cast<double>(n) * std::log(2.0 * M_PI);
}

bool GaussianProcess::Fit(const std::vector<std::vector<double>>& x,
                          const std::vector<double>& y) {
  LITE_CHECK(!x.empty() && x.size() == y.size()) << "gp fit input";
  x_ = x;
  y_mean_ = Mean(y);
  y_std_ = StdDev(y);
  if (y_std_ < 1e-12) y_std_ = 1.0;

  if (options_.select_length_scale && !options_.length_scale_grid.empty()) {
    std::vector<double> ys(x.size());
    for (size_t i = 0; i < x.size(); ++i) ys[i] = (y[i] - y_mean_) / y_std_;
    double best_lml = -1e18;
    double best_ls = options_.length_scale;
    for (double ls : options_.length_scale_grid) {
      GpOptions probe = options_;
      probe.length_scale = ls;
      double lml = LogMarginalLikelihood(x, ys, probe);
      if (lml > best_lml) {
        best_lml = lml;
        best_ls = ls;
      }
    }
    options_.length_scale = best_ls;
  }

  size_t n = x.size();
  Matrix k(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double v = Kernel(x[i], x[j]);
      k.at(i, j) = v;
      k.at(j, i) = v;
    }
    k.at(i, i) += options_.noise_variance;
  }
  chol_ = k;
  double jitter = 1e-10;
  while (!CholeskyDecompose(&chol_)) {
    if (jitter > 1e-2) return false;
    chol_ = k;
    for (size_t i = 0; i < n; ++i) chol_.at(i, i) += jitter;
    jitter *= 100.0;
  }
  std::vector<double> centered(n);
  for (size_t i = 0; i < n; ++i) centered[i] = (y[i] - y_mean_) / y_std_;
  alpha_ = BackSubstitute(chol_, ForwardSubstitute(chol_, centered));
  return true;
}

GpPrediction GaussianProcess::Predict(const std::vector<double>& x_star) const {
  LITE_CHECK(!x_.empty()) << "gp predict before fit";
  size_t n = x_.size();
  std::vector<double> k_star(n);
  for (size_t i = 0; i < n; ++i) k_star[i] = Kernel(x_star, x_[i]);

  double mean_std = 0.0;
  for (size_t i = 0; i < n; ++i) mean_std += k_star[i] * alpha_[i];

  // var = k(x*,x*) - v^T v with v = L^-1 k_star.
  std::vector<double> v = ForwardSubstitute(chol_, k_star);
  double vv = 0.0;
  for (double vi : v) vv += vi * vi;
  double var_std = Kernel(x_star, x_star) - vv;
  if (var_std < 0.0) var_std = 0.0;

  GpPrediction out;
  out.mean = mean_std * y_std_ + y_mean_;
  out.variance = var_std * y_std_ * y_std_;
  return out;
}

double GaussianProcess::ExpectedImprovement(const std::vector<double>& x_star,
                                            double best_y, double xi) const {
  GpPrediction p = Predict(x_star);
  double sigma = std::sqrt(p.variance);
  if (sigma < 1e-12) return 0.0;
  // Minimization: improvement = best_y - mean - xi.
  double imp = best_y - p.mean - xi;
  double z = imp / sigma;
  double pdf = std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
  return imp * NormalCdf(z) + sigma * pdf;
}

}  // namespace lite
