#include "ml/linalg.h"

#include <cmath>

#include "util/logging.h"

namespace lite {

bool CholeskyDecompose(Matrix* a) {
  LITE_CHECK(a->rows() == a->cols()) << "Cholesky needs square matrix";
  size_t n = a->rows();
  for (size_t j = 0; j < n; ++j) {
    double d = a->at(j, j);
    for (size_t k = 0; k < j; ++k) d -= a->at(j, k) * a->at(j, k);
    if (d <= 0.0 || !std::isfinite(d)) return false;
    double ljj = std::sqrt(d);
    a->at(j, j) = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double s = a->at(i, j);
      for (size_t k = 0; k < j; ++k) s -= a->at(i, k) * a->at(j, k);
      a->at(i, j) = s / ljj;
    }
  }
  return true;
}

std::vector<double> ForwardSubstitute(const Matrix& l, const std::vector<double>& b) {
  size_t n = l.rows();
  LITE_CHECK(b.size() == n) << "ForwardSubstitute size";
  std::vector<double> y(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= l.at(i, k) * y[k];
    y[i] = s / l.at(i, i);
  }
  return y;
}

std::vector<double> BackSubstitute(const Matrix& l, const std::vector<double>& y) {
  size_t n = l.rows();
  LITE_CHECK(y.size() == n) << "BackSubstitute size";
  std::vector<double> x(n, 0.0);
  for (size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (size_t k = ii + 1; k < n; ++k) s -= l.at(k, ii) * x[k];
    x[ii] = s / l.at(ii, ii);
  }
  return x;
}

std::vector<double> SolveSpd(Matrix a, std::vector<double> b) {
  size_t n = a.rows();
  double jitter = 1e-10;
  for (int attempt = 0; attempt < 6; ++attempt) {
    Matrix chol = a;
    for (size_t i = 0; i < n; ++i) chol.at(i, i) += jitter;
    if (CholeskyDecompose(&chol)) {
      return BackSubstitute(chol, ForwardSubstitute(chol, b));
    }
    jitter *= 100.0;
  }
  return {};
}

}  // namespace lite
