// Least-squares gradient-boosted regression trees — the "LightGBM" baseline
// of Table VII. Boosting on the squared loss fits each tree to the current
// residuals, shrunk by a learning rate.
#ifndef LITE_ML_GBDT_H_
#define LITE_ML_GBDT_H_

#include <vector>

#include "ml/decision_tree.h"
#include "util/rng.h"

namespace lite {

struct GbdtOptions {
  size_t num_rounds = 80;
  double learning_rate = 0.1;
  TreeOptions tree{.max_depth = 5, .min_samples_leaf = 3, .min_samples_split = 6};
  /// Stochastic gradient boosting: row subsample per round.
  double subsample = 0.9;
};

class GbdtRegressor {
 public:
  explicit GbdtRegressor(GbdtOptions options = {}) : options_(options) {}

  void Fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y, Rng* rng);

  double Predict(const std::vector<double>& features) const;

  /// Training-set RMSE after fitting (reported by tests).
  double train_rmse() const { return train_rmse_; }
  size_t NumTrees() const { return trees_.size(); }

  /// Internal state access (exposed for serialization).
  double base_prediction() const { return base_prediction_; }
  double learning_rate() const { return options_.learning_rate; }
  const std::vector<DecisionTreeRegressor>& trees() const { return trees_; }
  void RestoreState(double base_prediction, double learning_rate,
                    std::vector<DecisionTreeRegressor> trees) {
    base_prediction_ = base_prediction;
    options_.learning_rate = learning_rate;
    trees_ = std::move(trees);
  }

 private:
  GbdtOptions options_;
  double base_prediction_ = 0.0;
  double train_rmse_ = 0.0;
  std::vector<DecisionTreeRegressor> trees_;
};

}  // namespace lite

#endif  // LITE_ML_GBDT_H_
