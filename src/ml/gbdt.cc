#include "ml/gbdt.h"

#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/stats.h"

namespace lite {

void GbdtRegressor::Fit(const std::vector<std::vector<double>>& x,
                        const std::vector<double>& y, Rng* rng) {
  LITE_CHECK(!x.empty() && x.size() == y.size()) << "gbdt fit input";
  trees_.clear();
  base_prediction_ = Mean(y);
  size_t n = x.size();
  std::vector<double> pred(n, base_prediction_);
  std::vector<double> residual(n, 0.0);

  size_t sample_n = std::max<size_t>(
      2, static_cast<size_t>(std::llround(options_.subsample * static_cast<double>(n))));

  for (size_t round = 0; round < options_.num_rounds; ++round) {
    for (size_t i = 0; i < n; ++i) residual[i] = y[i] - pred[i];
    std::vector<size_t> rows = (sample_n >= n)
        ? [&] { std::vector<size_t> all(n); std::iota(all.begin(), all.end(), 0); return all; }()
        : rng->SampleWithoutReplacement(n, sample_n);
    DecisionTreeRegressor tree(options_.tree);
    tree.Fit(x, residual, rows, rng);
    for (size_t i = 0; i < n; ++i) {
      pred[i] += options_.learning_rate * tree.Predict(x[i]);
    }
    trees_.push_back(std::move(tree));
  }

  double sse = 0.0;
  for (size_t i = 0; i < n; ++i) sse += (y[i] - pred[i]) * (y[i] - pred[i]);
  train_rmse_ = std::sqrt(sse / static_cast<double>(n));
}

double GbdtRegressor::Predict(const std::vector<double>& features) const {
  double s = base_prediction_;
  for (const auto& t : trees_) s += options_.learning_rate * t.Predict(features);
  return s;
}

}  // namespace lite
