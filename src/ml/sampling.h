// Configuration-space sampling strategies compared in Table VIII(b):
// uniform random sampling, Latin hypercube sampling (the strategy of
// AutoTune), and grid sampling. All operate in the unit cube; knob spaces
// denormalize the results.
#ifndef LITE_ML_SAMPLING_H_
#define LITE_ML_SAMPLING_H_

#include <vector>

#include "util/rng.h"

namespace lite {

/// `count` uniform points in [0,1]^dims.
std::vector<std::vector<double>> RandomSample(size_t count, size_t dims, Rng* rng);

/// Latin hypercube: each dimension's [0,1] range is divided into `count`
/// strata; every stratum is hit exactly once per dimension.
std::vector<std::vector<double>> LatinHypercubeSample(size_t count, size_t dims,
                                                      Rng* rng);

/// Uniform grid with `points_per_dim` levels per dimension; total size is
/// points_per_dim^dims (callers keep dims small).
std::vector<std::vector<double>> GridSample(size_t points_per_dim, size_t dims);

}  // namespace lite

#endif  // LITE_ML_SAMPLING_H_
