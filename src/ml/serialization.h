// Text (de)serialization for the classical models, enabling LiteSystem
// snapshots: a production deployment trains offline once and ships the
// artifacts; the online recommender loads them without re-running the
// corpus collection.
//
// Format: line-oriented, human-inspectable, versioned ("litemodel v1 <kind>"
// header). Readers are strict — any structural mismatch returns false and
// leaves the output object untouched.
#ifndef LITE_ML_SERIALIZATION_H_
#define LITE_ML_SERIALIZATION_H_

#include <iosfwd>
#include <string>

#include "ml/decision_tree.h"
#include "ml/gbdt.h"
#include "ml/random_forest.h"

namespace lite {

/// Writes/reads a single regression tree.
void SerializeTree(const DecisionTreeRegressor& tree, std::ostream* os);
bool DeserializeTree(std::istream* is, DecisionTreeRegressor* tree);

/// Writes/reads a random forest (options subset + trees).
void SerializeForest(const RandomForestRegressor& forest, std::ostream* os);
bool DeserializeForest(std::istream* is, RandomForestRegressor* forest);

/// Writes/reads a GBDT ensemble (base prediction, learning rate, trees).
void SerializeGbdt(const GbdtRegressor& gbdt, std::ostream* os);
bool DeserializeGbdt(std::istream* is, GbdtRegressor* gbdt);

/// File-level helpers; return false on I/O or format errors.
bool SaveForestToFile(const RandomForestRegressor& forest, const std::string& path);
bool LoadForestFromFile(const std::string& path, RandomForestRegressor* forest);
bool SaveGbdtToFile(const GbdtRegressor& gbdt, const std::string& path);
bool LoadGbdtFromFile(const std::string& path, GbdtRegressor* gbdt);

}  // namespace lite

#endif  // LITE_ML_SERIALIZATION_H_
