// Small dense linear algebra for the Gaussian-process surrogate: Cholesky
// factorization, triangular solves, and SPD system solving.
#ifndef LITE_ML_LINALG_H_
#define LITE_ML_LINALG_H_

#include <cstddef>
#include <vector>

namespace lite {

/// Row-major square/rectangular matrix of doubles (GP math needs the extra
/// precision that the float Tensor class does not provide).
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  double& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  std::vector<double>& vec() { return data_; }
  const std::vector<double>& vec() const { return data_; }

 private:
  size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// In-place Cholesky A = L L^T of a symmetric positive-definite matrix.
/// Returns false if the matrix is not (numerically) SPD. On success `a`
/// holds L in its lower triangle (upper untouched).
bool CholeskyDecompose(Matrix* a);

/// Solves L y = b (forward substitution) given lower-triangular L.
std::vector<double> ForwardSubstitute(const Matrix& l, const std::vector<double>& b);

/// Solves L^T x = y (back substitution) given lower-triangular L.
std::vector<double> BackSubstitute(const Matrix& l, const std::vector<double>& y);

/// Solves A x = b for SPD A via Cholesky; jitter is added to the diagonal
/// on failure (up to a few retries). Returns empty vector if singular.
std::vector<double> SolveSpd(Matrix a, std::vector<double> b);

}  // namespace lite

#endif  // LITE_ML_LINALG_H_
