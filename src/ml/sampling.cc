#include "ml/sampling.h"

#include <numeric>

#include "util/logging.h"

namespace lite {

std::vector<std::vector<double>> RandomSample(size_t count, size_t dims, Rng* rng) {
  std::vector<std::vector<double>> out(count, std::vector<double>(dims));
  for (auto& row : out) {
    for (double& v : row) v = rng->Uniform();
  }
  return out;
}

std::vector<std::vector<double>> LatinHypercubeSample(size_t count, size_t dims,
                                                      Rng* rng) {
  LITE_CHECK(count > 0) << "LHS count";
  std::vector<std::vector<double>> out(count, std::vector<double>(dims));
  std::vector<size_t> perm(count);
  for (size_t d = 0; d < dims; ++d) {
    std::iota(perm.begin(), perm.end(), 0);
    rng->Shuffle(&perm);
    for (size_t i = 0; i < count; ++i) {
      double lo = static_cast<double>(perm[i]) / static_cast<double>(count);
      out[i][d] = lo + rng->Uniform() / static_cast<double>(count);
    }
  }
  return out;
}

std::vector<std::vector<double>> GridSample(size_t points_per_dim, size_t dims) {
  LITE_CHECK(points_per_dim >= 1) << "grid points";
  size_t total = 1;
  for (size_t d = 0; d < dims; ++d) total *= points_per_dim;
  std::vector<std::vector<double>> out(total, std::vector<double>(dims));
  for (size_t i = 0; i < total; ++i) {
    size_t rem = i;
    for (size_t d = 0; d < dims; ++d) {
      size_t level = rem % points_per_dim;
      rem /= points_per_dim;
      out[i][d] = (points_per_dim == 1)
                      ? 0.5
                      : static_cast<double>(level) / static_cast<double>(points_per_dim - 1);
    }
  }
  return out;
}

}  // namespace lite
