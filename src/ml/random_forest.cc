#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace lite {

void RandomForestRegressor::Fit(const std::vector<std::vector<double>>& x,
                                const std::vector<double>& y, Rng* rng) {
  LITE_CHECK(!x.empty() && x.size() == y.size()) << "forest fit input";
  trees_.clear();
  trees_.reserve(options_.num_trees);
  size_t n = x.size();
  size_t sample_n = std::max<size_t>(
      1, static_cast<size_t>(std::llround(options_.subsample * static_cast<double>(n))));

  TreeOptions topts = options_.tree;
  if (topts.max_features == 0) {
    // Random-forest default: sqrt(F) features per split (but at least 1).
    topts.max_features = std::max<size_t>(
        1, static_cast<size_t>(std::sqrt(static_cast<double>(x[0].size()))));
  }

  for (size_t t = 0; t < options_.num_trees; ++t) {
    std::vector<size_t> boot(sample_n);
    for (size_t i = 0; i < sample_n; ++i) boot[i] = rng->Index(n);
    DecisionTreeRegressor tree(topts);
    tree.Fit(x, y, boot, rng);
    trees_.push_back(std::move(tree));
  }
}

double RandomForestRegressor::Predict(const std::vector<double>& features) const {
  LITE_CHECK(!trees_.empty()) << "forest predict before fit";
  double s = 0.0;
  for (const auto& t : trees_) s += t.Predict(features);
  return s / static_cast<double>(trees_.size());
}

std::vector<double> RandomForestRegressor::PredictPerTree(
    const std::vector<double>& features) const {
  std::vector<double> out;
  out.reserve(trees_.size());
  for (const auto& t : trees_) out.push_back(t.Predict(features));
  return out;
}

}  // namespace lite
