#include "ml/serialization.h"

#include <fstream>
#include <iostream>
#include <sstream>

#include "util/atomic_file.h"

namespace lite {

namespace {
constexpr char kMagic[] = "litemodel";
constexpr char kVersion[] = "v1";

bool ReadHeader(std::istream* is, const std::string& kind) {
  std::string magic, version, k;
  if (!(*is >> magic >> version >> k)) return false;
  return magic == kMagic && version == kVersion && k == kind;
}

void WriteHeader(std::ostream* os, const std::string& kind) {
  *os << kMagic << " " << kVersion << " " << kind << "\n";
}
}  // namespace

void SerializeTree(const DecisionTreeRegressor& tree, std::ostream* os) {
  WriteHeader(os, "tree");
  os->precision(17);
  const auto& nodes = tree.nodes();
  *os << nodes.size() << "\n";
  for (const auto& n : nodes) {
    *os << n.feature << " " << n.threshold << " " << n.value << " " << n.left
        << " " << n.right << "\n";
  }
}

bool DeserializeTree(std::istream* is, DecisionTreeRegressor* tree) {
  if (!ReadHeader(is, "tree")) return false;
  size_t count = 0;
  if (!(*is >> count) || count > 10'000'000) return false;
  std::vector<DecisionTreeRegressor::Node> nodes(count);
  for (auto& n : nodes) {
    if (!(*is >> n.feature >> n.threshold >> n.value >> n.left >> n.right)) {
      return false;
    }
    long max_id = static_cast<long>(count);
    if (n.left >= max_id || n.right >= max_id) return false;
    if (n.feature >= 0 && (n.left < 0 || n.right < 0)) return false;
  }
  tree->set_nodes(std::move(nodes));
  return true;
}

void SerializeForest(const RandomForestRegressor& forest, std::ostream* os) {
  WriteHeader(os, "forest");
  *os << forest.trees().size() << "\n";
  for (const auto& t : forest.trees()) SerializeTree(t, os);
}

bool DeserializeForest(std::istream* is, RandomForestRegressor* forest) {
  if (!ReadHeader(is, "forest")) return false;
  size_t count = 0;
  if (!(*is >> count) || count > 100'000) return false;
  std::vector<DecisionTreeRegressor> trees(count);
  for (auto& t : trees) {
    if (!DeserializeTree(is, &t)) return false;
  }
  forest->set_trees(std::move(trees));
  return true;
}

void SerializeGbdt(const GbdtRegressor& gbdt, std::ostream* os) {
  WriteHeader(os, "gbdt");
  os->precision(17);
  *os << gbdt.base_prediction() << " " << gbdt.learning_rate() << " "
      << gbdt.trees().size() << "\n";
  for (const auto& t : gbdt.trees()) SerializeTree(t, os);
}

bool DeserializeGbdt(std::istream* is, GbdtRegressor* gbdt) {
  if (!ReadHeader(is, "gbdt")) return false;
  double base = 0.0, lr = 0.0;
  size_t count = 0;
  if (!(*is >> base >> lr >> count) || count > 100'000) return false;
  std::vector<DecisionTreeRegressor> trees(count);
  for (auto& t : trees) {
    if (!DeserializeTree(is, &t)) return false;
  }
  gbdt->RestoreState(base, lr, std::move(trees));
  return true;
}

bool SaveForestToFile(const RandomForestRegressor& forest, const std::string& path) {
  AtomicFileWriter w(path);
  if (!w.ok()) return false;
  SerializeForest(forest, &w.stream());
  return w.Commit();
}

bool LoadForestFromFile(const std::string& path, RandomForestRegressor* forest) {
  std::ifstream in(path);
  if (!in) return false;
  return DeserializeForest(&in, forest);
}

bool SaveGbdtToFile(const GbdtRegressor& gbdt, const std::string& path) {
  AtomicFileWriter w(path);
  if (!w.ok()) return false;
  SerializeGbdt(gbdt, &w.stream());
  return w.Commit();
}

bool LoadGbdtFromFile(const std::string& path, GbdtRegressor* gbdt) {
  std::ifstream in(path);
  if (!in) return false;
  return DeserializeGbdt(&in, gbdt);
}

}  // namespace lite
