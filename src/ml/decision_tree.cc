#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/logging.h"

namespace lite {

namespace {
double MeanOf(const std::vector<double>& y, const std::vector<size_t>& idx) {
  double s = 0.0;
  for (size_t i : idx) s += y[i];
  return idx.empty() ? 0.0 : s / static_cast<double>(idx.size());
}
}  // namespace

void DecisionTreeRegressor::Fit(const std::vector<std::vector<double>>& x,
                                const std::vector<double>& y,
                                const std::vector<size_t>& indices, Rng* rng) {
  LITE_CHECK(x.size() == y.size()) << "tree x/y size mismatch";
  LITE_CHECK(!indices.empty()) << "tree fit on empty index set";
  nodes_.clear();
  std::vector<size_t> idx = indices;
  Build(x, y, idx, 0, rng);
}

void DecisionTreeRegressor::Fit(const std::vector<std::vector<double>>& x,
                                const std::vector<double>& y, Rng* rng) {
  std::vector<size_t> idx(x.size());
  std::iota(idx.begin(), idx.end(), 0);
  Fit(x, y, idx, rng);
}

int DecisionTreeRegressor::Build(const std::vector<std::vector<double>>& x,
                                 const std::vector<double>& y,
                                 std::vector<size_t>& indices, size_t depth,
                                 Rng* rng) {
  int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].value = MeanOf(y, indices);

  if (depth >= options_.max_depth || indices.size() < options_.min_samples_split) {
    return node_id;
  }

  size_t num_features = x[0].size();
  std::vector<size_t> features;
  if (options_.max_features == 0 || options_.max_features >= num_features) {
    features.resize(num_features);
    std::iota(features.begin(), features.end(), 0);
  } else {
    features = rng->SampleWithoutReplacement(num_features, options_.max_features);
  }

  // Best split search: for each candidate feature, sort sample indices by the
  // feature and scan with prefix sums; cost O(F * n log n).
  double best_gain = 0.0;
  int best_feature = -1;
  double best_threshold = 0.0;

  double total_sum = 0.0, total_sq = 0.0;
  for (size_t i : indices) {
    total_sum += y[i];
    total_sq += y[i] * y[i];
  }
  double n_total = static_cast<double>(indices.size());
  double parent_sse = total_sq - total_sum * total_sum / n_total;

  std::vector<size_t> sorted = indices;
  for (size_t f : features) {
    std::sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
      return x[a][f] < x[b][f];
    });
    double left_sum = 0.0, left_sq = 0.0;
    for (size_t pos = 0; pos + 1 < sorted.size(); ++pos) {
      size_t i = sorted[pos];
      left_sum += y[i];
      left_sq += y[i] * y[i];
      // Can't split between equal feature values.
      if (x[sorted[pos]][f] == x[sorted[pos + 1]][f]) continue;
      size_t n_left = pos + 1;
      size_t n_right = sorted.size() - n_left;
      if (n_left < options_.min_samples_leaf || n_right < options_.min_samples_leaf) {
        continue;
      }
      double right_sum = total_sum - left_sum;
      double right_sq = total_sq - left_sq;
      double sse_left = left_sq - left_sum * left_sum / static_cast<double>(n_left);
      double sse_right = right_sq - right_sum * right_sum / static_cast<double>(n_right);
      double gain = parent_sse - sse_left - sse_right;
      if (gain > best_gain + 1e-12) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (x[sorted[pos]][f] + x[sorted[pos + 1]][f]);
      }
    }
  }

  if (best_feature < 0) return node_id;

  std::vector<size_t> left_idx, right_idx;
  for (size_t i : indices) {
    if (x[i][static_cast<size_t>(best_feature)] <= best_threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  if (left_idx.empty() || right_idx.empty()) return node_id;

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  int left = Build(x, y, left_idx, depth + 1, rng);
  int right = Build(x, y, right_idx, depth + 1, rng);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double DecisionTreeRegressor::Predict(const std::vector<double>& features) const {
  LITE_CHECK(!nodes_.empty()) << "predict before fit";
  int cur = 0;
  while (nodes_[static_cast<size_t>(cur)].feature >= 0) {
    const Node& n = nodes_[static_cast<size_t>(cur)];
    size_t f = static_cast<size_t>(n.feature);
    cur = (features[f] <= n.threshold) ? n.left : n.right;
  }
  return nodes_[static_cast<size_t>(cur)].value;
}

size_t DecisionTreeRegressor::Depth() const {
  // Iterative depth computation over the implicit tree.
  if (nodes_.empty()) return 0;
  size_t max_depth = 0;
  std::vector<std::pair<int, size_t>> stack{{0, 1}};
  while (!stack.empty()) {
    auto [id, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const Node& n = nodes_[static_cast<size_t>(id)];
    if (n.feature >= 0) {
      stack.push_back({n.left, d + 1});
      stack.push_back({n.right, d + 1});
    }
  }
  return max_depth;
}

}  // namespace lite
