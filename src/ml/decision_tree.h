// CART regression trees: the base learner for both RandomForestRegressor
// (Adaptive Candidate Generation, Section IV-A) and GbdtRegressor (the
// LightGBM-style baseline of Table VII).
#ifndef LITE_ML_DECISION_TREE_H_
#define LITE_ML_DECISION_TREE_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace lite {

/// Training options for a single regression tree.
struct TreeOptions {
  size_t max_depth = 8;
  size_t min_samples_leaf = 2;
  size_t min_samples_split = 4;
  /// Number of features considered per split; 0 = all (GBDT), otherwise a
  /// random subset (random forest style).
  size_t max_features = 0;
};

/// Binary regression tree with axis-aligned threshold splits minimizing
/// weighted child variance (equivalently maximizing variance reduction).
class DecisionTreeRegressor {
 public:
  explicit DecisionTreeRegressor(TreeOptions options = {}) : options_(options) {}

  /// Fits on rows `indices` of `x` (each row one sample) against `y`.
  /// Pass all indices for a plain fit; bootstrap samples for forests.
  void Fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y, const std::vector<size_t>& indices,
           Rng* rng);

  /// Convenience overload fitting on all samples.
  void Fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y, Rng* rng);

  double Predict(const std::vector<double>& features) const;

  size_t NumNodes() const { return nodes_.size(); }
  size_t Depth() const;

  /// Flat node storage (exposed for serialization).
  struct Node {
    int feature = -1;       // -1 for leaves.
    double threshold = 0.0;  // go left if x[feature] <= threshold.
    double value = 0.0;      // leaf prediction.
    int left = -1, right = -1;
  };
  const std::vector<Node>& nodes() const { return nodes_; }
  void set_nodes(std::vector<Node> nodes) { nodes_ = std::move(nodes); }

 private:
  int Build(const std::vector<std::vector<double>>& x,
            const std::vector<double>& y, std::vector<size_t>& indices,
            size_t depth, Rng* rng);

  TreeOptions options_;
  std::vector<Node> nodes_;
};

}  // namespace lite

#endif  // LITE_ML_DECISION_TREE_H_
