// Exact Gaussian-process regression with an ARD-free RBF kernel plus the
// Expected Improvement acquisition — the surrogate of the BO(2h) baseline
// (Section V-B), warm-started OtterTune-style from similar past instances.
#ifndef LITE_ML_GAUSSIAN_PROCESS_H_
#define LITE_ML_GAUSSIAN_PROCESS_H_

#include <vector>

#include "ml/linalg.h"

namespace lite {

struct GpOptions {
  double length_scale = 0.25;   ///< RBF length scale in normalized [0,1]^D space.
  double signal_variance = 1.0; ///< kernel amplitude.
  double noise_variance = 1e-4; ///< observation noise added to the diagonal.
  /// When set, Fit() picks the length scale from `length_scale_grid` by the
  /// log marginal likelihood of the (standardized) data instead of using
  /// `length_scale` directly.
  bool select_length_scale = false;
  std::vector<double> length_scale_grid = {0.1, 0.2, 0.35, 0.6, 1.0};
};

/// Prediction with uncertainty.
struct GpPrediction {
  double mean = 0.0;
  double variance = 0.0;
};

class GaussianProcess {
 public:
  explicit GaussianProcess(GpOptions options = {}) : options_(options) {}

  /// Fits the exact GP on inputs in [0,1]^D (callers normalize knobs) and
  /// standardized targets (Fit internally centers/scales y).
  /// Returns false if the kernel matrix could not be factorized.
  bool Fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y);

  GpPrediction Predict(const std::vector<double>& x_star) const;

  /// Expected improvement over the incumbent best (minimization). `xi`
  /// is the exploration margin.
  double ExpectedImprovement(const std::vector<double>& x_star,
                             double best_y, double xi = 0.01) const;

  size_t NumPoints() const { return x_.size(); }
  double length_scale() const { return options_.length_scale; }

  /// Log marginal likelihood of standardized targets under the current
  /// kernel (used by length-scale selection; exposed for tests).
  static double LogMarginalLikelihood(const std::vector<std::vector<double>>& x,
                                      const std::vector<double>& y_standardized,
                                      const GpOptions& options);

 private:
  double Kernel(const std::vector<double>& a, const std::vector<double>& b) const;

  GpOptions options_;
  std::vector<std::vector<double>> x_;
  std::vector<double> alpha_;   // K^-1 (y - mean) in standardized space.
  Matrix chol_;                 // lower Cholesky of K + noise I.
  double y_mean_ = 0.0, y_std_ = 1.0;
};

}  // namespace lite

#endif  // LITE_ML_GAUSSIAN_PROCESS_H_
