// RetrievalCache: zero-execution warm start for the serving layer
// (ROADMAP's retrieval-augmented recommendation cache, after arXiv
// 2503.03826). Two data structures behind one mutex:
//
//   * An embedding *index* of historical outcomes: one entry per
//     (tenant, workload) holding the workload embedding (the cached NECS
//     encoder outputs pooled by LoadedLiteModel::WorkloadEmbedding — no
//     extra forward passes on ingest), the best honest observed config and
//     its runtime. Populated from guardrail-grade feedback: failed and
//     censored runs never enter (the same rule that keeps them out of the
//     guardrail incumbent). Nearest-neighbor retrieval over the index
//     seeds the candidate pool in RunRecommendPipeline (warm start); the
//     index survives hot-swaps because it records *observations*, not
//     model outputs — seeds are always re-scored by the live model.
//
//   * A memoized response cache (*memo*) serving exact-repeat workloads
//     with zero model evaluations. Keys are (workload-embedding hash,
//     snapshot generation, tenant-policy fingerprint); values replay the
//     cached Recommendation verbatim. Invalidation is tied to snapshot
//     version and guardrail state:
//       - InstallSnapshot: OnSnapshotInstalled(gen) flushes the whole memo
//         and advances the live generation *before* the new snapshot is
//         published, and inserts are rejected unless their generation is
//         live — so a hit can never be served from a generation older than
//         the one being served (asserted via the event log, which records
//         both the entry's and the live generation on every hit).
//       - Quarantine: the guardrail's Admit() decision precedes any memo
//         lookup in the TuningService; non-CLOSED tenants bypass the memo
//         entirely and a tenant entering quarantine has its memo entries
//         flushed (OnTenantQuarantined). A regressed model's configs
//         cannot leak past the guardrail through the cache.
//
// Every mutation appends a CacheEvent (hit/miss/insert/bypass/invalidate)
// to a bounded event log — the determinism witness the replay tests diff,
// mirroring the guardrail's transition log. Every Stats field has a
// serve_retrieval_* metric twin bumped in the same critical section.
//
// The cache is inert by default (`enabled=false`): no RetrievalCache is
// constructed and the serving path is bit-identical to guardrailed PR 6
// serving (the `DiffRetrievalTransparency` differential; an enabled-but-
// cold cache is also bit-identical because seeds only ever *extend* the
// candidate pool and the pool argmin is a superset argmin).
//
// See docs/RETRIEVAL.md for the index schema, invalidation rules and
// metric catalog.
#ifndef LITE_SERVE_RETRIEVAL_CACHE_H_
#define LITE_SERVE_RETRIEVAL_CACHE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "lite/lite_system.h"
#include "sparksim/application.h"
#include "sparksim/environment.h"
#include "sparksim/knob.h"

namespace lite::serve {

struct RetrievalCacheOptions {
  /// Master switch. Disabled (the default) means the TuningService never
  /// constructs a RetrievalCache — the serving path is structurally
  /// unchanged, bit for bit.
  bool enabled = false;
  /// Nearest-neighbor configs retrieved as candidate-pool seeds per
  /// request. 0 disables warm-start seeding (memoization still works).
  size_t top_k_seeds = 4;
  /// Exact-repeat response memoization. Off = every request runs the full
  /// pipeline (warm-start seeding still applies).
  bool memoize = true;
  /// Index capacity: one entry per (tenant, workload); the oldest entry is
  /// evicted beyond this.
  size_t max_index_entries = 4096;
  /// Memo capacity (entries, FIFO eviction).
  size_t max_memo_entries = 4096;
  /// Workload-embedding cache capacity (entries, FIFO eviction).
  size_t max_embedding_entries = 1024;
  /// Event-log ring bound (oldest events dropped beyond it).
  size_t max_event_log = 65536;
};

/// Validates option ranges (zero capacities with the cache enabled, absurd
/// top-k from a negative value cast to size_t). Empty string = valid.
std::string ValidateRetrievalOptions(const RetrievalCacheOptions& options);

enum class CacheEventType {
  kHit = 0,         ///< memo hit: the cached Recommendation was replayed.
  kMiss = 1,        ///< memo lookup found nothing; full pipeline ran.
  kInsert = 2,      ///< memo entry stored.
  kBypass = 3,      ///< guardrail state non-CLOSED: memo skipped entirely.
  kIndexInsert = 4, ///< index entry inserted or improved.
  kInvalidateGeneration = 5,  ///< hot-swap flushed the memo.
  kInvalidateTenant = 6,      ///< quarantine flushed one tenant's entries.
};

/// "hit" / "miss" / "insert" / "bypass" / "index_insert" /
/// "invalidate_generation" / "invalidate_tenant" (metric label values).
const char* CacheEventName(CacheEventType type);

/// One cache event, in global publication order. The log is the
/// determinism witness: same seed + same request/feedback/swap stream =>
/// identical log (tests/retrieval_test.cc diffs it field by field).
struct CacheEvent {
  uint64_t seq = 0;
  CacheEventType type = CacheEventType::kMiss;
  std::string tenant;
  std::string app;
  /// The generation involved: the memo entry's generation for
  /// hit/insert, the new live generation for invalidations.
  uint64_t generation = 0;
  /// The live generation at the time of the event. A hit with
  /// generation != live_generation would be a stale-generation hit — the
  /// invariant the bench and property tests assert never happens.
  uint64_t live_generation = 0;
  /// Entries flushed (invalidations) or 0.
  uint64_t count = 0;
};

/// One warm-start seed retrieved from the index.
struct RetrievedSeed {
  spark::Config config;
  double distance = 0.0;          ///< L2 distance in embedding space.
  double observed_seconds = 0.0;  ///< the historical outcome.
};

class RetrievalCache {
 public:
  explicit RetrievalCache(RetrievalCacheOptions options);

  const RetrievalCacheOptions& options() const { return options_; }

  // --- Hashing / fingerprints (deterministic, FNV-1a based). -------------

  /// Raw workload identity: app name + data spec + environment, hashed
  /// knob- and model-independently. Keys the embedding cache and the index
  /// (stable across snapshot generations, unlike the embedding itself).
  static uint64_t WorkloadFingerprint(const spark::ApplicationSpec& app,
                                      const spark::DataSpec& data,
                                      const spark::ClusterEnv& env);

  /// Hash of the embedding bytes (seeded with `app` so distinct apps with
  /// degenerate equal embeddings cannot collide into one memo slot).
  static uint64_t HashEmbedding(const std::string& app,
                                const std::vector<double>& embedding);

  /// Incremental FNV-1a combinators for composing fingerprints (the
  /// TuningService builds the tenant-policy fingerprint with these).
  static uint64_t HashInit();
  static uint64_t HashCombine(uint64_t h, uint64_t v);
  static uint64_t HashCombine(uint64_t h, double v);
  static uint64_t HashCombine(uint64_t h, const std::string& s);

  /// Memoized responses are keyed on all three components: same workload
  /// (embedding hash), same model version (snapshot generation), same
  /// serving contract (tenant-policy fingerprint: tenant, effective seed,
  /// SLA deadline, exploration budget, pruning state). Any difference in
  /// any component is a miss.
  struct MemoKey {
    uint64_t workload_hash = 0;
    uint64_t generation = 0;
    uint64_t policy_fingerprint = 0;
    bool operator<(const MemoKey& o) const {
      if (workload_hash != o.workload_hash)
        return workload_hash < o.workload_hash;
      if (generation != o.generation) return generation < o.generation;
      return policy_fingerprint < o.policy_fingerprint;
    }
  };

  // --- Workload-embedding cache. -----------------------------------------

  /// Cached embedding for (fingerprint, generation); nullptr when absent.
  std::shared_ptr<const std::vector<double>> CachedEmbedding(
      uint64_t fingerprint, uint64_t generation) const;
  /// Stores (and returns) the embedding; returns the already-stored value
  /// when a concurrent request inserted the same key first.
  std::shared_ptr<const std::vector<double>> StoreEmbedding(
      uint64_t fingerprint, uint64_t generation,
      std::vector<double> embedding);

  // --- Index (warm-start retrieval). -------------------------------------

  /// Records one honest observed outcome. Keeps the best (lowest
  /// observed_seconds) config per (tenant, workload fingerprint);
  /// `incumbent` marks entries mirroring a guardrail incumbent update.
  /// Callers must never pass failed/censored runs (the TuningService drops
  /// them first — same gate as the adaptive-update batch).
  void InsertOutcome(const std::string& tenant, const std::string& app,
                     uint64_t workload_fingerprint,
                     const std::vector<double>& embedding,
                     const spark::Config& config, double observed_seconds,
                     uint64_t generation, bool incumbent);

  /// Top-k nearest index entries to `embedding` (L2, ascending distance;
  /// ties broken by insertion order, so retrieval is deterministic).
  /// Entries whose embedding dimension differs (a swapped-in model with a
  /// different encoder width) are skipped.
  std::vector<RetrievedSeed> Retrieve(const std::vector<double>& embedding,
                                      size_t k);

  // --- Memo. --------------------------------------------------------------

  /// Looks up a memoized recommendation. On a hit, copies the cached
  /// Recommendation into *rec (replayed verbatim — wall time and candidate
  /// count included) and logs kHit; on a miss logs kMiss.
  bool LookupMemo(const MemoKey& key, const std::string& tenant,
                  const std::string& app, LiteSystem::Recommendation* rec);

  /// Stores a memoized recommendation. Rejected (and counted in
  /// stale_inserts_rejected) when key.generation is not the live
  /// generation — an in-flight request racing a hot-swap must not plant an
  /// entry the flush already missed.
  void InsertMemo(const MemoKey& key, const std::string& tenant,
                  const std::string& app, const LiteSystem::Recommendation& rec);

  /// Logs that the guardrail state forced the request past the memo
  /// (kBypass) — quarantined or probing tenants never touch cached entries.
  void NoteBypass(const std::string& tenant, const std::string& app,
                  uint64_t generation);

  // --- Invalidation. ------------------------------------------------------

  /// Hot-swap: advances the live generation and flushes the entire memo
  /// (and stale embedding-cache entries). The TuningService calls this
  /// *before* publishing the new snapshot, so by the time any request can
  /// see generation `gen` the memo holds no older entries.
  void OnSnapshotInstalled(uint64_t generation);

  /// Quarantine: flushes the tenant's memo entries. Index entries are kept
  /// — they are honest observations, and retrieval seeds are re-scored by
  /// the live model rather than served verbatim.
  void OnTenantQuarantined(const std::string& tenant);

  uint64_t live_generation() const;

  // --- Persistence (index only; the memo is volatile by design). ---------

  /// Saves the index as a line-oriented text file (`literetrieval v1`).
  bool SaveIndex(const std::string& path) const;
  /// Loads an index file, replacing the current index on success. Unknown
  /// per-entry keys are skipped with a warning (forward compatibility, the
  /// snapshot-meta convention); structural damage — bad magic, truncation
  /// mid-entry, malformed values of known keys, absurd dimensions — fails
  /// cleanly with false and leaves the cache unchanged.
  bool LoadIndex(const std::string& path);

  // --- Introspection. -----------------------------------------------------

  /// Every field co-published with its serve_retrieval_* metric twin under
  /// the cache mutex (exact equality, the TuningService convention).
  struct Stats {
    uint64_t hits = 0;              ///< memoized responses served.
    uint64_t misses = 0;            ///< memo lookups that ran the pipeline.
    uint64_t inserts = 0;           ///< memo entries stored.
    uint64_t bypasses = 0;          ///< guardrail-forced memo bypasses.
    uint64_t index_inserts = 0;     ///< index entries inserted/improved.
    uint64_t index_evictions = 0;   ///< index entries evicted (capacity).
    uint64_t seeds_retrieved = 0;   ///< warm-start seeds returned.
    uint64_t generation_flushes = 0;  ///< OnSnapshotInstalled flushes.
    uint64_t tenant_flushes = 0;      ///< OnTenantQuarantined flushes.
    uint64_t invalidated_entries = 0; ///< memo entries flushed, total.
    uint64_t stale_inserts_rejected = 0;  ///< inserts racing a hot-swap.
  };
  Stats stats() const;

  size_t index_size() const;
  size_t memo_size() const;
  /// Full event log, in publication order (oldest may have been dropped
  /// past max_event_log).
  std::vector<CacheEvent> EventLog() const;

 private:
  struct IndexEntry {
    std::string tenant;
    std::string app;
    uint64_t fingerprint = 0;
    std::vector<double> embedding;
    spark::Config config;
    double observed_seconds = 0.0;
    uint64_t generation = 0;
    bool incumbent = false;
    uint64_t order = 0;  ///< insertion sequence (retrieval tie-break).
  };
  struct MemoEntry {
    std::string tenant;
    std::string app;
    LiteSystem::Recommendation rec;
  };

  void LogEvent(CacheEventType type, const std::string& tenant,
                const std::string& app, uint64_t generation, uint64_t count);

  RetrievalCacheOptions options_;
  mutable std::mutex mu_;
  uint64_t live_generation_ = 0;
  uint64_t event_seq_ = 0;
  uint64_t index_order_ = 0;
  std::map<std::pair<std::string, uint64_t>, IndexEntry> index_;
  std::deque<std::pair<std::string, uint64_t>> index_fifo_;
  std::map<MemoKey, MemoEntry> memo_;
  std::deque<MemoKey> memo_fifo_;
  std::map<std::pair<uint64_t, uint64_t>,
           std::shared_ptr<const std::vector<double>>>
      embeddings_;
  std::deque<std::pair<uint64_t, uint64_t>> embedding_fifo_;
  std::deque<CacheEvent> events_;
  Stats stats_;
};

}  // namespace lite::serve

#endif  // LITE_SERVE_RETRIEVAL_CACHE_H_
