#include "serve/recommend_pipeline.h"

#include <chrono>
#include <cmath>
#include <limits>
#include <set>

#include "lite/features.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/guardrail.h"
#include "sparksim/knob.h"
#include "util/logging.h"

namespace lite::serve {

namespace {
// Pipeline-side observability (see docs/OBSERVABILITY.md for the catalog).
// These resolve the same named metrics as the scoring instrumentation in
// lite_system.cc — MetricsRegistry::Global() returns one object per name,
// so every serving surface shares one set of series.
struct PipelineMetrics {
  obs::Counter* recommendations;
  obs::Counter* candidates_evaluated;
  obs::Counter* nonfinite_scores;
  obs::Counter* feedback_bad_stage;
  obs::Counter* sla_filtered;
  obs::Counter* sla_infeasible;
  obs::Counter* candidates_pinned;
  obs::Counter* seeded_candidates;
  obs::Histogram* recommend_seconds;

  static const PipelineMetrics& Get() {
    static const PipelineMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      return new PipelineMetrics{
          reg.GetCounter("lite_recommendations_total"),
          reg.GetCounter("lite_candidates_evaluated_total"),
          reg.GetCounter("lite_recommend_nonfinite_scores_total"),
          reg.GetCounter("lite_feedback_bad_stage_total"),
          reg.GetCounter("lite_sla_filtered_candidates_total"),
          reg.GetCounter("lite_sla_infeasible_total"),
          reg.GetCounter("lite_candidates_pinned_total"),
          reg.GetCounter("lite_seeded_candidates_total"),
          reg.GetHistogram("lite_recommend_seconds"),
      };
    }();
    return *m;
  }
};
}  // namespace

std::vector<double> ScoreCandidateSet(
    const spark::SparkRunner* runner, const Corpus& feature_space,
    const std::vector<const NecsModel*>& models,
    const spark::ApplicationSpec& app, const spark::DataSpec& data,
    const spark::ClusterEnv& env, const std::vector<spark::Config>& candidates,
    const ScoringOptions& options) {
  if (options.batched) {
    if (options.backend != QuantBackend::kExactFp32) {
      return ScoreCandidatesWithEnsembleQuantized(
          runner, feature_space, models, app, data, env, candidates,
          options.backend, options.threads);
    }
    return ScoreCandidatesWithEnsemble(runner, feature_space, models, app,
                                       data, env, candidates,
                                       options.threads);
  }
  if (options.backend != QuantBackend::kExactFp32) {
    LITE_WARN << "ScoreCandidateSet: quantized backend "
              << QuantBackendName(options.backend)
              << " requested with batched=false; the scalar loop is the "
                 "exact reference path — scoring exactly";
  }
  // Legacy scalar reference path: per-candidate featurization and one
  // graph-building forward per stage instance. Kept as the equivalence
  // baseline — bit-identical scores, no batching, no threads.
  std::vector<double> scores(candidates.size());
  CorpusBuilder builder(runner);
  for (size_t i = 0; i < candidates.size(); ++i) {
    CandidateEval ce = builder.FeaturizeCandidate(feature_space, app, data,
                                                  env, candidates[i]);
    double score = 0.0;
    for (const NecsModel* model : models) {
      double total = 0.0;
      for (size_t s = 0; s < ce.stage_instances.size(); ++s) {
        double target = model->PredictTarget(ce.stage_instances[s]);
        double reps = s < ce.stage_reps.size()
                          ? static_cast<double>(ce.stage_reps[s])
                          : 1.0;
        total += SecondsFromTarget(target) * reps;
      }
      score += std::log1p(std::max(total, 0.0));
    }
    score /= static_cast<double>(models.size());
    scores[i] = std::expm1(score);
  }
  return scores;
}

LiteSystem::Recommendation RunRecommendPipeline(
    const PipelineContext& ctx, const spark::ApplicationSpec& app,
    const spark::DataSpec& data, const spark::ClusterEnv& env,
    const ScoreFn& score) {
  LITE_CHECK(ctx.acg != nullptr) << "RunRecommendPipeline without a generator";
  const PipelineMetrics& metrics = PipelineMetrics::Get();
  obs::Span span("lite.recommend", metrics.recommend_seconds);
  auto t0 = std::chrono::steady_clock::now();

  Rng rng(ctx.seed ^ std::hash<std::string>{}(app.name));
  // Candidates come exclusively from the adaptive search region (Eq. 5
  // samples from S_w). Deliberately NOT adding the default configuration:
  // NECS is trained on small-data instances where frugal defaults are
  // near-optimal, so at large scale it would misrank the default ahead of
  // the region's configurations — the region is the scale-migration device.
  std::vector<spark::Config> sampled =
      ctx.acg->SampleCandidates(app, data, env, ctx.num_candidates, &rng);
  // Knob-importance pruning: pin every low-importance knob to the reference
  // (the tenant's incumbent), so the subsequent dedupe collapses candidates
  // that differ only in knobs the model is insensitive to. Scoring cost
  // shrinks with the pool; the knobs that matter still vary freely.
  if (ctx.knob_importance != nullptr && ctx.pin_reference != nullptr &&
      ctx.importance_keep_fraction < 1.0 &&
      ctx.pin_reference->size() == spark::kNumKnobs) {
    const std::vector<size_t> free_knobs =
        TopImportanceKnobs(*ctx.knob_importance, ctx.importance_keep_fraction);
    std::vector<bool> keep_free(spark::kNumKnobs, false);
    for (size_t k : free_knobs) {
      if (k < keep_free.size()) keep_free[k] = true;
    }
    for (spark::Config& c : sampled) {
      if (c.size() != spark::kNumKnobs) continue;
      for (size_t k = 0; k < spark::kNumKnobs; ++k) {
        if (!keep_free[k]) c[k] = (*ctx.pin_reference)[k];
      }
    }
    metrics.candidates_pinned->Inc(sampled.size());
  }
  std::vector<spark::Config> candidates = DedupeConfigs(std::move(sampled));
  // Resource-manager pre-check: drop configurations the cluster cannot even
  // schedule (static, no execution involved). Keep the raw set if the
  // filter would empty it.
  {
    std::vector<spark::Config> feasible;
    for (const auto& c : candidates) {
      if (spark::PlacementFeasible(env, c)) feasible.push_back(c);
    }
    if (!feasible.empty()) candidates = std::move(feasible);
  }
  // Warm-start seeds are appended last so the pool stays a strict superset
  // of the unseeded pool: each seed is feasibility-checked on its own
  // (dropping an infeasible seed never triggers the keep-raw fallback
  // above) and deduped against what is already in the pool.
  if (ctx.seed_candidates != nullptr && !ctx.seed_candidates->empty()) {
    std::set<spark::Config> have(candidates.begin(), candidates.end());
    size_t appended = 0;
    const spark::KnobSpace& space = spark::KnobSpace::Spark16();
    for (const spark::Config& seed : *ctx.seed_candidates) {
      if (seed.size() != spark::kNumKnobs) continue;
      // Seeds come from outside the sampler (a retrieval index, possibly
      // loaded from disk), so range-check before the placement math: a
      // config with executor.cores = 0 would divide by zero inside
      // PlacementFeasible.
      if (!space.IsValid(seed)) continue;
      if (!spark::PlacementFeasible(env, seed)) continue;
      if (have.insert(seed).second) {
        candidates.push_back(seed);
        ++appended;
      }
    }
    if (appended > 0) metrics.seeded_candidates->Inc(appended);
  }

  std::vector<double> scores = score(candidates);
  LITE_CHECK(scores.size() == candidates.size())
      << "score callback returned " << scores.size() << " scores for "
      << candidates.size() << " candidates";
  // SLA-aware argmin: candidates whose predicted runtime violates the
  // tenant's deadline are filtered before argmin; the plain argmin result
  // is kept as the fallback when no candidate meets the deadline (an SLA
  // must never leave the tenant with nothing to run). With the default
  // infinite deadline the filter never fires and this is the PR 5 argmin
  // bit for bit.
  const double deadline = ctx.sla_deadline_seconds;
  const bool sla_active = std::isfinite(deadline);
  LiteSystem::Recommendation best;
  best.predicted_seconds = std::numeric_limits<double>::infinity();
  double best_overall = std::numeric_limits<double>::infinity();
  size_t best_overall_index = candidates.size();
  size_t nonfinite = 0;
  size_t sla_filtered = 0;
  size_t best_index = candidates.size();
  for (size_t i = 0; i < candidates.size(); ++i) {
    // A NaN score fails every `<`, so without this guard an all-NaN (or
    // leading-NaN) vector silently wins with a default-constructed Config.
    if (!std::isfinite(scores[i])) {
      ++nonfinite;
      continue;
    }
    if (scores[i] < best_overall) {
      best_overall = scores[i];
      best_overall_index = i;
    }
    if (sla_active && scores[i] > deadline) {
      ++sla_filtered;
      continue;
    }
    if (scores[i] < best.predicted_seconds) {
      best.predicted_seconds = scores[i];
      best.config = candidates[i];
      best_index = i;
    }
  }
  if (nonfinite > 0) metrics.nonfinite_scores->Inc(nonfinite);
  if (sla_filtered > 0) metrics.sla_filtered->Inc(sla_filtered);
  if (best_index == candidates.size() && best_overall_index < candidates.size()) {
    // Every finite-scored candidate violated the deadline: fall back to the
    // fastest predicted candidate and record the infeasible SLA.
    LITE_WARN << "recommend(" << app.name << "): no candidate meets the "
              << deadline << "s SLA deadline (best predicted "
              << best_overall << "s); serving the fastest candidate";
    metrics.sla_infeasible->Inc();
    best.predicted_seconds = best_overall;
    best.config = candidates[best_overall_index];
    best_index = best_overall_index;
  }
  if (best_index == candidates.size() && !candidates.empty()) {
    LITE_WARN << "recommend(" << app.name << "): all " << candidates.size()
              << " candidate scores non-finite; falling back to the first "
                 "candidate";
    best.config = candidates[0];
    best.predicted_seconds = scores[0];
  }
  best.candidates_evaluated = candidates.size();
  metrics.recommendations->Inc();
  metrics.candidates_evaluated->Inc(candidates.size());
  auto t1 = std::chrono::steady_clock::now();
  best.recommend_wall_seconds =
      std::chrono::duration<double>(t1 - t0).count();
  return best;
}

std::vector<StageInstance> ExtractFeedbackInstances(
    const spark::SparkRunner* runner, const Corpus& feature_space,
    size_t max_stage_instances, const spark::ApplicationSpec& app,
    const spark::DataSpec& data, const spark::ClusterEnv& env,
    const spark::Config& config, const spark::AppRunResult& run,
    bool sentinel_labels) {
  spark::AppArtifacts artifacts = runner->instrumenter().Instrument(app);
  FeatureExtractor extractor(feature_space.vocab.get(),
                             feature_space.op_vocab.get(),
                             feature_space.max_code_tokens,
                             feature_space.bow_dims);
  // Subsample to the same per-run cap as offline training.
  std::vector<spark::StageRunResult> kept;
  size_t cap = max_stage_instances;
  size_t dropped = 0;
  std::vector<bool> seen(app.stages.size(), false);
  for (const auto& sr : run.stage_runs) {
    if (kept.size() >= cap) break;
    // A stage run that does not name a stage of `app` (malformed or
    // fault-injected result) would index `seen` and the featurizer out of
    // bounds — drop it and count it instead.
    if (sr.stage_index >= app.stages.size()) {
      ++dropped;
      continue;
    }
    if (!seen[sr.stage_index] || kept.size() < cap / 2) {
      seen[sr.stage_index] = true;
      kept.push_back(sr);
    }
  }
  if (dropped > 0) {
    PipelineMetrics::Get().feedback_bad_stage->Inc(dropped);
    LITE_WARN << "feedback(" << app.name << "): dropped " << dropped
              << " stage runs with out-of-range stage_index (app has "
              << app.stages.size() << " stages)";
  }
  double total = run.total_seconds;
  if (sentinel_labels) {
    double sentinel = runner->failure_cap_seconds();
    for (auto& sr : kept) {
      sr.seconds = sentinel;
      sr.failed = false;  // naive: the cap masquerades as a real label.
    }
    total = sentinel;
  }
  return extractor.ExtractRun(app, artifacts, data, env, config, kept, total,
                              /*app_instance_id=*/-2, /*app_id=*/-1);
}

}  // namespace lite::serve
