// TuningService: the concurrent recommendation server in front of the
// unified pipeline (serve/recommend_pipeline.h). ROADMAP's north star is a
// production-scale serving system under heavy concurrent traffic; this is
// the component that makes the recommendation path correct under
// concurrency:
//
//   * Immutable model snapshots behind an RCU-style hot-swap: the served
//     LoadedLiteModel is a shared_ptr published under a dedicated mutex
//     whose critical section is a bare pointer copy/swap (GCC 12's
//     std::atomic<std::shared_ptr> trips TSan inside _Sp_atomic, so the
//     pointer is published with a lock TSan can model). Requests copy the
//     pointer once and keep their snapshot alive through the shared_ptr
//     refcount (the "grace period"), so ReloadSnapshot under live traffic
//     never tears a request — parameter-server style, writers publish
//     whole versions and never block in-flight readers.
//   * Per-tenant sessions with their own RNG streams: each session carries
//     a seed; a request's candidate stream is seed ^ hash(app.name), so
//     sessions are mutually independent and a session seeded with the
//     snapshot's own seed reproduces LiteSystem::Recommend bit for bit
//     (the DiffServingEquivalence contract).
//   * Admission control with a bounded queue + backpressure over the
//     shared ThreadPool: at most `max_pending` requests are queued or
//     running; beyond that SubmitRecommend rejects immediately
//     (Response::rejected) instead of building an unbounded backlog.
//   * Off-path adaptive updates: feedback batches fine-tune a *clone* of
//     the current snapshot on a pool worker and hot-swap it in when done —
//     serving never blocks on model updates.
//
// See docs/SERVING.md for the architecture and the serve_* metric catalog.
#ifndef LITE_SERVE_TUNING_SERVICE_H_
#define LITE_SERVE_TUNING_SERVICE_H_

#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "lite/snapshot.h"
#include "serve/recommend_pipeline.h"

namespace lite::serve {

struct ServiceOptions {
  /// Admission bound: maximum requests queued or running at once. Further
  /// submissions are rejected immediately (backpressure).
  size_t max_pending = 64;
  /// Scoring options applied to every request (thread count, batched vs
  /// scalar). Results are bit-identical for every setting.
  ScoringOptions scoring;
  /// Feedback instances that trigger an off-path adaptive update (0
  /// disables automatic updates; ForceAdaptiveUpdate still works).
  size_t update_batch = 10;
  /// Per-run stage-instance subsample cap for feedback extraction (same
  /// role as CorpusOptions::max_stage_instances_per_run).
  size_t max_stage_instances_per_run = 12;
  /// Fine-tuning options for off-path updates. A restored snapshot carries
  /// no offline corpus, so the feedback batch doubles as the source-domain
  /// sample (the documented snapshot limitation).
  UpdateOptions update;
};

class TuningService {
 public:
  TuningService(const spark::SparkRunner* runner, ServiceOptions options);
  /// Drains in-flight requests and updates before destruction.
  ~TuningService();

  TuningService(const TuningService&) = delete;
  TuningService& operator=(const TuningService&) = delete;

  /// Loads a snapshot directory and swaps it in (initial load or hot-swap
  /// under traffic). Returns false and keeps serving the old snapshot when
  /// the directory does not load.
  bool LoadSnapshot(const std::string& dir);

  /// Swaps in an already-built model (takes ownership). The service's
  /// scoring options are applied to it.
  void InstallSnapshot(std::unique_ptr<LoadedLiteModel> model);

  /// The snapshot currently being served (nullptr before the first load).
  /// Callers keep it alive via the shared_ptr; a concurrent hot-swap never
  /// invalidates it.
  std::shared_ptr<const LoadedLiteModel> CurrentSnapshot() const;

  /// Opens a tenant session with its own RNG stream. `seed` = 0 adopts the
  /// served snapshot's seed, which makes the session's recommendations bit-
  /// identical to LiteSystem::Recommend / LoadedLiteModel::Recommend on the
  /// same snapshot. Returns the session id (never 0-cost to reuse across
  /// requests; sessions are cheap and live for the service's lifetime).
  int OpenSession(const std::string& tenant, uint64_t seed = 0);

  struct Response {
    bool ok = false;
    /// True when admission control turned the request away (backpressure);
    /// the request was never queued and had no side effects.
    bool rejected = false;
    std::string error;
    LiteSystem::Recommendation rec;
  };

  /// Asynchronous recommendation. `app` must outlive the request (catalog
  /// applications always do); data/env are copied. The returned future is
  /// always satisfied — with rejected=true under backpressure, ok=false on
  /// errors, ok=true otherwise.
  std::future<Response> SubmitRecommend(int session,
                                        const spark::ApplicationSpec& app,
                                        const spark::DataSpec& data,
                                        const spark::ClusterEnv& env);

  /// Synchronous convenience wrapper (runs on the calling thread — it does
  /// not consume a pool slot, so it cannot be rejected).
  Response Recommend(int session, const spark::ApplicationSpec& app,
                     const spark::DataSpec& data,
                     const spark::ClusterEnv& env);

  /// Queues one observed run as feedback for the session's tenant. When
  /// the accumulated batch reaches `update_batch`, an off-path adaptive
  /// update is scheduled (clone -> fine-tune -> hot-swap); serving
  /// continues on the old snapshot meanwhile. Returns false when no
  /// snapshot is loaded or the session id is unknown.
  bool SubmitFeedback(int session, const spark::ApplicationSpec& app,
                      const spark::DataSpec& data, const spark::ClusterEnv& env,
                      const spark::Config& config,
                      const spark::AppRunResult& run);

  /// Forces an off-path update with whatever feedback is pending (no-op
  /// when none). Blocks until the update has swapped in.
  UpdateStats ForceAdaptiveUpdate();

  /// Blocks until every submitted request has completed.
  void Drain();
  /// Blocks until no adaptive update is in flight.
  void DrainUpdates();

  size_t pending_feedback() const;

  struct Stats {
    uint64_t submitted = 0;  ///< SubmitRecommend calls (incl. rejected).
    uint64_t rejected = 0;   ///< turned away by admission control.
    uint64_t completed = 0;  ///< requests finished ok.
    uint64_t failed = 0;     ///< requests that threw.
    uint64_t hot_swaps = 0;  ///< snapshot swaps after the initial load.
    uint64_t adaptive_updates = 0;  ///< off-path updates swapped in.
  };
  Stats stats() const;

 private:
  Response RunRequest(const std::shared_ptr<const LoadedLiteModel>& snap,
                      uint64_t seed, const spark::ApplicationSpec& app,
                      const spark::DataSpec& data,
                      const spark::ClusterEnv& env) const;
  /// One pointer copy under snap_mu_ — the reader side of the hot-swap.
  std::shared_ptr<const LoadedLiteModel> SnapshotRef() const;
  /// Runs clone -> fine-tune -> swap for one feedback batch (pool worker).
  UpdateStats RunAdaptiveUpdate(std::vector<StageInstance> batch);
  void FinishRequest();

  const spark::SparkRunner* runner_;
  ServiceOptions options_;

  /// RCU publication point: snap_mu_ guards only the pointer copy/swap
  /// (nanoseconds); readers' shared_ptr copies keep retired snapshots
  /// alive for the length of their request.
  mutable std::mutex snap_mu_;
  std::shared_ptr<const LoadedLiteModel> snapshot_;

  struct Session {
    std::string tenant;
    uint64_t seed = 0;
  };

  mutable std::mutex mu_;  ///< sessions, feedback, stats, drain state.
  std::condition_variable cv_;
  std::vector<Session> sessions_;
  std::vector<StageInstance> feedback_;
  bool update_in_flight_ = false;
  size_t pending_ = 0;  ///< requests queued or running.
  Stats stats_;
};

}  // namespace lite::serve

#endif  // LITE_SERVE_TUNING_SERVICE_H_
