// TuningService: the concurrent recommendation server in front of the
// unified pipeline (serve/recommend_pipeline.h). ROADMAP's north star is a
// production-scale serving system under heavy concurrent traffic; this is
// the component that makes the recommendation path correct under
// concurrency:
//
//   * Immutable model snapshots behind an RCU-style hot-swap: the served
//     LoadedLiteModel is a shared_ptr published under a dedicated mutex
//     whose critical section is a bare pointer copy/swap (GCC 12's
//     std::atomic<std::shared_ptr> trips TSan inside _Sp_atomic, so the
//     pointer is published with a lock TSan can model). Requests copy the
//     pointer once and keep their snapshot alive through the shared_ptr
//     refcount (the "grace period"), so ReloadSnapshot under live traffic
//     never tears a request — parameter-server style, writers publish
//     whole versions and never block in-flight readers.
//   * Per-tenant sessions with their own RNG streams: each session carries
//     a seed; a request's candidate stream is seed ^ hash(app.name), so
//     sessions are mutually independent and a session seeded with the
//     snapshot's own seed reproduces LiteSystem::Recommend bit for bit
//     (the DiffServingEquivalence contract).
//   * Admission control with a bounded queue + backpressure over the
//     shared ThreadPool: at most `max_pending` requests are queued or
//     running; beyond that SubmitRecommend rejects immediately
//     (Response::rejected) instead of building an unbounded backlog.
//   * Off-path adaptive updates: feedback batches fine-tune a *clone* of
//     the current snapshot on a pool worker and hot-swap it in when done —
//     serving never blocks on model updates.
//   * An optional guardrail (serve/guardrail.h): per-tenant incumbent
//     fallbacks, a regression-tripped circuit breaker, exploration budgets
//     and SLA deadlines. Disabled by default — the unguarded service is
//     bit-identical to PR 5.
//   * An optional retrieval cache (serve/retrieval_cache.h): historical
//     outcomes indexed by workload embedding seed the candidate pool
//     (warm start), and exact-repeat workloads are served a memoized
//     Response with zero model evaluations, keyed on (embedding hash,
//     snapshot generation, tenant-policy fingerprint) so hot-swaps and
//     quarantines invalidate atomically. Disabled by default.
//
// See docs/SERVING.md for the architecture and the serve_* metric catalog,
// docs/GUARDRAILS.md for the guardrail, docs/RETRIEVAL.md for the cache.
#ifndef LITE_SERVE_TUNING_SERVICE_H_
#define LITE_SERVE_TUNING_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "lite/snapshot.h"
#include "serve/guardrail.h"
#include "serve/recommend_pipeline.h"
#include "serve/retrieval_cache.h"
#include "sparksim/resilient_runner.h"

namespace lite::serve {

/// Per-stage tuning endpoints (docs/STAGE_TUNING.md). `enabled=false` (the
/// default) is structurally inert: RecommendStaged degrades to the plain
/// response with zero overrides, Retune rejects, and the plain Recommend
/// path is never consulted either way — enabling the feature without
/// calling the staged endpoints is bit-identical to a service without it
/// (the DiffStageTuningTransparency contract).
struct StageTuningOptions {
  bool enabled = false;
  /// Grid resolution of the per-stage planner's coordinate search.
  int values_per_knob = 5;
};

struct ServiceOptions {
  /// Admission bound: maximum requests queued or running at once. Further
  /// submissions are rejected immediately (backpressure).
  size_t max_pending = 64;
  /// Scoring options applied to every request (thread count, batched vs
  /// scalar). Results are bit-identical for every setting.
  ScoringOptions scoring;
  /// Feedback instances that trigger an off-path adaptive update (0
  /// disables automatic updates; ForceAdaptiveUpdate still works).
  size_t update_batch = 10;
  /// Per-run stage-instance subsample cap for feedback extraction (same
  /// role as CorpusOptions::max_stage_instances_per_run).
  size_t max_stage_instances_per_run = 12;
  /// Fine-tuning options for off-path updates. A restored snapshot carries
  /// no offline corpus, so the feedback batch doubles as the source-domain
  /// sample (the documented snapshot limitation).
  UpdateOptions update;
  /// Guardrail configuration. `enabled=false` (the default) is structurally
  /// inert: no Guardrail is constructed and the serving path is unchanged.
  GuardrailOptions guardrail;
  /// Retrieval cache configuration (warm-start seeding + memoized
  /// responses). `enabled=false` (the default) is structurally inert: no
  /// RetrievalCache is constructed and the serving path is unchanged.
  RetrievalCacheOptions retrieval;
  /// Per-stage tuning endpoints. Inert by default.
  StageTuningOptions stage_tuning;
};

/// Validates a ServiceOptions bundle (zero admission bound, absurd thread
/// counts from a negative value cast to size_t, NaN guardrail budgets, ...).
/// Empty string = valid; otherwise a human-readable rejection reason. The
/// TuningService constructor throws std::invalid_argument with this message,
/// so misconfiguration fails loudly at construction instead of hanging or
/// serving garbage later.
std::string ValidateServiceOptions(const ServiceOptions& options);

class TuningService {
 public:
  /// Throws std::invalid_argument when ValidateServiceOptions rejects
  /// `options`.
  TuningService(const spark::SparkRunner* runner, ServiceOptions options);
  /// Drains in-flight requests and updates before destruction.
  ~TuningService();

  TuningService(const TuningService&) = delete;
  TuningService& operator=(const TuningService&) = delete;

  /// Loads a snapshot directory and swaps it in (initial load or hot-swap
  /// under traffic). Returns false and keeps serving the old snapshot when
  /// the directory does not load.
  bool LoadSnapshot(const std::string& dir);

  /// Swaps in an already-built model (takes ownership). The service's
  /// scoring options are applied to it.
  void InstallSnapshot(std::unique_ptr<LoadedLiteModel> model);

  /// The snapshot currently being served (nullptr before the first load).
  /// Callers keep it alive via the shared_ptr; a concurrent hot-swap never
  /// invalidates it.
  std::shared_ptr<const LoadedLiteModel> CurrentSnapshot() const;

  /// Called after every snapshot publication — initial load, manual
  /// InstallSnapshot, adaptive-update hot-swap — with the freshly served
  /// model. The model-distribution plane (src/modelplane/) attaches here
  /// to re-encode the snapshot as blobs and publish a new plane version.
  /// Invoked on the installing thread, outside the publication mutex;
  /// the listener must not call back into InstallSnapshot.
  using InstallListener =
      std::function<void(const std::shared_ptr<const LoadedLiteModel>&)>;
  void SetInstallListener(InstallListener listener);

  /// Opens a tenant session with its own RNG stream. `seed` = 0 adopts the
  /// served snapshot's seed, which makes the session's recommendations bit-
  /// identical to LiteSystem::Recommend / LoadedLiteModel::Recommend on the
  /// same snapshot. Returns the session id (never 0-cost to reuse across
  /// requests; sessions are cheap and live for the service's lifetime).
  int OpenSession(const std::string& tenant, uint64_t seed = 0);

  struct Response {
    bool ok = false;
    /// True when admission control turned the request away (backpressure);
    /// the request was never queued and had no side effects.
    bool rejected = false;
    /// True when the guardrail served the tenant's incumbent config verbatim
    /// (quarantine, exploration budget, or probing off-tick) — `rec.config`
    /// is the baseline, `rec.predicted_seconds` its best *observed* runtime,
    /// and zero candidates were evaluated.
    bool from_incumbent = false;
    /// True when this model recommendation was a half-open probe.
    bool probe = false;
    /// True when the response was a memoized retrieval-cache hit: `rec` is
    /// the cached Recommendation replayed verbatim (wall time and candidate
    /// count included) and zero model evaluations ran.
    bool from_cache = false;
    std::string error;
    LiteSystem::Recommendation rec;
  };

  /// Asynchronous recommendation. `app` must outlive the request (catalog
  /// applications always do); data/env are copied. The returned future is
  /// always satisfied — with rejected=true under backpressure, ok=false on
  /// errors, ok=true otherwise.
  std::future<Response> SubmitRecommend(int session,
                                        const spark::ApplicationSpec& app,
                                        const spark::DataSpec& data,
                                        const spark::ClusterEnv& env);

  /// Synchronous convenience wrapper (runs on the calling thread — it does
  /// not consume a pool slot, so it cannot be rejected).
  Response Recommend(int session, const spark::ApplicationSpec& app,
                     const spark::DataSpec& data,
                     const spark::ClusterEnv& env);

  /// Fine-grained recommendation: the plain response plus per-stage knob
  /// overrides planned with the snapshot's stage head. `base` is produced
  /// by the exact same path as Recommend() — guardrail, retrieval cache,
  /// metrics and all — and is bit-identical to calling Recommend directly.
  /// The planner only runs when the feature is enabled, the snapshot
  /// carries a head, AND the base response came from a live model pass:
  /// incumbent fallbacks, half-open probes and memoized cache hits are
  /// served as-is with zero overrides (the guardrail/retrieval decision
  /// outranks fine-grained planning, and staged plans are never memoized).
  struct StagedResponse {
    Response base;
    spark::StagedConfig staged;  ///< base.rec.config + planned overrides.
    /// Head-predicted totals of the un-overridden and planned configs
    /// (meaningful only when stage_tuned).
    double baseline_seconds = 0.0;
    double planned_seconds = 0.0;
    /// True when the per-stage planner ran on this request.
    bool stage_tuned = false;
  };
  StagedResponse RecommendStaged(int session,
                                 const spark::ApplicationSpec& app,
                                 const spark::DataSpec& data,
                                 const spark::ClusterEnv& env);

  /// AQE-style mid-job re-tune: given the staged config a job is running
  /// with and the stage events observed so far, re-plans the knobs of the
  /// remaining stages (sparksim/stage_planner.h documents the correction
  /// formula and the inertness contract). Rejects with ok=false when the
  /// feature is disabled, no snapshot/stage head is loaded, the session is
  /// unknown, or `current` fails ValidateStagedConfig (degenerate or
  /// out-of-range overrides never reach the planner).
  struct RetuneResponse {
    bool ok = false;
    std::string error;
    spark::StagedConfig staged;  ///< kept prefix + re-planned suffix.
    double correction = 1.0;
    size_t frontier = 0;
  };
  RetuneResponse Retune(int session, const spark::ApplicationSpec& app,
                        const spark::DataSpec& data,
                        const spark::ClusterEnv& env,
                        const spark::StagedConfig& current,
                        const std::vector<spark::StageEvent>& observed);

  /// Convenience overload: parses a JSON-lines event log (the simulator's
  /// Submission::event_log) and re-tunes from its stage events. Rejects on
  /// malformed logs.
  RetuneResponse Retune(int session, const spark::ApplicationSpec& app,
                        const spark::DataSpec& data,
                        const spark::ClusterEnv& env,
                        const spark::StagedConfig& current,
                        const std::string& event_log);

  /// Queues one observed run as feedback for the session's tenant. When
  /// the accumulated batch reaches `update_batch`, an off-path adaptive
  /// update is scheduled (clone -> fine-tune -> hot-swap); serving
  /// continues on the old snapshot meanwhile. Returns false when no
  /// snapshot is loaded or the session id is unknown. This overload treats
  /// the run as an honest, uncensored measurement of `run.total_seconds`.
  bool SubmitFeedback(int session, const spark::ApplicationSpec& app,
                      const spark::DataSpec& data, const spark::ClusterEnv& env,
                      const spark::Config& config,
                      const spark::AppRunResult& run);

  /// Fault-aware overload for runs measured through the resilient harness:
  /// the outcome's failed/censored flags feed the guardrail's regression
  /// detector, and failed or censored runs are *dropped* from the adaptive
  /// update batch (their capped sentinel labels would drag the model toward
  /// the failure cap — counted in serve_feedback_dropped_bad_total).
  bool SubmitFeedback(int session, const spark::ApplicationSpec& app,
                      const spark::DataSpec& data, const spark::ClusterEnv& env,
                      const spark::Config& config,
                      const spark::MeasureOutcome& outcome);

  /// The guardrail, or nullptr when options.guardrail.enabled is false.
  /// Exposes breaker states, the transition log and guardrail stats.
  Guardrail* guardrail() const { return guardrail_.get(); }

  /// The retrieval cache, or nullptr when options.retrieval.enabled is
  /// false. Exposes the index, memo stats and the cache event log.
  RetrievalCache* retrieval() const { return retrieval_.get(); }

  /// Installs a per-tenant serving policy (SLA deadline, exploration
  /// budget). Throws std::invalid_argument on invalid policies; no-op with
  /// a warning when the guardrail is disabled.
  void SetTenantPolicy(const std::string& tenant, TenantPolicy policy);

  /// Forces an off-path update with whatever feedback is pending (no-op
  /// when none). Blocks until the update has swapped in.
  UpdateStats ForceAdaptiveUpdate();

  /// Blocks until every submitted request has completed.
  void Drain();
  /// Blocks until no adaptive update is in flight.
  void DrainUpdates();

  size_t pending_feedback() const;

  /// Request/lifecycle counters. Every field is co-published with its
  /// serve_* metric twin under the same mutex (the increment and the
  /// Counter::Inc happen in one critical section), so after Drain() +
  /// DrainUpdates() a Stats snapshot and a metrics snapshot agree *exactly*
  /// — tools/lite_serve asserts equality, not tolerance.
  struct Stats {
    uint64_t submitted = 0;  ///< SubmitRecommend calls (incl. rejected).
    uint64_t rejected = 0;   ///< turned away by admission control.
    uint64_t completed = 0;  ///< requests finished ok.
    uint64_t failed = 0;     ///< requests that threw.
    uint64_t hot_swaps = 0;  ///< snapshot swaps after the initial load.
    uint64_t adaptive_updates = 0;  ///< off-path updates swapped in.
    uint64_t sessions = 0;          ///< OpenSession calls.
    uint64_t feedback_instances = 0;  ///< stage instances queued as feedback.
    uint64_t bad_feedback_dropped = 0;  ///< failed/censored runs kept out of
                                        ///< the update batch.
    uint64_t stage_plans = 0;  ///< RecommendStaged requests that planned.
    uint64_t retunes = 0;      ///< Retune requests that re-planned.
  };
  Stats stats() const;

 private:
  Response RunRequest(const std::shared_ptr<const LoadedLiteModel>& snap,
                      uint64_t seed, const std::string& tenant,
                      const spark::ApplicationSpec& app,
                      const spark::DataSpec& data,
                      const spark::ClusterEnv& env) const;
  /// One pointer copy under snap_mu_ — the reader side of the hot-swap.
  std::shared_ptr<const LoadedLiteModel> SnapshotRef() const;
  /// Shared body of both SubmitFeedback overloads.
  bool SubmitFeedbackRun(int session, const spark::ApplicationSpec& app,
                         const spark::DataSpec& data,
                         const spark::ClusterEnv& env,
                         const spark::Config& config,
                         const spark::AppRunResult& run,
                         double observed_seconds, bool failed, bool censored);
  /// Runs clone -> fine-tune -> swap for one feedback batch (pool worker).
  UpdateStats RunAdaptiveUpdate(std::vector<StageInstance> batch);
  void FinishRequest();

  const spark::SparkRunner* runner_;
  ServiceOptions options_;
  /// Non-null iff options_.guardrail.enabled. Internally synchronized; the
  /// unique_ptr itself is set once in the constructor and never reseated.
  std::unique_ptr<Guardrail> guardrail_;
  /// Non-null iff options_.retrieval.enabled. Internally synchronized; set
  /// once in the constructor and never reseated.
  std::unique_ptr<RetrievalCache> retrieval_;
  /// Snapshot generation allocator, bumped by every InstallSnapshot. The
  /// installed generation is carried on the LoadedLiteModel itself
  /// (snap->generation()), so requests read a consistent (model, version)
  /// pair off one pointer; it keys the guardrail's per-family
  /// knob-importance cache and the retrieval cache's memo entries.
  std::atomic<uint64_t> generation_{0};

  /// RCU publication point: snap_mu_ guards only the pointer copy/swap
  /// (nanoseconds); readers' shared_ptr copies keep retired snapshots
  /// alive for the length of their request.
  mutable std::mutex snap_mu_;
  std::shared_ptr<const LoadedLiteModel> snapshot_;

  struct Session {
    std::string tenant;
    uint64_t seed = 0;
  };

  mutable std::mutex listener_mu_;  ///< guards install_listener_.
  InstallListener install_listener_;

  mutable std::mutex mu_;  ///< sessions, feedback, stats, drain state.
  std::condition_variable cv_;
  std::vector<Session> sessions_;
  std::vector<StageInstance> feedback_;
  bool update_in_flight_ = false;
  size_t pending_ = 0;  ///< requests queued or running.
  Stats stats_;
};

}  // namespace lite::serve

#endif  // LITE_SERVE_TUNING_SERVICE_H_
