#include "serve/retrieval_cache.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"
#include "util/atomic_file.h"
#include "util/logging.h"

namespace lite::serve {

namespace {

constexpr char kIndexMagic[] = "literetrieval";
constexpr char kIndexVersion[] = "v1";
// Structural sanity bounds for LoadIndex: a fuzzed count or dimension
// beyond these is damage, not data.
constexpr size_t kMaxLoadEntries = 1 << 20;
constexpr size_t kMaxLoadDim = 1 << 16;

// FNV-1a, the repo's convention for content fingerprints (golden MANIFEST,
// importance seeds). Deterministic across runs on one platform.
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvBytes(uint64_t h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t FnvString(uint64_t h, const std::string& s) {
  return FnvBytes(h, s.data(), s.size());
}

uint64_t FnvDouble(uint64_t h, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return FnvBytes(h, &bits, sizeof(bits));
}

// Retrieval-cache observability (docs/RETRIEVAL.md lists the catalog).
// Co-publication invariant: every counter has a RetrievalCache::Stats twin
// bumped in the same mu_ critical section, so an idle cache's Stats and
// metrics deltas agree exactly (the TuningService convention).
struct RetrievalMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* inserts;
  obs::Counter* bypasses;
  obs::Counter* index_inserts;
  obs::Counter* index_evictions;
  obs::Counter* seeds;
  obs::Counter* generation_flushes;
  obs::Counter* tenant_flushes;
  obs::Counter* invalidated;
  obs::Counter* stale_rejected;
  obs::Gauge* index_size;
  obs::Gauge* memo_size;

  static const RetrievalMetrics& Get() {
    static const RetrievalMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      return new RetrievalMetrics{
          reg.GetCounter("serve_retrieval_hits_total"),
          reg.GetCounter("serve_retrieval_misses_total"),
          reg.GetCounter("serve_retrieval_inserts_total"),
          reg.GetCounter("serve_retrieval_bypasses_total"),
          reg.GetCounter("serve_retrieval_index_inserts_total"),
          reg.GetCounter("serve_retrieval_index_evictions_total"),
          reg.GetCounter("serve_retrieval_seeds_total"),
          reg.GetCounter("serve_retrieval_generation_flushes_total"),
          reg.GetCounter("serve_retrieval_tenant_flushes_total"),
          reg.GetCounter("serve_retrieval_invalidated_entries_total"),
          reg.GetCounter("serve_retrieval_stale_inserts_rejected_total"),
          reg.GetGauge("serve_retrieval_index_size"),
          reg.GetGauge("serve_retrieval_memo_size"),
      };
    }();
    return *m;
  }
};

// Reads the remainder of the line as a string value, stripping the single
// separating space (tenant/app names may contain spaces).
std::string ReadLineValue(std::istream* in) {
  std::string rest;
  std::getline(*in, rest);
  if (!rest.empty() && rest.front() == ' ') rest.erase(rest.begin());
  return rest;
}

}  // namespace

std::string ValidateRetrievalOptions(const RetrievalCacheOptions& options) {
  if (!options.enabled) return "";
  // size_t has no negative values: a caller writing `top_k_seeds = -1`
  // gets a wrapped astronomical count instead.
  constexpr size_t kMaxTopK = 4096;
  if (options.top_k_seeds > kMaxTopK) {
    return "retrieval.top_k_seeds is implausibly large (negative value cast "
           "to size_t?)";
  }
  if (options.max_index_entries == 0) {
    return "retrieval.max_index_entries must be > 0 (the index could never "
           "hold an outcome)";
  }
  if (options.memoize && options.max_memo_entries == 0) {
    return "retrieval.max_memo_entries must be > 0 when memoization is on";
  }
  if (options.max_embedding_entries == 0) {
    return "retrieval.max_embedding_entries must be > 0";
  }
  if (options.max_event_log == 0) {
    return "retrieval.max_event_log must be > 0 (the determinism witness "
           "would be empty)";
  }
  return "";
}

const char* CacheEventName(CacheEventType type) {
  switch (type) {
    case CacheEventType::kHit: return "hit";
    case CacheEventType::kMiss: return "miss";
    case CacheEventType::kInsert: return "insert";
    case CacheEventType::kBypass: return "bypass";
    case CacheEventType::kIndexInsert: return "index_insert";
    case CacheEventType::kInvalidateGeneration: return "invalidate_generation";
    case CacheEventType::kInvalidateTenant: return "invalidate_tenant";
  }
  return "unknown";
}

RetrievalCache::RetrievalCache(RetrievalCacheOptions options)
    : options_(std::move(options)) {}

uint64_t RetrievalCache::WorkloadFingerprint(const spark::ApplicationSpec& app,
                                             const spark::DataSpec& data,
                                             const spark::ClusterEnv& env) {
  uint64_t h = kFnvOffset;
  h = FnvString(h, app.name);
  h = FnvDouble(h, data.size_mb);
  h = FnvDouble(h, static_cast<double>(data.num_rows));
  h = FnvDouble(h, static_cast<double>(data.num_cols));
  h = FnvDouble(h, static_cast<double>(data.iterations));
  h = FnvDouble(h, static_cast<double>(data.partitions));
  h = FnvString(h, env.name);
  for (double v : env.FeatureVector()) h = FnvDouble(h, v);
  h = FnvDouble(h, env.disk_mbps);  // not part of the 6-entry feature.
  return h;
}

uint64_t RetrievalCache::HashEmbedding(const std::string& app,
                                       const std::vector<double>& embedding) {
  uint64_t h = kFnvOffset;
  h = FnvString(h, app);
  for (double v : embedding) h = FnvDouble(h, v);
  return h;
}

uint64_t RetrievalCache::HashInit() { return kFnvOffset; }

uint64_t RetrievalCache::HashCombine(uint64_t h, uint64_t v) {
  return FnvBytes(h, &v, sizeof(v));
}

uint64_t RetrievalCache::HashCombine(uint64_t h, double v) {
  return FnvDouble(h, v);
}

uint64_t RetrievalCache::HashCombine(uint64_t h, const std::string& s) {
  return FnvString(h, s);
}

void RetrievalCache::LogEvent(CacheEventType type, const std::string& tenant,
                              const std::string& app, uint64_t generation,
                              uint64_t count) {
  // Caller holds mu_.
  CacheEvent e;
  e.seq = event_seq_++;
  e.type = type;
  e.tenant = tenant;
  e.app = app;
  e.generation = generation;
  e.live_generation = live_generation_;
  e.count = count;
  events_.push_back(std::move(e));
  while (events_.size() > options_.max_event_log) events_.pop_front();
}

std::shared_ptr<const std::vector<double>> RetrievalCache::CachedEmbedding(
    uint64_t fingerprint, uint64_t generation) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = embeddings_.find({fingerprint, generation});
  return it == embeddings_.end() ? nullptr : it->second;
}

std::shared_ptr<const std::vector<double>> RetrievalCache::StoreEmbedding(
    uint64_t fingerprint, uint64_t generation, std::vector<double> embedding) {
  std::lock_guard<std::mutex> lock(mu_);
  auto key = std::make_pair(fingerprint, generation);
  auto it = embeddings_.find(key);
  if (it != embeddings_.end()) return it->second;  // concurrent loser: reuse.
  auto stored =
      std::make_shared<const std::vector<double>>(std::move(embedding));
  embeddings_.emplace(key, stored);
  embedding_fifo_.push_back(key);
  while (embedding_fifo_.size() > options_.max_embedding_entries) {
    embeddings_.erase(embedding_fifo_.front());
    embedding_fifo_.pop_front();
  }
  return stored;
}

void RetrievalCache::InsertOutcome(const std::string& tenant,
                                   const std::string& app,
                                   uint64_t workload_fingerprint,
                                   const std::vector<double>& embedding,
                                   const spark::Config& config,
                                   double observed_seconds,
                                   uint64_t generation, bool incumbent) {
  // Structural sanity only: the index stores observations, and the serving
  // pipeline range-checks every seed before the placement math (so a
  // poisoned or stale-schema entry can be retrieved but never acted on).
  if (config.size() != spark::kNumKnobs || !std::isfinite(observed_seconds)) {
    return;
  }
  const RetrievalMetrics& m = RetrievalMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  auto key = std::make_pair(tenant, workload_fingerprint);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Keep the best observed config per (tenant, workload); refresh the
    // embedding to the most recent generation's view either way.
    if (observed_seconds <= it->second.observed_seconds) {
      it->second.app = app;
      it->second.embedding = embedding;
      it->second.config = config;
      it->second.observed_seconds = observed_seconds;
      it->second.generation = generation;
      it->second.incumbent = incumbent;
      ++stats_.index_inserts;
      m.index_inserts->Inc();
      LogEvent(CacheEventType::kIndexInsert, tenant, app, generation, 0);
    }
    return;
  }
  IndexEntry entry;
  entry.tenant = tenant;
  entry.app = app;
  entry.fingerprint = workload_fingerprint;
  entry.embedding = embedding;
  entry.config = config;
  entry.observed_seconds = observed_seconds;
  entry.generation = generation;
  entry.incumbent = incumbent;
  entry.order = index_order_++;
  index_.emplace(key, std::move(entry));
  index_fifo_.push_back(key);
  while (index_fifo_.size() > options_.max_index_entries) {
    index_.erase(index_fifo_.front());
    index_fifo_.pop_front();
    ++stats_.index_evictions;
    m.index_evictions->Inc();
  }
  ++stats_.index_inserts;
  m.index_inserts->Inc();
  m.index_size->Set(static_cast<double>(index_.size()));
  LogEvent(CacheEventType::kIndexInsert, tenant, app, generation, 0);
}

std::vector<RetrievedSeed> RetrievalCache::Retrieve(
    const std::vector<double>& embedding, size_t k) {
  std::vector<RetrievedSeed> result;
  if (k == 0 || embedding.empty()) return result;
  const RetrievalMetrics& m = RetrievalMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  struct Scored {
    double distance;
    uint64_t order;
    const IndexEntry* entry;
  };
  std::vector<Scored> scored;
  scored.reserve(index_.size());
  for (const auto& [key, entry] : index_) {
    if (entry.embedding.size() != embedding.size()) continue;
    double d2 = 0.0;
    for (size_t i = 0; i < embedding.size(); ++i) {
      const double diff = embedding[i] - entry.embedding[i];
      d2 += diff * diff;
    }
    scored.push_back({std::sqrt(d2), entry.order, &entry});
  }
  const size_t take = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + take, scored.end(),
                    [](const Scored& a, const Scored& b) {
                      if (a.distance != b.distance)
                        return a.distance < b.distance;
                      return a.order < b.order;  // deterministic tie-break.
                    });
  result.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    result.push_back({scored[i].entry->config, scored[i].distance,
                      scored[i].entry->observed_seconds});
  }
  if (!result.empty()) {
    stats_.seeds_retrieved += result.size();
    m.seeds->Inc(result.size());
  }
  return result;
}

bool RetrievalCache::LookupMemo(const MemoKey& key, const std::string& tenant,
                                const std::string& app,
                                LiteSystem::Recommendation* rec) {
  const RetrievalMetrics& m = RetrievalMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = memo_.find(key);
  if (it == memo_.end()) {
    ++stats_.misses;
    m.misses->Inc();
    LogEvent(CacheEventType::kMiss, tenant, app, key.generation, 0);
    return false;
  }
  *rec = it->second.rec;
  ++stats_.hits;
  m.hits->Inc();
  LogEvent(CacheEventType::kHit, tenant, app, key.generation, 0);
  return true;
}

void RetrievalCache::InsertMemo(const MemoKey& key, const std::string& tenant,
                                const std::string& app,
                                const LiteSystem::Recommendation& rec) {
  const RetrievalMetrics& m = RetrievalMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  if (key.generation != live_generation_) {
    // The request raced a hot-swap: its snapshot generation is already
    // retired, and OnSnapshotInstalled's flush has run. Planting the entry
    // now would leave a key no future flush covers.
    ++stats_.stale_inserts_rejected;
    m.stale_rejected->Inc();
    return;
  }
  if (memo_.emplace(key, MemoEntry{tenant, app, rec}).second) {
    memo_fifo_.push_back(key);
    while (memo_fifo_.size() > options_.max_memo_entries) {
      memo_.erase(memo_fifo_.front());
      memo_fifo_.pop_front();
    }
  }
  ++stats_.inserts;
  m.inserts->Inc();
  m.memo_size->Set(static_cast<double>(memo_.size()));
  LogEvent(CacheEventType::kInsert, tenant, app, key.generation, 0);
}

void RetrievalCache::NoteBypass(const std::string& tenant,
                                const std::string& app, uint64_t generation) {
  const RetrievalMetrics& m = RetrievalMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.bypasses;
  m.bypasses->Inc();
  LogEvent(CacheEventType::kBypass, tenant, app, generation, 0);
}

void RetrievalCache::OnSnapshotInstalled(uint64_t generation) {
  const RetrievalMetrics& m = RetrievalMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t flushed = memo_.size();
  memo_.clear();
  memo_fifo_.clear();
  // Stale-generation embeddings are unreachable once the live generation
  // advances; drop them rather than waiting for FIFO eviction.
  for (auto it = embeddings_.begin(); it != embeddings_.end();) {
    if (it->first.second != generation) {
      it = embeddings_.erase(it);
    } else {
      ++it;
    }
  }
  embedding_fifo_.erase(
      std::remove_if(embedding_fifo_.begin(), embedding_fifo_.end(),
                     [&](const std::pair<uint64_t, uint64_t>& k) {
                       return k.second != generation;
                     }),
      embedding_fifo_.end());
  live_generation_ = generation;
  ++stats_.generation_flushes;
  m.generation_flushes->Inc();
  stats_.invalidated_entries += flushed;
  if (flushed > 0) m.invalidated->Inc(flushed);
  m.memo_size->Set(0.0);
  LogEvent(CacheEventType::kInvalidateGeneration, "", "", generation, flushed);
}

void RetrievalCache::OnTenantQuarantined(const std::string& tenant) {
  const RetrievalMetrics& m = RetrievalMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t flushed = 0;
  for (auto it = memo_.begin(); it != memo_.end();) {
    if (it->second.tenant == tenant) {
      it = memo_.erase(it);
      ++flushed;
    } else {
      ++it;
    }
  }
  memo_fifo_.erase(std::remove_if(memo_fifo_.begin(), memo_fifo_.end(),
                                  [&](const MemoKey& k) {
                                    return memo_.find(k) == memo_.end();
                                  }),
                   memo_fifo_.end());
  ++stats_.tenant_flushes;
  m.tenant_flushes->Inc();
  stats_.invalidated_entries += flushed;
  if (flushed > 0) m.invalidated->Inc(flushed);
  m.memo_size->Set(static_cast<double>(memo_.size()));
  LogEvent(CacheEventType::kInvalidateTenant, tenant, "", live_generation_,
           flushed);
}

uint64_t RetrievalCache::live_generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_generation_;
}

bool RetrievalCache::SaveIndex(const std::string& path) const {
  std::vector<IndexEntry> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(index_.size());
    for (const auto& [key, entry] : index_) entries.push_back(entry);
  }
  // Deterministic file order: insertion sequence.
  std::sort(entries.begin(), entries.end(),
            [](const IndexEntry& a, const IndexEntry& b) {
              return a.order < b.order;
            });
  // Atomic publication (ISSUE 10): stream to <path>.tmp.<pid> and rename
  // after the stream verified. SaveIndex used to stream straight into the
  // final path, so a crash mid-write — or a model-plane pull replicating
  // the file concurrently — published a torn index that LoadIndex then had
  // to reject; now a reader observes either the previous committed index
  // or the complete new one.
  AtomicFileWriter w(path);
  if (!w.ok()) return false;
  std::ostream& out = w.stream();
  out.precision(17);
  out << kIndexMagic << " " << kIndexVersion << "\n";
  out << "entries " << entries.size() << "\n";
  for (const IndexEntry& e : entries) {
    out << "tenant " << e.tenant << "\n";
    out << "app " << e.app << "\n";
    out << "fingerprint " << e.fingerprint << "\n";
    out << "generation " << e.generation << "\n";
    out << "seconds " << e.observed_seconds << "\n";
    out << "incumbent " << (e.incumbent ? 1 : 0) << "\n";
    out << "embedding " << e.embedding.size();
    for (double v : e.embedding) out << " " << v;
    out << "\n";
    out << "config " << e.config.size();
    for (double v : e.config) out << " " << v;
    out << "\n";
    out << "end\n";
  }
  if (!w.Commit()) {
    obs::MetricsRegistry::Global()
        .GetCounter("lite_snapshot_save_failed_total")
        ->Inc();
    return false;
  }
  return true;
}

bool RetrievalCache::LoadIndex(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::string magic, version;
  if (!(in >> magic >> version) || magic != kIndexMagic ||
      version != kIndexVersion) {
    return false;
  }
  std::string key;
  size_t count = 0;
  if (!(in >> key) || key != "entries" || !(in >> count) ||
      count > kMaxLoadEntries) {
    return false;
  }
  std::vector<IndexEntry> entries;
  entries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    IndexEntry e;
    bool have_embedding = false;
    bool have_config = false;
    bool done = false;
    while (!done) {
      if (!(in >> key)) return false;  // truncation mid-entry.
      if (key == "end") {
        done = true;
      } else if (key == "tenant") {
        e.tenant = ReadLineValue(&in);
      } else if (key == "app") {
        e.app = ReadLineValue(&in);
      } else if (key == "fingerprint") {
        if (!(in >> e.fingerprint)) return false;
      } else if (key == "generation") {
        if (!(in >> e.generation)) return false;
      } else if (key == "seconds") {
        if (!(in >> e.observed_seconds) || !std::isfinite(e.observed_seconds)) {
          return false;
        }
      } else if (key == "incumbent") {
        int v = 0;
        if (!(in >> v)) return false;
        e.incumbent = v != 0;
      } else if (key == "embedding") {
        size_t dim = 0;
        if (!(in >> dim) || dim > kMaxLoadDim) return false;
        e.embedding.resize(dim);
        for (double& v : e.embedding) {
          // A non-finite coordinate would poison every L2 distance it
          // touches (NaN breaks partial_sort's strict weak ordering).
          if (!(in >> v) || !std::isfinite(v)) return false;
        }
        have_embedding = true;
      } else if (key == "config") {
        size_t dim = 0;
        if (!(in >> dim) || dim > kMaxLoadDim) return false;
        e.config.resize(dim);
        for (double& v : e.config) {
          if (!(in >> v) || !std::isfinite(v)) return false;
        }
        have_config = true;
      } else {
        // Unknown key: an index written by a newer binary that appended
        // per-entry fields. Skip the rest of the line (the snapshot-meta
        // forward-compat convention); malformed values of *known* keys
        // above still reject the file.
        std::string rest;
        std::getline(in, rest);
        LITE_WARN << "retrieval index: skipping unknown key '" << key << "'";
      }
    }
    if (!have_embedding || !have_config) return false;
    entries.push_back(std::move(e));
  }
  const RetrievalMetrics& m = RetrievalMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  index_.clear();
  index_fifo_.clear();
  for (IndexEntry& e : entries) {
    auto mkey = std::make_pair(e.tenant, e.fingerprint);
    e.order = index_order_++;
    if (index_.emplace(mkey, std::move(e)).second) {
      index_fifo_.push_back(mkey);
    }
  }
  while (index_fifo_.size() > options_.max_index_entries) {
    index_.erase(index_fifo_.front());
    index_fifo_.pop_front();
  }
  m.index_size->Set(static_cast<double>(index_.size()));
  return true;
}

RetrievalCache::Stats RetrievalCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t RetrievalCache::index_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

size_t RetrievalCache::memo_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memo_.size();
}

std::vector<CacheEvent> RetrievalCache::EventLog() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<CacheEvent>(events_.begin(), events_.end());
}

}  // namespace lite::serve
