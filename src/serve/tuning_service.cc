#include "serve/tuning_service.h"

#include <utility>

#include "lite/model_update.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace lite::serve {

namespace {
// Service-level observability (docs/SERVING.md lists the catalog; all
// series also appear in docs/OBSERVABILITY.md). Same sharded-atomic,
// never-perturbs-results contract as the lite_* metrics.
struct ServeMetrics {
  obs::Counter* requests;
  obs::Counter* rejected;
  obs::Counter* completed;
  obs::Counter* failed;
  obs::Counter* hot_swaps;
  obs::Counter* adaptive_updates;
  obs::Counter* sessions;
  obs::Counter* feedback_instances;
  obs::Gauge* pending;
  obs::Histogram* request_seconds;

  static const ServeMetrics& Get() {
    static const ServeMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      return new ServeMetrics{
          reg.GetCounter("serve_requests_total"),
          reg.GetCounter("serve_rejected_total"),
          reg.GetCounter("serve_completed_total"),
          reg.GetCounter("serve_failed_total"),
          reg.GetCounter("serve_hot_swaps_total"),
          reg.GetCounter("serve_adaptive_updates_total"),
          reg.GetCounter("serve_sessions_total"),
          reg.GetCounter("serve_feedback_instances_total"),
          reg.GetGauge("serve_pending_requests"),
          reg.GetHistogram("serve_request_seconds"),
      };
    }();
    return *m;
  }
};
}  // namespace

TuningService::TuningService(const spark::SparkRunner* runner,
                             ServiceOptions options)
    : runner_(runner), options_(std::move(options)) {
  LITE_CHECK(runner_ != nullptr) << "TuningService: null runner";
}

TuningService::~TuningService() {
  Drain();
  DrainUpdates();
}

bool TuningService::LoadSnapshot(const std::string& dir) {
  std::unique_ptr<LoadedLiteModel> model = LoadedLiteModel::Load(dir, runner_);
  if (model == nullptr) {
    LITE_WARN << "TuningService: snapshot at '" << dir
              << "' failed to load; keeping the current snapshot";
    return false;
  }
  InstallSnapshot(std::move(model));
  return true;
}

void TuningService::InstallSnapshot(std::unique_ptr<LoadedLiteModel> model) {
  LITE_CHECK(model != nullptr) << "InstallSnapshot: null model";
  model->set_scoring(options_.scoring);
  std::shared_ptr<const LoadedLiteModel> fresh = std::move(model);
  // RCU publish: readers that copied the old pointer keep it alive through
  // their shared_ptr copy; the retired snapshot is freed when the last
  // in-flight request drops it. The swap itself is the only work done
  // under snap_mu_.
  std::shared_ptr<const LoadedLiteModel> old;
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    old = std::move(snapshot_);
    snapshot_ = std::move(fresh);
  }
  if (old != nullptr) {
    ServeMetrics::Get().hot_swaps->Inc();
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.hot_swaps;
  }
}

std::shared_ptr<const LoadedLiteModel> TuningService::SnapshotRef() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  return snapshot_;
}

std::shared_ptr<const LoadedLiteModel> TuningService::CurrentSnapshot() const {
  return SnapshotRef();
}

int TuningService::OpenSession(const std::string& tenant, uint64_t seed) {
  ServeMetrics::Get().sessions->Inc();
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.push_back(Session{tenant, seed});
  return static_cast<int>(sessions_.size() - 1);
}

TuningService::Response TuningService::RunRequest(
    const std::shared_ptr<const LoadedLiteModel>& snap, uint64_t seed,
    const spark::ApplicationSpec& app, const spark::DataSpec& data,
    const spark::ClusterEnv& env) const {
  const ServeMetrics& metrics = ServeMetrics::Get();
  obs::Span span("serve.request", metrics.request_seconds);
  Response r;
  try {
    PipelineContext ctx;
    ctx.acg = &snap->candidate_generator();
    ctx.num_candidates = snap->num_candidates();
    // Seed 0 = adopt the served snapshot's stream, which reproduces the
    // direct LiteSystem / LoadedLiteModel recommendation bit for bit.
    ctx.seed = seed != 0 ? seed : snap->seed();
    r.rec = RunRecommendPipeline(
        ctx, app, data, env, [&](const std::vector<spark::Config>& candidates) {
          return snap->ScoreCandidates(app, data, env, candidates);
        });
    r.ok = true;
  } catch (const std::exception& e) {
    r.error = e.what();
  } catch (...) {
    r.error = "unknown serving error";
  }
  return r;
}

void TuningService::FinishRequest() {
  std::lock_guard<std::mutex> lock(mu_);
  --pending_;
  ServeMetrics::Get().pending->Set(static_cast<double>(pending_));
  cv_.notify_all();
}

std::future<TuningService::Response> TuningService::SubmitRecommend(
    int session, const spark::ApplicationSpec& app,
    const spark::DataSpec& data, const spark::ClusterEnv& env) {
  const ServeMetrics& metrics = ServeMetrics::Get();
  metrics.requests->Inc();
  auto snap = SnapshotRef();
  uint64_t seed = 0;
  auto reject = [](Response r) {
    std::promise<Response> p;
    p.set_value(std::move(r));
    return p.get_future();
  };
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (snap == nullptr) {
      ++stats_.failed;
      metrics.failed->Inc();
      Response r;
      r.error = "no snapshot loaded";
      return reject(std::move(r));
    }
    if (session < 0 || static_cast<size_t>(session) >= sessions_.size()) {
      ++stats_.failed;
      metrics.failed->Inc();
      Response r;
      r.error = "unknown session";
      return reject(std::move(r));
    }
    seed = sessions_[static_cast<size_t>(session)].seed;
    // Admission control: beyond max_pending the request is turned away
    // right here (bounded queue), so a traffic spike degrades into fast
    // rejections instead of an unbounded backlog on the shared pool.
    if (pending_ >= options_.max_pending) {
      ++stats_.rejected;
      metrics.rejected->Inc();
      Response r;
      r.rejected = true;
      r.error = "service saturated (max_pending reached)";
      return reject(std::move(r));
    }
    ++pending_;
    metrics.pending->Set(static_cast<double>(pending_));
  }

  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> future = promise->get_future();
  spark::DataSpec data_copy = data;
  spark::ClusterEnv env_copy = env;
  ThreadPool::Shared().Submit(
      [this, snap, seed, &app, data_copy, env_copy, promise] {
        Response r = RunRequest(snap, seed, app, data_copy, env_copy);
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (r.ok) {
            ++stats_.completed;
          } else {
            ++stats_.failed;
          }
        }
        const ServeMetrics& m = ServeMetrics::Get();
        (r.ok ? m.completed : m.failed)->Inc();
        promise->set_value(std::move(r));
        FinishRequest();
      });
  return future;
}

TuningService::Response TuningService::Recommend(
    int session, const spark::ApplicationSpec& app,
    const spark::DataSpec& data, const spark::ClusterEnv& env) {
  const ServeMetrics& metrics = ServeMetrics::Get();
  metrics.requests->Inc();
  auto snap = SnapshotRef();
  uint64_t seed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (snap == nullptr) {
      ++stats_.failed;
      metrics.failed->Inc();
      Response r;
      r.error = "no snapshot loaded";
      return r;
    }
    if (session < 0 || static_cast<size_t>(session) >= sessions_.size()) {
      ++stats_.failed;
      metrics.failed->Inc();
      Response r;
      r.error = "unknown session";
      return r;
    }
    seed = sessions_[static_cast<size_t>(session)].seed;
  }
  Response r = RunRequest(snap, seed, app, data, env);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (r.ok) {
      ++stats_.completed;
    } else {
      ++stats_.failed;
    }
  }
  (r.ok ? metrics.completed : metrics.failed)->Inc();
  return r;
}

bool TuningService::SubmitFeedback(int session,
                                   const spark::ApplicationSpec& app,
                                   const spark::DataSpec& data,
                                   const spark::ClusterEnv& env,
                                   const spark::Config& config,
                                   const spark::AppRunResult& run) {
  auto snap = SnapshotRef();
  if (snap == nullptr) return false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (session < 0 || static_cast<size_t>(session) >= sessions_.size()) {
      return false;
    }
  }
  // Extraction outside the lock: featurization is the expensive part and
  // reads only the immutable snapshot.
  std::vector<StageInstance> instances = ExtractFeedbackInstances(
      runner_, snap->feature_space(), options_.max_stage_instances_per_run,
      app, data, env, config, run, /*sentinel_labels=*/false);
  if (instances.empty()) return true;  // nothing usable, but not an error.
  ServeMetrics::Get().feedback_instances->Inc(instances.size());

  std::vector<StageInstance> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    feedback_.insert(feedback_.end(), instances.begin(), instances.end());
    if (options_.update_batch == 0 || feedback_.size() < options_.update_batch ||
        update_in_flight_) {
      return true;
    }
    update_in_flight_ = true;
    batch = std::move(feedback_);
    feedback_.clear();
  }
  // Off-path: the update runs on a pool worker against a clone; serving
  // continues on the current snapshot until the fine-tuned clone swaps in.
  ThreadPool::Shared().Submit(
      [this, batch = std::move(batch)]() mutable {
        RunAdaptiveUpdate(std::move(batch));
      });
  return true;
}

UpdateStats TuningService::RunAdaptiveUpdate(std::vector<StageInstance> batch) {
  UpdateStats stats;
  try {
    auto base = SnapshotRef();
    if (base != nullptr && !batch.empty()) {
      std::unique_ptr<LoadedLiteModel> shadow = base->Clone();
      AdaptiveModelUpdater updater(options_.update);
      // A restored snapshot ships no offline corpus, so the batch doubles
      // as the source-domain sample (see snapshot.h's documented
      // limitation); the adversarial term then only regularizes.
      for (size_t i = 0; i < shadow->ensemble_size(); ++i) {
        stats.Accumulate(updater.Update(shadow->mutable_model(i), batch, batch));
      }
      stats.FinishAggregation();
      InstallSnapshot(std::move(shadow));
      ServeMetrics::Get().adaptive_updates->Inc();
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.adaptive_updates;
    }
  } catch (const std::exception& e) {
    LITE_WARN << "TuningService: adaptive update failed (" << e.what()
              << "); keeping the served snapshot";
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    update_in_flight_ = false;
    cv_.notify_all();
  }
  return stats;
}

UpdateStats TuningService::ForceAdaptiveUpdate() {
  std::vector<StageInstance> batch;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !update_in_flight_; });
    if (feedback_.empty()) return UpdateStats{};
    update_in_flight_ = true;
    batch = std::move(feedback_);
    feedback_.clear();
  }
  return RunAdaptiveUpdate(std::move(batch));
}

void TuningService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return pending_ == 0; });
}

void TuningService::DrainUpdates() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !update_in_flight_; });
}

size_t TuningService::pending_feedback() const {
  std::lock_guard<std::mutex> lock(mu_);
  return feedback_.size();
}

TuningService::Stats TuningService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace lite::serve
