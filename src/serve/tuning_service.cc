#include "serve/tuning_service.h"

#include <stdexcept>
#include <utility>

#include "lite/model_update.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace lite::serve {

namespace {
// Service-level observability (docs/SERVING.md lists the catalog; all
// series also appear in docs/OBSERVABILITY.md). Same sharded-atomic,
// never-perturbs-results contract as the lite_* metrics.
//
// Co-publication invariant: every counter here has a TuningService::Stats
// twin, and both are bumped inside the same mu_ critical section. Taking
// the Stats snapshot and the metrics snapshot while the service is idle
// (after Drain + DrainUpdates) therefore yields *equal* deltas — the drift
// window that used to exist between a metric Inc outside the lock and the
// stats_ mutation inside it is gone.
struct ServeMetrics {
  obs::Counter* requests;
  obs::Counter* rejected;
  obs::Counter* completed;
  obs::Counter* failed;
  obs::Counter* hot_swaps;
  obs::Counter* adaptive_updates;
  obs::Counter* sessions;
  obs::Counter* feedback_instances;
  obs::Counter* bad_feedback;
  obs::Counter* incumbent_served;
  obs::Counter* stage_plans;
  obs::Counter* retunes;
  obs::Gauge* pending;
  obs::Histogram* request_seconds;

  static const ServeMetrics& Get() {
    static const ServeMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      return new ServeMetrics{
          reg.GetCounter("serve_requests_total"),
          reg.GetCounter("serve_rejected_total"),
          reg.GetCounter("serve_completed_total"),
          reg.GetCounter("serve_failed_total"),
          reg.GetCounter("serve_hot_swaps_total"),
          reg.GetCounter("serve_adaptive_updates_total"),
          reg.GetCounter("serve_sessions_total"),
          reg.GetCounter("serve_feedback_instances_total"),
          reg.GetCounter("serve_feedback_dropped_bad_total"),
          reg.GetCounter("serve_incumbent_responses_total"),
          reg.GetCounter("serve_stage_plans_total"),
          reg.GetCounter("serve_retunes_total"),
          reg.GetGauge("serve_pending_requests"),
          reg.GetHistogram("serve_request_seconds"),
      };
    }();
    return *m;
  }
};
}  // namespace

std::string ValidateServiceOptions(const ServiceOptions& options) {
  if (options.max_pending == 0) {
    return "max_pending must be > 0 (a zero bound rejects every request)";
  }
  // size_t has no negative values: a caller writing `threads = -1` gets a
  // wrapped astronomical count instead. Anything beyond this bound cannot
  // be a deliberate thread count.
  constexpr size_t kMaxThreads = 4096;
  if (options.scoring.threads > kMaxThreads) {
    return "scoring.threads is implausibly large (negative value cast to "
           "size_t?)";
  }
  if (options.max_stage_instances_per_run == 0) {
    return "max_stage_instances_per_run must be > 0 (feedback would always "
           "be empty)";
  }
  if (options.stage_tuning.values_per_knob < 2 ||
      options.stage_tuning.values_per_knob > 64) {
    return "stage_tuning.values_per_knob must be in [2, 64] (the planner "
           "grid needs both range endpoints and has no use for a finer "
           "sweep than the knob resolution)";
  }
  std::string err = ValidateGuardrailOptions(options.guardrail);
  if (!err.empty()) return err;
  return ValidateRetrievalOptions(options.retrieval);
}

TuningService::TuningService(const spark::SparkRunner* runner,
                             ServiceOptions options)
    : runner_(runner), options_(std::move(options)) {
  LITE_CHECK(runner_ != nullptr) << "TuningService: null runner";
  std::string err = ValidateServiceOptions(options_);
  if (!err.empty()) {
    throw std::invalid_argument("TuningService: " + err);
  }
  if (options_.guardrail.enabled) {
    guardrail_ = std::make_unique<Guardrail>(options_.guardrail);
  }
  if (options_.retrieval.enabled) {
    retrieval_ = std::make_unique<RetrievalCache>(options_.retrieval);
  }
}

TuningService::~TuningService() {
  Drain();
  DrainUpdates();
}

bool TuningService::LoadSnapshot(const std::string& dir) {
  std::unique_ptr<LoadedLiteModel> model = LoadedLiteModel::Load(dir, runner_);
  if (model == nullptr) {
    LITE_WARN << "TuningService: snapshot at '" << dir
              << "' failed to load; keeping the current snapshot";
    return false;
  }
  InstallSnapshot(std::move(model));
  return true;
}

void TuningService::InstallSnapshot(std::unique_ptr<LoadedLiteModel> model) {
  LITE_CHECK(model != nullptr) << "InstallSnapshot: null model";
  model->set_scoring(options_.scoring);
  // The new generation is stamped on the model *before* publication, so a
  // request that copies the snapshot pointer reads a consistent
  // (model, version) pair — it keys the guardrail's per-family
  // knob-importance cache and the retrieval cache's memo entries.
  const uint64_t gen =
      generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  model->set_generation(gen);
  // Memo flush precedes publication: by the time any request can see
  // generation `gen`, the memo holds no older-generation entries, and an
  // in-flight request still on the retired snapshot has its late insert
  // rejected by the cache's live-generation check. A stale-generation
  // cache hit is therefore structurally impossible.
  if (retrieval_ != nullptr) retrieval_->OnSnapshotInstalled(gen);
  std::shared_ptr<const LoadedLiteModel> fresh = std::move(model);
  const std::shared_ptr<const LoadedLiteModel> published = fresh;
  // RCU publish: readers that copied the old pointer keep it alive through
  // their shared_ptr copy; the retired snapshot is freed when the last
  // in-flight request drops it. The swap itself is the only work done
  // under snap_mu_.
  std::shared_ptr<const LoadedLiteModel> old;
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    old = std::move(snapshot_);
    snapshot_ = std::move(fresh);
  }
  if (old != nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.hot_swaps;
    ServeMetrics::Get().hot_swaps->Inc();
  }
  // Model-plane publication hook: runs after the swap so the plane never
  // publishes a version the publisher itself is not yet serving.
  InstallListener listener;
  {
    std::lock_guard<std::mutex> lock(listener_mu_);
    listener = install_listener_;
  }
  if (listener) listener(published);
}

void TuningService::SetInstallListener(InstallListener listener) {
  std::lock_guard<std::mutex> lock(listener_mu_);
  install_listener_ = std::move(listener);
}

std::shared_ptr<const LoadedLiteModel> TuningService::SnapshotRef() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  return snapshot_;
}

std::shared_ptr<const LoadedLiteModel> TuningService::CurrentSnapshot() const {
  return SnapshotRef();
}

int TuningService::OpenSession(const std::string& tenant, uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.sessions;
  ServeMetrics::Get().sessions->Inc();
  sessions_.push_back(Session{tenant, seed});
  return static_cast<int>(sessions_.size() - 1);
}

void TuningService::SetTenantPolicy(const std::string& tenant,
                                    TenantPolicy policy) {
  if (guardrail_ == nullptr) {
    LITE_WARN << "TuningService: SetTenantPolicy('" << tenant
              << "') ignored — guardrail is disabled";
    return;
  }
  guardrail_->SetTenantPolicy(tenant, policy);
}

TuningService::Response TuningService::RunRequest(
    const std::shared_ptr<const LoadedLiteModel>& snap, uint64_t seed,
    const std::string& tenant, const spark::ApplicationSpec& app,
    const spark::DataSpec& data, const spark::ClusterEnv& env) const {
  const ServeMetrics& metrics = ServeMetrics::Get();
  obs::Span span("serve.request", metrics.request_seconds);
  Response r;
  GuardDecision guard;
  if (guardrail_ != nullptr) {
    guard = guardrail_->Admit(tenant);
    if (!guard.use_model) {
      // Incumbent fast path: quarantined, budget-capped and probing-off-tick
      // requests are served the tenant's baseline verbatim — zero model
      // evaluations, so a regressed snapshot cannot reach this tenant.
      r.rec.config = guard.incumbent;
      r.rec.predicted_seconds = guard.incumbent_seconds;
      r.rec.candidates_evaluated = 0;
      r.from_incumbent = true;
      r.ok = true;
      metrics.incumbent_served->Inc();
      return r;
    }
    r.probe = guard.probe;
  }
  // --- Retrieval cache: memoized responses + warm-start seeds. -----------
  // Guardrail precedence: Admit() already ran, and only CLOSED-state,
  // non-probe requests may touch the memo — quarantined and
  // budget-suppressed tenants took the incumbent fast path above, probing
  // requests bypass the memo (a probe must exercise the live model).
  std::shared_ptr<const std::vector<double>> embedding;
  RetrievalCache::MemoKey memo_key;
  bool memo_store = false;
  std::vector<spark::Config> seeds;
  if (retrieval_ != nullptr) {
    const uint64_t gen = snap->generation();
    const uint64_t fp = RetrievalCache::WorkloadFingerprint(app, data, env);
    embedding = retrieval_->CachedEmbedding(fp, gen);
    if (embedding == nullptr) {
      // First sight of this (workload, generation): pool the cached NECS
      // encoder outputs into an embedding. Repeat requests are a map hit.
      embedding = retrieval_->StoreEmbedding(
          fp, gen, snap->WorkloadEmbedding(app, data, env));
    }
    if (options_.retrieval.memoize) {
      if (guardrail_ == nullptr ||
          (guard.state == BreakerState::kClosed && !guard.probe)) {
        memo_key.workload_hash =
            RetrievalCache::HashEmbedding(app.name, *embedding);
        memo_key.generation = gen;
        // The policy fingerprint covers everything besides the workload and
        // the model that can steer the recommendation: tenant identity,
        // the effective RNG stream, SLA deadline, exploration budget and
        // the knob-pruning state (incumbent values included — pinning
        // changes the candidate pool).
        uint64_t pf = RetrievalCache::HashInit();
        pf = RetrievalCache::HashCombine(pf, tenant);
        pf = RetrievalCache::HashCombine(pf, seed != 0 ? seed : snap->seed());
        pf = RetrievalCache::HashCombine(pf, guard.policy.sla_deadline_seconds);
        pf = RetrievalCache::HashCombine(pf, guard.policy.exploration_fraction);
        const bool pruning = guardrail_ != nullptr &&
                             options_.guardrail.prune_knobs && guard.stable;
        pf = RetrievalCache::HashCombine(pf,
                                         static_cast<uint64_t>(pruning ? 1 : 0));
        if (pruning) {
          pf = RetrievalCache::HashCombine(
              pf, options_.guardrail.importance_keep_fraction);
          for (double v : guard.incumbent) {
            pf = RetrievalCache::HashCombine(pf, v);
          }
        }
        memo_key.policy_fingerprint = pf;
        memo_store = true;
        Response cached;
        if (retrieval_->LookupMemo(memo_key, tenant, app.name, &cached.rec)) {
          // Exact repeat: replay the cached Recommendation verbatim — zero
          // model evaluations, zero candidate featurizations.
          cached.ok = true;
          cached.from_cache = true;
          return cached;
        }
      } else {
        retrieval_->NoteBypass(tenant, app.name, gen);
      }
    }
    if (options_.retrieval.top_k_seeds > 0) {
      for (RetrievedSeed& s :
           retrieval_->Retrieve(*embedding, options_.retrieval.top_k_seeds)) {
        seeds.push_back(std::move(s.config));
      }
    }
  }
  try {
    PipelineContext ctx;
    ctx.acg = &snap->candidate_generator();
    ctx.num_candidates = snap->num_candidates();
    // Seed 0 = adopt the served snapshot's stream, which reproduces the
    // direct LiteSystem / LoadedLiteModel recommendation bit for bit.
    ctx.seed = seed != 0 ? seed : snap->seed();
    // Keeps the importance vector alive through the pipeline call (a
    // concurrent StoreImportance may retire the cache entry).
    std::shared_ptr<const std::vector<double>> importance;
    if (guardrail_ != nullptr) {
      ctx.sla_deadline_seconds = guard.policy.sla_deadline_seconds;
      if (options_.guardrail.prune_knobs && guard.stable) {
        // The snapshot's own generation, not generation_.load(): the pair
        // (model, version) must be consistent even when a hot-swap lands
        // mid-request.
        const uint64_t gen = snap->generation();
        importance = guardrail_->ImportanceFor(app.name, gen);
        if (importance == nullptr) {
          // Once per (family, snapshot generation): score a deterministic
          // candidate sample and derive variance-based knob importance from
          // how the ensemble's predictions move per knob. Two concurrent
          // requests may race to compute it; StoreImportance is idempotent
          // (both compute the same vector from the same seed).
          Rng rng(guardrail_->ImportanceSeed(app.name));
          std::vector<spark::Config> sample =
              snap->candidate_generator().SampleCandidates(
                  app, data, env, options_.guardrail.importance_sample, &rng);
          std::vector<double> sample_scores =
              snap->ScoreCandidates(app, data, env, sample);
          guardrail_->StoreImportance(
              app.name, gen, ComputeKnobImportance(sample, sample_scores));
          importance = guardrail_->ImportanceFor(app.name, gen);
        }
        if (importance != nullptr) {
          ctx.knob_importance = importance.get();
          ctx.importance_keep_fraction =
              options_.guardrail.importance_keep_fraction;
          ctx.pin_reference = &guard.incumbent;
        }
      }
    }
    if (!seeds.empty()) ctx.seed_candidates = &seeds;
    r.rec = RunRecommendPipeline(
        ctx, app, data, env, [&](const std::vector<spark::Config>& candidates) {
          return snap->ScoreCandidates(app, data, env, candidates);
        });
    r.ok = true;
    if (memo_store && retrieval_ != nullptr) {
      // Stale inserts (a hot-swap landed during the pipeline run) are
      // rejected inside the cache by the live-generation check.
      retrieval_->InsertMemo(memo_key, tenant, app.name, r.rec);
    }
  } catch (const std::exception& e) {
    r.error = e.what();
  } catch (...) {
    r.error = "unknown serving error";
  }
  return r;
}

void TuningService::FinishRequest() {
  std::lock_guard<std::mutex> lock(mu_);
  --pending_;
  ServeMetrics::Get().pending->Set(static_cast<double>(pending_));
  cv_.notify_all();
}

std::future<TuningService::Response> TuningService::SubmitRecommend(
    int session, const spark::ApplicationSpec& app,
    const spark::DataSpec& data, const spark::ClusterEnv& env) {
  const ServeMetrics& metrics = ServeMetrics::Get();
  auto snap = SnapshotRef();
  uint64_t seed = 0;
  std::string tenant;
  auto reject = [](Response r) {
    std::promise<Response> p;
    p.set_value(std::move(r));
    return p.get_future();
  };
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    metrics.requests->Inc();
    if (snap == nullptr) {
      ++stats_.failed;
      metrics.failed->Inc();
      Response r;
      r.error = "no snapshot loaded";
      return reject(std::move(r));
    }
    if (session < 0 || static_cast<size_t>(session) >= sessions_.size()) {
      ++stats_.failed;
      metrics.failed->Inc();
      Response r;
      r.error = "unknown session";
      return reject(std::move(r));
    }
    seed = sessions_[static_cast<size_t>(session)].seed;
    tenant = sessions_[static_cast<size_t>(session)].tenant;
    // Admission control: beyond max_pending the request is turned away
    // right here (bounded queue), so a traffic spike degrades into fast
    // rejections instead of an unbounded backlog on the shared pool.
    if (pending_ >= options_.max_pending) {
      ++stats_.rejected;
      metrics.rejected->Inc();
      Response r;
      r.rejected = true;
      r.error = "service saturated (max_pending reached)";
      return reject(std::move(r));
    }
    ++pending_;
    metrics.pending->Set(static_cast<double>(pending_));
  }

  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> future = promise->get_future();
  spark::DataSpec data_copy = data;
  spark::ClusterEnv env_copy = env;
  ThreadPool::Shared().Submit([this, snap, seed,
                               tenant = std::move(tenant), &app, data_copy,
                               env_copy, promise] {
    Response r = RunRequest(snap, seed, tenant, app, data_copy, env_copy);
    {
      std::lock_guard<std::mutex> lock(mu_);
      const ServeMetrics& m = ServeMetrics::Get();
      if (r.ok) {
        ++stats_.completed;
        m.completed->Inc();
      } else {
        ++stats_.failed;
        m.failed->Inc();
      }
    }
    promise->set_value(std::move(r));
    FinishRequest();
  });
  return future;
}

TuningService::Response TuningService::Recommend(
    int session, const spark::ApplicationSpec& app,
    const spark::DataSpec& data, const spark::ClusterEnv& env) {
  const ServeMetrics& metrics = ServeMetrics::Get();
  auto snap = SnapshotRef();
  uint64_t seed = 0;
  std::string tenant;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    metrics.requests->Inc();
    if (snap == nullptr) {
      ++stats_.failed;
      metrics.failed->Inc();
      Response r;
      r.error = "no snapshot loaded";
      return r;
    }
    if (session < 0 || static_cast<size_t>(session) >= sessions_.size()) {
      ++stats_.failed;
      metrics.failed->Inc();
      Response r;
      r.error = "unknown session";
      return r;
    }
    seed = sessions_[static_cast<size_t>(session)].seed;
    tenant = sessions_[static_cast<size_t>(session)].tenant;
  }
  Response r = RunRequest(snap, seed, tenant, app, data, env);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (r.ok) {
      ++stats_.completed;
      metrics.completed->Inc();
    } else {
      ++stats_.failed;
      metrics.failed->Inc();
    }
  }
  return r;
}

TuningService::StagedResponse TuningService::RecommendStaged(
    int session, const spark::ApplicationSpec& app,
    const spark::DataSpec& data, const spark::ClusterEnv& env) {
  StagedResponse sr;
  // The base response takes the exact Recommend() path — guardrail
  // admission, retrieval memo, metrics and all — so it is bit-identical to
  // a direct Recommend call on the same session (and the staged machinery
  // is invisible to app-level traffic).
  sr.base = Recommend(session, app, data, env);
  sr.staged.base = sr.base.rec.config;
  if (!sr.base.ok || !options_.stage_tuning.enabled) return sr;
  // Guardrail and cache decisions outrank fine-grained planning: an
  // incumbent fallback exists precisely because the model is not trusted
  // for this tenant, a probe must measure the *model's* config unmodified,
  // and a memoized hit promised zero model evaluations. Staged plans are
  // never inserted into the memo either.
  if (sr.base.from_incumbent || sr.base.probe || sr.base.from_cache) {
    return sr;
  }
  auto snap = SnapshotRef();
  if (snap == nullptr || snap->stage_head() == nullptr) return sr;
  spark::StagePlannerOptions popts;
  popts.values_per_knob = options_.stage_tuning.values_per_knob;
  try {
    spark::StagePlan plan =
        snap->PlanStages(app, data, env, sr.base.rec.config, popts);
    if (plan.ok && !plan.baseline_failed) {
      sr.staged = plan.staged;
      sr.baseline_seconds = plan.baseline_seconds;
      sr.planned_seconds = plan.planned_seconds;
      sr.stage_tuned = true;
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.stage_plans;
      ServeMetrics::Get().stage_plans->Inc();
    }
  } catch (const std::exception& e) {
    // Planning is an additive refinement: on failure the valid app-level
    // response still stands (with zero overrides).
    LITE_WARN << "RecommendStaged: planning failed: " << e.what();
  }
  return sr;
}

TuningService::RetuneResponse TuningService::Retune(
    int session, const spark::ApplicationSpec& app,
    const spark::DataSpec& data, const spark::ClusterEnv& env,
    const spark::StagedConfig& current,
    const std::vector<spark::StageEvent>& observed) {
  RetuneResponse r;
  r.staged = current;
  if (!options_.stage_tuning.enabled) {
    r.error = "stage tuning is disabled (ServiceOptions::stage_tuning)";
    return r;
  }
  auto snap = SnapshotRef();
  if (snap == nullptr) {
    r.error = "no snapshot loaded";
    return r;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (session < 0 || static_cast<size_t>(session) >= sessions_.size()) {
      r.error = "unknown session";
      return r;
    }
  }
  if (snap->stage_head() == nullptr) {
    r.error = "snapshot carries no stage head";
    return r;
  }
  std::string why;
  if (!spark::ValidateStagedConfig(current, app, &why)) {
    r.error = "invalid staged config: " + why;
    return r;
  }
  spark::StagePlannerOptions popts;
  popts.values_per_knob = options_.stage_tuning.values_per_knob;
  try {
    spark::RetuneResult res =
        snap->RetuneStages(app, data, env, current, observed, popts);
    r.ok = res.ok;
    r.staged = std::move(res.staged);
    r.correction = res.correction;
    r.frontier = res.frontier;
    if (r.ok) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.retunes;
      ServeMetrics::Get().retunes->Inc();
    }
  } catch (const std::exception& e) {
    r.error = e.what();
  }
  return r;
}

TuningService::RetuneResponse TuningService::Retune(
    int session, const spark::ApplicationSpec& app,
    const spark::DataSpec& data, const spark::ClusterEnv& env,
    const spark::StagedConfig& current, const std::string& event_log) {
  spark::ParsedEventLog parsed;
  if (!spark::ParseEventLog(event_log, &parsed)) {
    RetuneResponse r;
    r.staged = current;
    r.error = "malformed event log";
    return r;
  }
  return Retune(session, app, data, env, current, parsed.stages);
}

bool TuningService::SubmitFeedback(int session,
                                   const spark::ApplicationSpec& app,
                                   const spark::DataSpec& data,
                                   const spark::ClusterEnv& env,
                                   const spark::Config& config,
                                   const spark::AppRunResult& run) {
  return SubmitFeedbackRun(session, app, data, env, config, run,
                           run.total_seconds, /*failed=*/false,
                           /*censored=*/false);
}

bool TuningService::SubmitFeedback(int session,
                                   const spark::ApplicationSpec& app,
                                   const spark::DataSpec& data,
                                   const spark::ClusterEnv& env,
                                   const spark::Config& config,
                                   const spark::MeasureOutcome& outcome) {
  return SubmitFeedbackRun(session, app, data, env, config, outcome.result,
                           outcome.seconds, outcome.failed, outcome.censored);
}

bool TuningService::SubmitFeedbackRun(
    int session, const spark::ApplicationSpec& app, const spark::DataSpec& data,
    const spark::ClusterEnv& env, const spark::Config& config,
    const spark::AppRunResult& run, double observed_seconds, bool failed,
    bool censored) {
  auto snap = SnapshotRef();
  if (snap == nullptr) return false;
  std::string tenant;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (session < 0 || static_cast<size_t>(session) >= sessions_.size()) {
      return false;
    }
    tenant = sessions_[static_cast<size_t>(session)].tenant;
  }
  // Every observation feeds the guardrail's regression detector, healthy
  // or not — that is the signal quarantining is built from.
  if (guardrail_ != nullptr) {
    const BreakerState before = guardrail_->StateOf(tenant);
    guardrail_->Observe(tenant, config, observed_seconds, failed, censored);
    if (retrieval_ != nullptr && before != BreakerState::kQuarantined &&
        guardrail_->StateOf(tenant) == BreakerState::kQuarantined) {
      // Guardrail precedence: this observation tripped the tenant into
      // quarantine, so its memoized responses — computed when the model was
      // still trusted for it — are flushed. (Quarantined tenants also never
      // reach the memo: Admit() routes them to the incumbent fast path.)
      retrieval_->OnTenantQuarantined(tenant);
    }
  }
  if (failed || censored) {
    // Poisoned-update gating: a failed or censored run's labels are the
    // failure cap, not an observation — fine-tuning on them drags the model
    // toward the cap. Dropped here, before extraction. The same gate keeps
    // them out of the retrieval index below: a failed run's capped runtime
    // is not an outcome worth retrieving.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.bad_feedback_dropped;
    ServeMetrics::Get().bad_feedback->Inc();
    return true;
  }
  if (retrieval_ != nullptr) {
    // Honest outcome: record (workload embedding -> config, runtime) in the
    // retrieval index. The embedding reuses the cached NECS encoder
    // outputs (and the per-workload embedding cache), so ingest adds no
    // forward passes on a warm path.
    const uint64_t gen = snap->generation();
    const uint64_t fp = RetrievalCache::WorkloadFingerprint(app, data, env);
    auto embedding = retrieval_->CachedEmbedding(fp, gen);
    if (embedding == nullptr) {
      embedding = retrieval_->StoreEmbedding(
          fp, gen, snap->WorkloadEmbedding(app, data, env));
    }
    bool is_incumbent = false;
    if (guardrail_ != nullptr && guardrail_->HasIncumbent(tenant)) {
      is_incumbent = guardrail_->IncumbentOf(tenant) == config;
    }
    retrieval_->InsertOutcome(tenant, app.name, fp, *embedding, config,
                              observed_seconds, gen, is_incumbent);
  }
  // Extraction outside the lock: featurization is the expensive part and
  // reads only the immutable snapshot.
  std::vector<StageInstance> instances = ExtractFeedbackInstances(
      runner_, snap->feature_space(), options_.max_stage_instances_per_run,
      app, data, env, config, run, /*sentinel_labels=*/false);
  if (instances.empty()) return true;  // nothing usable, but not an error.

  std::vector<StageInstance> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.feedback_instances += instances.size();
    ServeMetrics::Get().feedback_instances->Inc(instances.size());
    feedback_.insert(feedback_.end(), instances.begin(), instances.end());
    if (options_.update_batch == 0 || feedback_.size() < options_.update_batch ||
        update_in_flight_) {
      return true;
    }
    update_in_flight_ = true;
    batch = std::move(feedback_);
    feedback_.clear();
  }
  // Off-path: the update runs on a pool worker against a clone; serving
  // continues on the current snapshot until the fine-tuned clone swaps in.
  ThreadPool::Shared().Submit(
      [this, batch = std::move(batch)]() mutable {
        RunAdaptiveUpdate(std::move(batch));
      });
  return true;
}

UpdateStats TuningService::RunAdaptiveUpdate(std::vector<StageInstance> batch) {
  UpdateStats stats;
  try {
    auto base = SnapshotRef();
    if (base != nullptr && !batch.empty()) {
      std::unique_ptr<LoadedLiteModel> shadow = base->Clone();
      AdaptiveModelUpdater updater(options_.update);
      // A restored snapshot ships no offline corpus, so the batch doubles
      // as the source-domain sample (see snapshot.h's documented
      // limitation); the adversarial term then only regularizes.
      for (size_t i = 0; i < shadow->ensemble_size(); ++i) {
        stats.Accumulate(updater.Update(shadow->mutable_model(i), batch, batch));
      }
      stats.FinishAggregation();
      InstallSnapshot(std::move(shadow));
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.adaptive_updates;
      ServeMetrics::Get().adaptive_updates->Inc();
    }
  } catch (const std::exception& e) {
    LITE_WARN << "TuningService: adaptive update failed (" << e.what()
              << "); keeping the served snapshot";
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    update_in_flight_ = false;
    cv_.notify_all();
  }
  return stats;
}

UpdateStats TuningService::ForceAdaptiveUpdate() {
  std::vector<StageInstance> batch;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !update_in_flight_; });
    if (feedback_.empty()) return UpdateStats{};
    update_in_flight_ = true;
    batch = std::move(feedback_);
    feedback_.clear();
  }
  return RunAdaptiveUpdate(std::move(batch));
}

void TuningService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return pending_ == 0; });
}

void TuningService::DrainUpdates() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !update_in_flight_; });
}

size_t TuningService::pending_feedback() const {
  std::lock_guard<std::mutex> lock(mu_);
  return feedback_.size();
}

TuningService::Stats TuningService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace lite::serve
