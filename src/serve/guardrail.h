// Guardrail: the safety layer between TuningService and the recommend
// pipeline for online tuning under live traffic. PR 5's service happily
// keeps serving a model that has gone bad — a few poisoned adaptive
// updates, or a burst of failed/censored feedback, and every tenant eats
// the regression until a human notices. The guardrail closes that loop
// with three mechanisms (arXiv 2309.01901's safety envelope, LOCAT's
// search-space pruning):
//
//   * Per-tenant incumbent tracking. The best configuration with observed
//     (non-censored, non-failed) feedback becomes the tenant's baseline;
//     it is the config the tenant falls back to when the model is not
//     trusted, and the reference every regression ratio is measured
//     against.
//   * A sliding-window regression detector driving a per-tenant circuit
//     breaker:
//
//         CLOSED ── detector trips ──> QUARANTINED ── cooldown ──> PROBING
//            ^                              ^                         │
//            └── probes_to_close healthy ───┼───── bad probe ─────────┘
//                probe feedbacks            │
//
//     The detector trips when, over the last `window` feedback
//     observations, the failed+censored fraction reaches
//     `failure_rate_threshold`, or the mean runtime-vs-incumbent ratio of
//     the healthy observations reaches `regression_ratio_threshold`.
//     While QUARANTINED the tenant is served its incumbent config
//     verbatim — zero model evaluations. After `quarantine_cooldown`
//     incumbent-served requests the breaker half-opens into PROBING,
//     where every `probe_interval`-th request probes the model and the
//     rest still get the incumbent; `probes_to_close` consecutive healthy
//     probe feedbacks close the breaker, one bad probe re-quarantines.
//   * Per-tenant exploration budgets and SLA deadlines (TenantPolicy).
//     The deadline is threaded into RunRecommendPipeline so candidates
//     whose predicted runtime violates it are filtered before argmin; the
//     exploration budget caps the fraction of requests allowed to explore
//     model recommendations once an incumbent exists.
//
// Plus knob-importance pruning per application family: variance-based
// importance computed from ensemble candidate scores (ComputeKnobImportance)
// lets stable tenants pin unimportant knobs to their incumbent's values,
// collapsing the candidate pool before scoring.
//
// Determinism contract: every decision is a pure function of
// (options.seed, tenant name, request order, feedback stream). Same seed +
// same stream => identical transition log (tests/guardrail_test.cc replays
// it via LITE_TEST_SEED). A default-constructed GuardrailOptions is
// disabled; an *enabled* guardrail that never trips and has default
// policies is transparent: bit-identical recommendations to guardrails-off
// (the `guardrail_transparency` differential in src/testkit/diff.h).
//
// Thread safety: all public methods are safe to call concurrently; state
// is guarded by one internal mutex (guardrail work is bookkeeping —
// microseconds against millisecond model evaluations).
//
// See docs/GUARDRAILS.md for the operator's guide and metric reference.
#ifndef LITE_SERVE_GUARDRAIL_H_
#define LITE_SERVE_GUARDRAIL_H_

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sparksim/knob.h"
#include "util/rng.h"

namespace lite::serve {

enum class BreakerState { kClosed = 0, kQuarantined = 1, kProbing = 2 };

/// "closed" / "quarantined" / "probing" (metric label values).
const char* BreakerStateName(BreakerState state);

/// Per-tenant serving contract. Defaults are fully permissive (no
/// deadline, unlimited exploration) and therefore transparent.
struct TenantPolicy {
  /// SLA deadline on *predicted* runtime: candidates scoring above it are
  /// filtered before argmin (falling back to the plain argmin when no
  /// candidate qualifies — see RunRecommendPipeline). Infinity = no SLA.
  double sla_deadline_seconds = std::numeric_limits<double>::infinity();
  /// Fraction of requests allowed to explore model recommendations once an
  /// incumbent exists; the rest are served the incumbent verbatim. 1.0 =
  /// always explore (transparent), 0.0 = incumbent-only serving.
  double exploration_fraction = 1.0;
};

struct GuardrailOptions {
  /// Master switch. Disabled (the default) means the TuningService never
  /// consults the guardrail at all — the PR 5 serving path, bit for bit.
  bool enabled = false;
  /// Sliding feedback window per tenant (observations).
  size_t window = 32;
  /// Observations required before the detector may trip.
  size_t min_observations = 8;
  /// Failed+censored fraction of the window that trips the breaker.
  double failure_rate_threshold = 0.5;
  /// Mean healthy-runtime / incumbent-runtime ratio that trips the breaker.
  double regression_ratio_threshold = 2.0;
  /// Incumbent-served requests in QUARANTINED before half-opening.
  size_t quarantine_cooldown = 8;
  /// In PROBING, every `probe_interval`-th request probes the model.
  size_t probe_interval = 4;
  /// Consecutive healthy probe feedbacks that close the breaker.
  size_t probes_to_close = 3;
  /// Knob-importance pruning for stable tenants (CLOSED, incumbent known,
  /// full window): pin the least important knobs to the incumbent's values.
  bool prune_knobs = false;
  /// Fraction of knobs (by importance rank) left free when pruning.
  double importance_keep_fraction = 0.5;
  /// Candidates sampled (with a seed derived from `seed` and the family
  /// name) to estimate knob importance, once per (family, snapshot).
  size_t importance_sample = 64;
  /// Master seed: per-tenant exploration streams are seed ^ hash(tenant),
  /// importance sampling streams are seed ^ hash(family).
  uint64_t seed = 41;
};

/// Validates option ranges (NaN thresholds, zero windows/intervals, budget
/// fractions outside [0,1]). Empty string = valid.
std::string ValidateGuardrailOptions(const GuardrailOptions& options);
std::string ValidateTenantPolicy(const TenantPolicy& policy);

/// What the guardrail decided for one admitted request.
struct GuardDecision {
  /// False: serve `incumbent` verbatim, do not touch the model.
  bool use_model = true;
  /// True when this model call is a half-open probe (PROBING state).
  bool probe = false;
  bool has_incumbent = false;
  spark::Config incumbent;          ///< valid when has_incumbent.
  double incumbent_seconds =
      std::numeric_limits<double>::infinity();  ///< best observed runtime.
  BreakerState state = BreakerState::kClosed;
  TenantPolicy policy;              ///< the tenant's policy, for the pipeline.
  /// Tenant is CLOSED with an incumbent and a full window — eligible for
  /// knob-importance pruning.
  bool stable = false;
};

/// One breaker transition, in global order. The log is the determinism
/// witness: same seed + same feedback stream => identical log.
struct GuardTransition {
  uint64_t seq = 0;
  std::string tenant;
  BreakerState from = BreakerState::kClosed;
  BreakerState to = BreakerState::kClosed;
  std::string reason;
};

/// Variance-based per-knob importance from ensemble candidate scores
/// (LOCAT's spirit, without extra executions): for each knob, candidates
/// are split into quantile bins by knob value and the importance is the
/// variance of per-bin mean log-scores, normalized so the most important
/// knob scores 1. Knobs the model is insensitive to score ~0. Candidates
/// with non-finite scores are ignored; returns all-zeros when fewer than 8
/// scored candidates remain.
std::vector<double> ComputeKnobImportance(
    const std::vector<spark::Config>& candidates,
    const std::vector<double>& scores);

/// Indices of the `ceil(keep_fraction * n)` most important knobs (ties
/// broken toward the lower index), ascending. keep_fraction >= 1 keeps all.
std::vector<size_t> TopImportanceKnobs(const std::vector<double>& importance,
                                       double keep_fraction);

class Guardrail {
 public:
  explicit Guardrail(GuardrailOptions options);

  const GuardrailOptions& options() const { return options_; }

  /// Installs (or replaces) a tenant's policy. Throws std::invalid_argument
  /// on NaN deadlines or budgets outside [0,1].
  void SetTenantPolicy(const std::string& tenant, TenantPolicy policy);
  TenantPolicy PolicyOf(const std::string& tenant) const;

  /// Serving decision for the tenant's next request. Mutates per-tenant
  /// counters (request sequence, probe cadence, cooldown) — call exactly
  /// once per admitted request.
  GuardDecision Admit(const std::string& tenant);

  /// Ingests one observed run for the tenant. `observed_seconds` is the
  /// run's total (or capped) runtime; `failed`/`censored` mark it bad.
  /// Healthy observations update the incumbent; every observation feeds
  /// the sliding-window detector; in PROBING, observations of non-incumbent
  /// configs are probe feedback (healthy ones count toward closing, a bad
  /// one re-quarantines).
  void Observe(const std::string& tenant, const spark::Config& config,
               double observed_seconds, bool failed, bool censored);

  BreakerState StateOf(const std::string& tenant) const;
  bool HasIncumbent(const std::string& tenant) const;
  /// The incumbent config (empty when none) and its observed runtime.
  spark::Config IncumbentOf(const std::string& tenant,
                            double* seconds = nullptr) const;

  /// Full transition history, in global publication order.
  std::vector<GuardTransition> TransitionLog() const;

  struct Stats {
    uint64_t admitted = 0;             ///< Admit() calls.
    uint64_t observations = 0;         ///< Observe() calls.
    uint64_t trips = 0;                ///< -> QUARANTINED transitions.
    uint64_t recoveries = 0;           ///< PROBING -> CLOSED transitions.
    uint64_t incumbent_served = 0;     ///< decisions with use_model=false.
    uint64_t probes = 0;               ///< half-open probe decisions.
    uint64_t exploration_suppressed = 0;  ///< budget-capped requests.
  };
  Stats stats() const;

  /// Number of tenants currently in `state`.
  size_t TenantsIn(BreakerState state) const;

  /// Cached knob-importance vector for an application family under snapshot
  /// `generation`, nullptr when not yet computed (the caller scores a
  /// sample and calls StoreImportance). A new generation invalidates every
  /// family's cache entry — a swapped-in model may care about different
  /// knobs.
  std::shared_ptr<const std::vector<double>> ImportanceFor(
      const std::string& family, uint64_t generation) const;
  void StoreImportance(const std::string& family, uint64_t generation,
                       std::vector<double> importance);
  /// Deterministic stream for sampling the family's importance candidates.
  uint64_t ImportanceSeed(const std::string& family) const;

 private:
  struct Observation {
    bool bad = false;      ///< failed or censored.
    double ratio = 1.0;    ///< observed / incumbent seconds (healthy only).
  };

  struct Tenant {
    BreakerState state = BreakerState::kClosed;
    TenantPolicy policy;
    bool has_incumbent = false;
    spark::Config incumbent;
    double incumbent_seconds = std::numeric_limits<double>::infinity();
    std::deque<Observation> window;
    Rng explore_rng{0};
    size_t quarantine_served = 0;  ///< incumbent serves since quarantining.
    size_t probe_tick = 0;         ///< request cadence inside PROBING.
    size_t healthy_probes = 0;     ///< consecutive healthy probe feedbacks.
    /// Probe decisions issued but not yet matched to feedback. Identifies
    /// probe feedback even when the model's probe recommendation coincides
    /// with the incumbent config (the config-inequality heuristic alone
    /// would swallow it and strand the tenant in PROBING).
    size_t probes_outstanding = 0;
  };

  Tenant& TenantRef(const std::string& name);  // creates on first use.
  void Transition(const std::string& name, Tenant* t, BreakerState to,
                  const std::string& reason);
  bool WindowStable(const Tenant& t) const;

  GuardrailOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Tenant> tenants_;
  std::vector<GuardTransition> log_;
  Stats stats_;
  struct ImportanceEntry {
    uint64_t generation = 0;
    std::shared_ptr<const std::vector<double>> importance;
  };
  std::map<std::string, ImportanceEntry> importance_;
};

}  // namespace lite::serve

#endif  // LITE_SERVE_GUARDRAIL_H_
