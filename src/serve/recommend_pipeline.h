// The single online recommendation pipeline (Fig. 2, Steps 2-3).
//
// Every serving surface — LiteSystem::Recommend (the in-process tuner),
// LoadedLiteModel::Recommend (snapshot serving) and serve::TuningService
// (the concurrent tuning service) — routes through RunRecommendPipeline, so
// the candidate-sample -> dedupe -> feasibility-filter -> score -> argmin
// sequence exists exactly once and cannot drift between paths again. The
// pipeline owns the serving-side lite_* metrics and spans, the per-request
// RNG derivation (seed ^ hash(app.name), so requests are stateless and
// safe to serve concurrently), and the non-finite-score-hardened argmin.
//
// ScoreCandidateSet is the matching single implementation of candidate
// scoring: the batched multi-threaded ensemble tower by default, the legacy
// scalar reference loop when `batched` is off. Both are bit-identical for
// every thread count (ordered reduction; see docs/TESTING.md).
//
// ExtractFeedbackInstances is the single implementation of Step 4's
// run -> target-domain-instances extraction (subsampling cap, sentinel
// relabeling, and the bounds check that drops malformed stage runs).
//
// These functions are compiled into lite_core (they sit below LiteSystem in
// the dependency order); the TuningService built on top of them lives in
// the lite_serve library. See docs/SERVING.md.
#ifndef LITE_SERVE_RECOMMEND_PIPELINE_H_
#define LITE_SERVE_RECOMMEND_PIPELINE_H_

#include <functional>
#include <limits>
#include <vector>

#include "lite/lite_system.h"

namespace lite::serve {

/// How a candidate set is scored.
struct ScoringOptions {
  /// Worker threads (0 = one per hardware core, 1 = single-threaded).
  size_t threads = 0;
  /// Batched multi-threaded tower vs the legacy scalar reference loop.
  /// Rankings are bit-identical either way.
  bool batched = true;
  /// Scoring-tower backend. kExactFp32 (default) keeps both paths above
  /// bit-identical to prior releases (DiffQuantTransparency enforces this);
  /// kInt8/kFp16 route the batched path through the quantized SIMD kernels
  /// with bounded score error (docs/QUANTIZATION.md). A quantized backend
  /// with `batched == false` is contradictory — the scalar loop is the
  /// exact reference — so it logs a warning and scores exactly.
  QuantBackend backend = QuantBackend::kExactFp32;
};

/// Scores `candidates` with the NECS ensemble under `options`: entry i is
/// the ensemble-mean predicted application seconds of candidates[i]. The
/// one place both scoring paths live; LiteSystem::ScoreCandidates and the
/// snapshot/serving paths all delegate here.
std::vector<double> ScoreCandidateSet(
    const spark::SparkRunner* runner, const Corpus& feature_space,
    const std::vector<const NecsModel*>& models,
    const spark::ApplicationSpec& app, const spark::DataSpec& data,
    const spark::ClusterEnv& env, const std::vector<spark::Config>& candidates,
    const ScoringOptions& options);

/// The model-dependent inputs of one recommendation. Everything referenced
/// must outlive the call; the pipeline itself is stateless.
struct PipelineContext {
  const CandidateGenerator* acg = nullptr;
  size_t num_candidates = 60;
  /// Base seed; the per-request RNG is seed ^ hash(app.name), so identical
  /// (seed, app) pairs draw identical candidate streams on every path.
  uint64_t seed = 41;

  // --- Guardrail extensions (serve/guardrail.h). All defaults are inert:
  // --- a default-constructed context is bit-identical to the PR 5 pipeline.

  /// SLA deadline on predicted runtime: finite values make the argmin skip
  /// candidates whose score exceeds the deadline (counted in
  /// lite_sla_filtered_candidates_total). When no candidate qualifies, the
  /// plain argmin result is returned and lite_sla_infeasible_total counts
  /// the miss — an SLA must never leave the tenant with nothing.
  double sla_deadline_seconds = std::numeric_limits<double>::infinity();
  /// Knob-importance pruning (LOCAT-style): when all three fields are set,
  /// every sampled candidate's knobs *outside* the top
  /// `importance_keep_fraction` fraction (by importance rank) are pinned to
  /// `pin_reference`'s values before dedupe, collapsing the pool to
  /// variations of the knobs the model actually cares about. Both pointers
  /// must outlive the call.
  const std::vector<double>* knob_importance = nullptr;
  double importance_keep_fraction = 1.0;
  const spark::Config* pin_reference = nullptr;

  // --- Retrieval extension (serve/retrieval_cache.h). Inert by default.

  /// Warm-start seeds: configurations retrieved for similar historical
  /// workloads, appended to the pool *after* the sampled candidates went
  /// through pruning, dedupe and the feasibility filter. Seeds are
  /// feasibility-checked individually (an infeasible seed is dropped, never
  /// the keep-raw fallback) and deduped against the pool, so the seeded
  /// pool is always a superset of the unseeded one — the seeded argmin can
  /// never be worse than the unseeded argmin on the same snapshot (the
  /// retrieval oracle invariant). nullptr or empty = bit-identical to the
  /// unseeded pipeline.
  const std::vector<spark::Config>* seed_candidates = nullptr;
};

/// Scoring callback: maps the filtered candidate set to predicted seconds
/// (entry i scores candidates[i]).
using ScoreFn =
    std::function<std::vector<double>(const std::vector<spark::Config>&)>;

/// Runs Steps 2-3 once: sample candidates from the adaptive region, dedupe,
/// drop placement-infeasible configurations (keeping the raw set if the
/// filter would empty it), score via `score`, and argmin.
///
/// Non-finite scores are skipped by the argmin (a NaN would otherwise fail
/// every `<` and silently return a default-constructed Config); if every
/// score is non-finite the first candidate is returned with a warning and
/// the lite_recommend_nonfinite_scores_total counter records the event.
LiteSystem::Recommendation RunRecommendPipeline(
    const PipelineContext& ctx, const spark::ApplicationSpec& app,
    const spark::DataSpec& data, const spark::ClusterEnv& env,
    const ScoreFn& score);

/// Step 4 feedback extraction: subsamples `run`'s stage runs to
/// `max_stage_instances`, optionally relabels them with the failure-cap
/// sentinel (the naive ablation protocol), and featurizes them as
/// target-domain instances. Stage runs whose `stage_index` does not name a
/// stage of `app` are dropped and counted in lite_feedback_bad_stage_total
/// (a malformed or fault-injected result must never index out of bounds).
std::vector<StageInstance> ExtractFeedbackInstances(
    const spark::SparkRunner* runner, const Corpus& feature_space,
    size_t max_stage_instances, const spark::ApplicationSpec& app,
    const spark::DataSpec& data, const spark::ClusterEnv& env,
    const spark::Config& config, const spark::AppRunResult& run,
    bool sentinel_labels);

}  // namespace lite::serve

#endif  // LITE_SERVE_RECOMMEND_PIPELINE_H_
