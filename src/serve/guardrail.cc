#include "serve/guardrail.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"

namespace lite::serve {

namespace {
// Guardrail observability (docs/GUARDRAILS.md lists the catalog). Same
// sharded-atomic, never-perturbs-results contract as every other series:
// the guardrail's *decisions* depend only on its own deterministic state,
// never on metric values.
struct GuardMetrics {
  obs::Counter* admitted;
  obs::Counter* observations;
  obs::Counter* trips;
  obs::Counter* recoveries;
  obs::Counter* incumbent_served;
  obs::Counter* probes;
  obs::Counter* exploration_suppressed;
  obs::Counter* incumbent_updates;
  obs::Gauge* quarantined_tenants;
  obs::Gauge* probing_tenants;

  static const GuardMetrics& Get() {
    static const GuardMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      return new GuardMetrics{
          reg.GetCounter("serve_guardrail_admitted_total"),
          reg.GetCounter("serve_guardrail_observations_total"),
          reg.GetCounter("serve_guardrail_trips_total"),
          reg.GetCounter("serve_guardrail_recoveries_total"),
          reg.GetCounter("serve_guardrail_incumbent_served_total"),
          reg.GetCounter("serve_guardrail_probes_total"),
          reg.GetCounter("serve_guardrail_exploration_suppressed_total"),
          reg.GetCounter("serve_guardrail_incumbent_updates_total"),
          reg.GetGauge("serve_guardrail_quarantined_tenants"),
          reg.GetGauge("serve_guardrail_probing_tenants"),
      };
    }();
    return *m;
  }
};

// Per-transition labeled series: serve_guardrail_transitions_total{to=...}.
// Registration is once per label value (three states), updates lock-free.
obs::Counter* TransitionCounter(BreakerState to) {
  static obs::Counter* counters[3] = {
      obs::MetricsRegistry::Global().GetCounter(
          "serve_guardrail_transitions_total{to=\"closed\"}"),
      obs::MetricsRegistry::Global().GetCounter(
          "serve_guardrail_transitions_total{to=\"quarantined\"}"),
      obs::MetricsRegistry::Global().GetCounter(
          "serve_guardrail_transitions_total{to=\"probing\"}"),
  };
  return counters[static_cast<size_t>(to)];
}

}  // namespace

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kQuarantined:
      return "quarantined";
    case BreakerState::kProbing:
      return "probing";
  }
  return "unknown";
}

std::string ValidateGuardrailOptions(const GuardrailOptions& o) {
  if (std::isnan(o.failure_rate_threshold) || o.failure_rate_threshold < 0.0 ||
      o.failure_rate_threshold > 1.0) {
    return "guardrail.failure_rate_threshold must be in [0, 1] and not NaN";
  }
  if (std::isnan(o.regression_ratio_threshold) ||
      o.regression_ratio_threshold < 1.0) {
    return "guardrail.regression_ratio_threshold must be >= 1 and not NaN";
  }
  if (std::isnan(o.importance_keep_fraction) ||
      o.importance_keep_fraction <= 0.0 || o.importance_keep_fraction > 1.0) {
    return "guardrail.importance_keep_fraction must be in (0, 1] and not NaN";
  }
  if (!o.enabled) return "";  // inert: structural knobs are never consulted.
  if (o.window == 0) return "guardrail.window must be > 0 when enabled";
  if (o.min_observations == 0) {
    return "guardrail.min_observations must be > 0 when enabled";
  }
  if (o.min_observations > o.window) {
    return "guardrail.min_observations must not exceed guardrail.window";
  }
  if (o.quarantine_cooldown == 0) {
    return "guardrail.quarantine_cooldown must be > 0 when enabled";
  }
  if (o.probe_interval == 0) {
    return "guardrail.probe_interval must be > 0 when enabled";
  }
  if (o.probes_to_close == 0) {
    return "guardrail.probes_to_close must be > 0 when enabled";
  }
  if (o.prune_knobs && o.importance_sample < 8) {
    return "guardrail.importance_sample must be >= 8 when prune_knobs is on";
  }
  return "";
}

std::string ValidateTenantPolicy(const TenantPolicy& p) {
  if (std::isnan(p.sla_deadline_seconds) || p.sla_deadline_seconds <= 0.0) {
    return "policy.sla_deadline_seconds must be > 0 and not NaN";
  }
  if (std::isnan(p.exploration_fraction) || p.exploration_fraction < 0.0 ||
      p.exploration_fraction > 1.0) {
    return "policy.exploration_fraction must be in [0, 1] and not NaN";
  }
  return "";
}

std::vector<double> ComputeKnobImportance(
    const std::vector<spark::Config>& candidates,
    const std::vector<double>& scores) {
  const size_t num_knobs = spark::kNumKnobs;
  std::vector<double> importance(num_knobs, 0.0);
  // Collect the scored subset once: importance is about how the *model's*
  // prediction moves with each knob, so unscored candidates carry nothing.
  std::vector<size_t> scored;
  for (size_t i = 0; i < candidates.size() && i < scores.size(); ++i) {
    if (std::isfinite(scores[i]) && candidates[i].size() == num_knobs) {
      scored.push_back(i);
    }
  }
  if (scored.size() < 8) return importance;

  constexpr size_t kBins = 4;
  double max_importance = 0.0;
  for (size_t k = 0; k < num_knobs; ++k) {
    // Sort candidate indices by this knob's value and split into equal-count
    // quantile bins; the knob matters iff the per-bin mean log-scores vary.
    std::vector<size_t> order = scored;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return candidates[a][k] < candidates[b][k];
    });
    if (candidates[order.front()][k] == candidates[order.back()][k]) {
      continue;  // knob never varies in this pool: importance 0.
    }
    std::vector<double> bin_means;
    const size_t per_bin = order.size() / kBins;
    for (size_t b = 0; b < kBins; ++b) {
      const size_t lo = b * per_bin;
      const size_t hi = (b + 1 == kBins) ? order.size() : (b + 1) * per_bin;
      if (lo >= hi) continue;
      double sum = 0.0;
      for (size_t i = lo; i < hi; ++i) {
        sum += std::log1p(std::max(scores[order[i]], 0.0));
      }
      bin_means.push_back(sum / static_cast<double>(hi - lo));
    }
    if (bin_means.size() < 2) continue;
    const double mean =
        std::accumulate(bin_means.begin(), bin_means.end(), 0.0) /
        static_cast<double>(bin_means.size());
    double var = 0.0;
    for (double m : bin_means) var += (m - mean) * (m - mean);
    var /= static_cast<double>(bin_means.size());
    importance[k] = var;
    max_importance = std::max(max_importance, var);
  }
  if (max_importance > 0.0) {
    for (double& v : importance) v /= max_importance;
  }
  return importance;
}

std::vector<size_t> TopImportanceKnobs(const std::vector<double>& importance,
                                       double keep_fraction) {
  std::vector<size_t> order(importance.size());
  std::iota(order.begin(), order.end(), 0);
  if (keep_fraction >= 1.0) return order;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return importance[a] > importance[b];  // stable: ties keep lower index.
  });
  const size_t keep = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(keep_fraction * static_cast<double>(importance.size()))));
  order.resize(std::min(keep, order.size()));
  std::sort(order.begin(), order.end());
  return order;
}

Guardrail::Guardrail(GuardrailOptions options) : options_(options) {
  std::string err = ValidateGuardrailOptions(options_);
  LITE_CHECK(err.empty()) << "Guardrail: " << err;
}

Guardrail::Tenant& Guardrail::TenantRef(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    Tenant t;
    t.explore_rng = Rng(options_.seed ^ std::hash<std::string>{}(name));
    it = tenants_.emplace(name, std::move(t)).first;
  }
  return it->second;
}

void Guardrail::Transition(const std::string& name, Tenant* t, BreakerState to,
                           const std::string& reason) {
  const BreakerState from = t->state;
  if (from == to) return;
  t->state = to;
  log_.push_back(GuardTransition{static_cast<uint64_t>(log_.size()), name,
                                 from, to, reason});
  TransitionCounter(to)->Inc();
  if (to == BreakerState::kQuarantined) {
    ++stats_.trips;
    GuardMetrics::Get().trips->Inc();
  } else if (to == BreakerState::kClosed && from == BreakerState::kProbing) {
    ++stats_.recoveries;
    GuardMetrics::Get().recoveries->Inc();
  }
  size_t quarantined = 0, probing = 0;
  for (const auto& [tn, ts] : tenants_) {
    if (ts.state == BreakerState::kQuarantined) ++quarantined;
    if (ts.state == BreakerState::kProbing) ++probing;
  }
  GuardMetrics::Get().quarantined_tenants->Set(
      static_cast<double>(quarantined));
  GuardMetrics::Get().probing_tenants->Set(static_cast<double>(probing));
  // Per-tenant labeled state series (0=closed, 1=quarantined, 2=probing).
  // Registration happens at most once per tenant per state change — rare.
  obs::MetricsRegistry::Global()
      .GetGauge("serve_guardrail_state{tenant=\"" + name + "\"}")
      ->Set(static_cast<double>(static_cast<int>(to)));
  LITE_INFO << "guardrail[" << name << "]: " << BreakerStateName(from)
            << " -> " << BreakerStateName(to) << " (" << reason << ")";
}

bool Guardrail::WindowStable(const Tenant& t) const {
  return t.state == BreakerState::kClosed && t.has_incumbent &&
         t.window.size() >= options_.window;
}

void Guardrail::SetTenantPolicy(const std::string& tenant,
                                TenantPolicy policy) {
  std::string err = ValidateTenantPolicy(policy);
  if (!err.empty()) throw std::invalid_argument("Guardrail: " + err);
  std::lock_guard<std::mutex> lock(mu_);
  TenantRef(tenant).policy = policy;
}

TenantPolicy Guardrail::PolicyOf(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? TenantPolicy{} : it->second.policy;
}

GuardDecision Guardrail::Admit(const std::string& tenant) {
  const GuardMetrics& metrics = GuardMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  Tenant& t = TenantRef(tenant);
  ++stats_.admitted;
  metrics.admitted->Inc();

  GuardDecision d;
  d.policy = t.policy;
  d.has_incumbent = t.has_incumbent;
  if (t.has_incumbent) {
    d.incumbent = t.incumbent;
    d.incumbent_seconds = t.incumbent_seconds;
  }

  switch (t.state) {
    case BreakerState::kClosed:
      // Exploration budget: once a baseline exists, only the budgeted
      // fraction of requests explores the model; the rest exploit the
      // incumbent. The per-tenant RNG makes the schedule deterministic for
      // a fixed seed and request order. fraction == 1.0 draws nothing, so
      // the default policy is bitwise transparent.
      if (t.has_incumbent && t.policy.exploration_fraction < 1.0 &&
          t.explore_rng.Uniform() >= t.policy.exploration_fraction) {
        d.use_model = false;
        ++stats_.exploration_suppressed;
        metrics.exploration_suppressed->Inc();
      }
      break;
    case BreakerState::kQuarantined:
      if (t.has_incumbent) {
        d.use_model = false;
        ++t.quarantine_served;
        if (t.quarantine_served >= options_.quarantine_cooldown) {
          t.probe_tick = 0;
          t.healthy_probes = 0;
          t.probes_outstanding = 0;
          Transition(tenant, &t, BreakerState::kProbing, "cooldown elapsed");
        }
      }
      // A quarantined tenant without an incumbent (possible only if the
      // breaker was tripped manually) has nothing to fall back to: serve
      // the model rather than nothing.
      break;
    case BreakerState::kProbing:
      ++t.probe_tick;
      if (t.probe_tick % options_.probe_interval == 0) {
        d.probe = true;  // budgeted model probe.
        ++t.probes_outstanding;
        ++stats_.probes;
        metrics.probes->Inc();
      } else if (t.has_incumbent) {
        d.use_model = false;
      }
      break;
  }
  d.state = t.state;
  d.stable = WindowStable(t);
  if (!d.use_model) {
    ++stats_.incumbent_served;
    metrics.incumbent_served->Inc();
  }
  return d;
}

void Guardrail::Observe(const std::string& tenant, const spark::Config& config,
                        double observed_seconds, bool failed, bool censored) {
  const GuardMetrics& metrics = GuardMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  Tenant& t = TenantRef(tenant);
  ++stats_.observations;
  metrics.observations->Inc();

  const bool bad = failed || censored;
  // Probe classification must look at the incumbent *as of serving time*:
  // a successful probe may become the new incumbent just below, and it must
  // still count as probe feedback afterwards — a probe that beats the
  // baseline is the strongest health evidence there is.
  const bool matches_incumbent = t.has_incumbent && config == t.incumbent;
  // Incumbent tracking: only honest, uncensored measurements may become the
  // baseline (a censored cap value would make the fallback a config we have
  // never actually seen finish).
  if (!bad && std::isfinite(observed_seconds) &&
      observed_seconds < t.incumbent_seconds) {
    t.has_incumbent = true;
    t.incumbent = config;
    t.incumbent_seconds = observed_seconds;
    metrics.incumbent_updates->Inc();
  }

  Observation obs;
  obs.bad = bad;
  obs.ratio = (!bad && t.has_incumbent && t.incumbent_seconds > 0.0)
                  ? observed_seconds / t.incumbent_seconds
                  : 1.0;
  t.window.push_back(obs);
  while (t.window.size() > options_.window) t.window.pop_front();

  switch (t.state) {
    case BreakerState::kClosed: {
      if (!t.has_incumbent || t.window.size() < options_.min_observations) {
        break;  // nothing to fall back to, or not enough evidence.
      }
      size_t bad_count = 0, good_count = 0;
      double ratio_sum = 0.0;
      for (const Observation& o : t.window) {
        if (o.bad) {
          ++bad_count;
        } else {
          ++good_count;
          ratio_sum += o.ratio;
        }
      }
      const double bad_frac =
          static_cast<double>(bad_count) / static_cast<double>(t.window.size());
      const double mean_ratio =
          good_count > 0 ? ratio_sum / static_cast<double>(good_count) : 1.0;
      if (bad_frac >= options_.failure_rate_threshold) {
        t.window.clear();
        t.quarantine_served = 0;
        t.healthy_probes = 0;
        Transition(tenant, &t, BreakerState::kQuarantined,
                   "failure/censoring rate " + std::to_string(bad_frac));
      } else if (good_count > 0 &&
                 mean_ratio >= options_.regression_ratio_threshold) {
        t.window.clear();
        t.quarantine_served = 0;
        t.healthy_probes = 0;
        Transition(tenant, &t, BreakerState::kQuarantined,
                   "runtime regression ratio " + std::to_string(mean_ratio));
      }
      break;
    }
    case BreakerState::kQuarantined:
      // Only incumbent feedback flows here; transitions happen on the
      // admission side (cooldown).
      break;
    case BreakerState::kProbing: {
      // Probe feedback is feedback about a config the *model* chose: any
      // non-incumbent config (pre-update view; see matches_incumbent above),
      // or incumbent-matching feedback while a probe decision is still
      // unmatched — a converged model legitimately probes with the incumbent
      // config itself, and swallowing that feedback would strand the tenant
      // in PROBING forever.
      if (matches_incumbent && t.probes_outstanding == 0) break;
      if (t.probes_outstanding > 0) --t.probes_outstanding;
      if (bad || (t.has_incumbent && t.incumbent_seconds > 0.0 &&
                  observed_seconds / t.incumbent_seconds >=
                      options_.regression_ratio_threshold)) {
        t.window.clear();
        t.quarantine_served = 0;
        t.healthy_probes = 0;
        Transition(tenant, &t, BreakerState::kQuarantined,
                   bad ? "probe failed/censored" : "probe regressed");
      } else {
        ++t.healthy_probes;
        if (t.healthy_probes >= options_.probes_to_close) {
          t.window.clear();
          Transition(tenant, &t, BreakerState::kClosed,
                     std::to_string(t.healthy_probes) + " healthy probes");
        }
      }
      break;
    }
  }
}

BreakerState Guardrail::StateOf(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? BreakerState::kClosed : it->second.state;
}

bool Guardrail::HasIncumbent(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it != tenants_.end() && it->second.has_incumbent;
}

spark::Config Guardrail::IncumbentOf(const std::string& tenant,
                                     double* seconds) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || !it->second.has_incumbent) {
    if (seconds != nullptr) {
      *seconds = std::numeric_limits<double>::infinity();
    }
    return {};
  }
  if (seconds != nullptr) *seconds = it->second.incumbent_seconds;
  return it->second.incumbent;
}

std::vector<GuardTransition> Guardrail::TransitionLog() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

Guardrail::Stats Guardrail::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t Guardrail::TenantsIn(BreakerState state) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [name, t] : tenants_) {
    if (t.state == state) ++n;
  }
  return n;
}

std::shared_ptr<const std::vector<double>> Guardrail::ImportanceFor(
    const std::string& family, uint64_t generation) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = importance_.find(family);
  if (it == importance_.end() || it->second.generation != generation) {
    return nullptr;
  }
  return it->second.importance;
}

void Guardrail::StoreImportance(const std::string& family, uint64_t generation,
                                std::vector<double> importance) {
  auto shared = std::make_shared<const std::vector<double>>(
      std::move(importance));
  std::lock_guard<std::mutex> lock(mu_);
  importance_[family] = ImportanceEntry{generation, std::move(shared)};
  obs::MetricsRegistry::Global()
      .GetCounter("serve_guardrail_importance_computed_total")
      ->Inc();
}

uint64_t Guardrail::ImportanceSeed(const std::string& family) const {
  return options_.seed ^ std::hash<std::string>{}(family);
}

}  // namespace lite::serve
