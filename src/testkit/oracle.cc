#include "testkit/oracle.h"

#include <cmath>
#include <map>
#include <sstream>

#include "sparksim/eventlog.h"
#include "sparksim/resilient_runner.h"
#include "sparksim/trace.h"

namespace lite::testkit {

namespace {

spark::CostModelOptions WithoutNoise(spark::CostModelOptions o) {
  o.noise_sigma = 0.0;
  return o;
}

bool HasOp(const spark::StageSpec& stage, const std::string& op) {
  for (const auto& o : stage.ops) {
    if (o == op) return true;
  }
  return false;
}

/// Doubles the input data while keeping the tuple otherwise identical
/// (iteration counts fixed so the stage structure is comparable).
spark::DataSpec DoubleData(const spark::DataSpec& data) {
  spark::DataSpec d = data;
  d.size_mb *= 2.0;
  d.num_rows *= 2;
  return d;
}

void Violation(OracleReport* report, const std::string& invariant,
               const std::string& detail) {
  report->violations.push_back({invariant, detail});
}

std::string Fmt(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

std::string OracleReport::Summary() const {
  std::ostringstream os;
  for (const auto& v : violations) {
    os << v.invariant << ": " << v.detail << "\n";
  }
  return os.str();
}

SimulatorOracle::SimulatorOracle(spark::CostModelOptions model_options,
                                 OracleOptions options)
    : options_(options),
      runner_(model_options),
      quiet_runner_(WithoutNoise(model_options)) {}

const std::vector<std::string>& SimulatorOracle::InvariantNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "stage_sanity",
      "total_consistency",
      "determinism",
      "eventlog_consistency",
      "trace_consistency",
      "inner_metrics",
      "oom_consistency",
      "data_monotonicity",
      "executor_scaling",
      "iteration_monotonicity",
      "shuffle_buffer_sensitivity",
      "env_monotonicity",
      "fault_replay",
      "resilient_transparency",
  };
  return *names;
}

OracleReport SimulatorOracle::Check(const WorkloadTuple& t) const {
  OracleReport report;
  CheckStageSanity(t, &report);
  CheckTotalConsistency(t, &report);
  CheckDeterminism(t, &report);
  CheckEventLogConsistency(t, &report);
  CheckTraceConsistency(t, &report);
  CheckInnerMetrics(t, &report);
  CheckOomConsistency(t, &report);
  CheckDataMonotonicity(t, &report);
  CheckExecutorScaling(t, &report);
  CheckIterationMonotonicity(t, &report);
  CheckShuffleBufferSensitivity(t, &report);
  CheckEnvMonotonicity(t, &report);
  CheckFaultReplay(t, &report);
  CheckResilientTransparency(t, &report);
  return report;
}

void SimulatorOracle::CheckStageSanity(const WorkloadTuple& t,
                                       OracleReport* report) const {
  const spark::CostModel& model = runner_.cost_model();
  spark::AppRunResult run = model.Run(*t.app, t.data, t.env, t.config);
  double cap = model.options().failure_cap_seconds;
  for (const auto& sr : run.stage_runs) {
    std::string at = "stage " + std::to_string(sr.stage_index) + " it" +
                     std::to_string(sr.iteration);
    if (!std::isfinite(sr.seconds) || !std::isfinite(sr.cpu_seconds) ||
        !std::isfinite(sr.input_mb) || !std::isfinite(sr.shuffle_mb) ||
        !std::isfinite(sr.spill_mb) || !std::isfinite(sr.memory_pressure)) {
      Violation(report, "stage_sanity", at + ": non-finite diagnostics");
      continue;
    }
    if (sr.input_mb < 0.0 || sr.shuffle_mb < 0.0 || sr.spill_mb < 0.0 ||
        sr.cpu_seconds < 0.0 || sr.memory_pressure < 0.0) {
      Violation(report, "stage_sanity", at + ": negative diagnostics");
    }
    if (sr.failed) {
      if (std::fabs(sr.seconds - cap) > 1e-9) {
        Violation(report, "stage_sanity",
                  at + ": failed stage reports " + Fmt(sr.seconds) +
                      "s instead of the failure cap " + Fmt(cap));
      }
      continue;  // diagnostics of a failed stage are partial.
    }
    if (sr.seconds <= 0.0) {
      Violation(report, "stage_sanity",
                at + ": non-positive stage time " + Fmt(sr.seconds));
    }
    if (sr.tasks < 1) {
      Violation(report, "stage_sanity",
                at + ": task count " + std::to_string(sr.tasks) + " < 1");
    }
    if (sr.waves < 1 || sr.waves > sr.tasks) {
      Violation(report, "stage_sanity",
                at + ": wave count " + std::to_string(sr.waves) +
                    " outside [1, tasks=" + std::to_string(sr.tasks) + "]");
      continue;
    }
    int min_waves = static_cast<int>(
        (sr.tasks + t.env.total_cores() - 1) / t.env.total_cores());
    if (sr.waves < min_waves) {
      Violation(report, "stage_sanity",
                at + ": " + std::to_string(sr.tasks) + " tasks on " +
                    std::to_string(t.env.total_cores()) +
                    " cluster cores cannot finish in " +
                    std::to_string(sr.waves) + " wave(s)");
    }
  }
}

void SimulatorOracle::CheckTotalConsistency(const WorkloadTuple& t,
                                            OracleReport* report) const {
  const spark::CostModel& model = runner_.cost_model();
  spark::AppRunResult run = model.Run(*t.app, t.data, t.env, t.config);
  double cap = model.options().failure_cap_seconds;
  if (run.failed) {
    if (std::fabs(run.total_seconds - cap) > 1e-9) {
      Violation(report, "total_consistency",
                "failed run reports " + Fmt(run.total_seconds) +
                    "s instead of the failure cap " + Fmt(cap));
    }
    if (run.stage_runs.empty() || !run.stage_runs.back().failed) {
      Violation(report, "total_consistency",
                "failed run does not end at the failed stage");
    }
    return;
  }
  if (run.total_seconds > cap * (1.0 + 1e-12)) {
    Violation(report, "total_consistency",
              "total " + Fmt(run.total_seconds) + "s exceeds the cap " +
                  Fmt(cap) + "s");
  }
  double sum = 0.0;
  for (const auto& sr : run.stage_runs) sum += sr.seconds;
  double expected = std::min(sum, cap);
  if (std::fabs(run.total_seconds - expected) >
      options_.rel_tol * std::max(1.0, expected)) {
    Violation(report, "total_consistency",
              "total " + Fmt(run.total_seconds) +
                  "s != capped stage sum " + Fmt(expected) + "s");
  }
}

void SimulatorOracle::CheckDeterminism(const WorkloadTuple& t,
                                       OracleReport* report) const {
  const spark::CostModel& model = runner_.cost_model();
  spark::AppRunResult a = model.Run(*t.app, t.data, t.env, t.config);
  spark::AppRunResult b = model.Run(*t.app, t.data, t.env, t.config);
  if (a.total_seconds != b.total_seconds || a.failed != b.failed ||
      a.stage_runs.size() != b.stage_runs.size()) {
    Violation(report, "determinism",
              "repeated runs disagree: " + Fmt(a.total_seconds) + "s vs " +
                  Fmt(b.total_seconds) + "s");
    return;
  }
  for (size_t i = 0; i < a.stage_runs.size(); ++i) {
    if (a.stage_runs[i].seconds != b.stage_runs[i].seconds) {
      Violation(report, "determinism",
                "stage " + std::to_string(i) + " drifted between runs: " +
                    Fmt(a.stage_runs[i].seconds) + "s vs " +
                    Fmt(b.stage_runs[i].seconds) + "s");
      return;
    }
  }
}

void SimulatorOracle::CheckEventLogConsistency(const WorkloadTuple& t,
                                               OracleReport* report) const {
  spark::Submission sub = runner_.Submit(*t.app, t.data, t.env, t.config);
  spark::ParsedEventLog parsed;
  if (!spark::ParseEventLog(sub.event_log, &parsed)) {
    Violation(report, "eventlog_consistency", "own event log does not parse");
    return;
  }
  if (parsed.app_name != t.app->name) {
    Violation(report, "eventlog_consistency",
              "app name round-trip: '" + parsed.app_name + "'");
  }
  if (parsed.failed != sub.result.failed) {
    Violation(report, "eventlog_consistency", "failure flag round-trip");
  }
  if (parsed.stages.size() != sub.result.stage_runs.size()) {
    Violation(report, "eventlog_consistency",
              "stage count " + std::to_string(parsed.stages.size()) + " vs " +
                  std::to_string(sub.result.stage_runs.size()));
    return;
  }
  // The writer keeps 9 significant digits.
  const double tol = 1e-8;
  for (size_t i = 0; i < parsed.stages.size(); ++i) {
    const auto& ev = parsed.stages[i];
    const auto& sr = sub.result.stage_runs[i];
    if (ev.stage_index != sr.stage_index || ev.iteration != sr.iteration ||
        std::fabs(ev.seconds - sr.seconds) >
            tol * std::max(1.0, std::fabs(sr.seconds))) {
      Violation(report, "eventlog_consistency",
                "stage event " + std::to_string(i) + " drifted in round-trip");
      return;
    }
  }
  if (std::fabs(parsed.total_seconds - sub.result.total_seconds) >
      tol * std::max(1.0, sub.result.total_seconds)) {
    Violation(report, "eventlog_consistency",
              "total round-trip: " + Fmt(parsed.total_seconds) + "s vs " +
                  Fmt(sub.result.total_seconds) + "s");
  }
}

void SimulatorOracle::CheckTraceConsistency(const WorkloadTuple& t,
                                            OracleReport* report) const {
  const spark::CostModel& model = runner_.cost_model();
  spark::AppRunResult run = model.Run(*t.app, t.data, t.env, t.config);
  std::string trace = spark::WriteChromeTrace(*t.app, run);
  spark::ParsedChromeTrace parsed;
  if (!spark::ParseChromeTrace(trace, &parsed)) {
    Violation(report, "trace_consistency", "own trace does not parse");
    return;
  }
  if (parsed.thread_names.size() != t.app->stages.size()) {
    Violation(report, "trace_consistency",
              "trace rows " + std::to_string(parsed.thread_names.size()) +
                  " != stage specs " + std::to_string(t.app->stages.size()));
  }
  if (parsed.spans.size() != run.stage_runs.size()) {
    Violation(report, "trace_consistency",
              "trace spans " + std::to_string(parsed.spans.size()) +
                  " != stage executions " +
                  std::to_string(run.stage_runs.size()));
    return;
  }
  // The writer emits fixed-point microseconds with 3 decimals.
  const double tol_us = 1e-2;
  double cursor_us = 0.0;
  for (size_t i = 0; i < parsed.spans.size(); ++i) {
    const auto& span = parsed.spans[i];
    const auto& sr = run.stage_runs[i];
    if (span.tid != static_cast<int>(sr.stage_index) ||
        span.failed != sr.failed) {
      Violation(report, "trace_consistency",
                "span " + std::to_string(i) + " row/failure mismatch");
      return;
    }
    if (std::fabs(span.dur_us - sr.seconds * 1e6) > tol_us) {
      Violation(report, "trace_consistency",
                "span " + std::to_string(i) + " duration " +
                    Fmt(span.dur_us) + "us != stage time " +
                    Fmt(sr.seconds * 1e6) + "us");
      return;
    }
    if (std::fabs(span.ts_us - cursor_us) > tol_us * (1.0 + double(i))) {
      Violation(report, "trace_consistency",
                "span " + std::to_string(i) + " not contiguous in time");
      return;
    }
    cursor_us += sr.seconds * 1e6;
  }
}

void SimulatorOracle::CheckInnerMetrics(const WorkloadTuple& t,
                                        OracleReport* report) const {
  spark::AppRunResult run =
      runner_.cost_model().Run(*t.app, t.data, t.env, t.config);
  std::vector<double> m = run.InnerMetrics();
  if (m.size() != spark::AppRunResult::kInnerMetricsDim) {
    Violation(report, "inner_metrics", "wrong metric dimension");
    return;
  }
  for (size_t i = 0; i < m.size(); ++i) {
    if (!std::isfinite(m[i])) {
      Violation(report, "inner_metrics",
                "metric " + std::to_string(i) + " non-finite");
      return;
    }
  }
  if (m[6] != (run.failed ? 1.0 : 0.0)) {
    Violation(report, "inner_metrics", "failure flag metric inconsistent");
  }
}

void SimulatorOracle::CheckOomConsistency(const WorkloadTuple& t,
                                          OracleReport* report) const {
  const spark::CostModel& model = runner_.cost_model();
  spark::AppRunResult run = model.Run(*t.app, t.data, t.env, t.config);
  double threshold = model.options().oom_pressure_threshold;
  for (const auto& sr : run.stage_runs) {
    bool oom_reported = sr.failed && sr.failure_reason.find("executor OOM") !=
                                         std::string::npos;
    bool over_threshold = sr.memory_pressure > threshold;
    if (over_threshold && !oom_reported) {
      Violation(report, "oom_consistency",
                "stage " + std::to_string(sr.stage_index) + " pressure " +
                    Fmt(sr.memory_pressure) + " exceeds the OOM threshold " +
                    Fmt(threshold) + " but did not fail as OOM");
    }
    if (oom_reported && !over_threshold) {
      Violation(report, "oom_consistency",
                "stage " + std::to_string(sr.stage_index) +
                    " reported OOM at pressure " + Fmt(sr.memory_pressure));
    }
  }
}

void SimulatorOracle::CheckDataMonotonicity(const WorkloadTuple& t,
                                            OracleReport* report) const {
  const spark::CostModel& model = quiet_runner_.cost_model();
  spark::AppRunResult small = model.Run(*t.app, t.data, t.env, t.config);
  spark::AppRunResult big =
      model.Run(*t.app, DoubleData(t.data), t.env, t.config);
  if (small.failed && !big.failed) {
    Violation(report, "data_monotonicity",
              "run fails at " + Fmt(t.data.size_mb) + "MB (" +
                  small.failure_reason + ") but succeeds at twice the data");
    return;
  }
  if (big.total_seconds <
      small.total_seconds * (1.0 - options_.rel_tol) - 1e-9) {
    Violation(report, "data_monotonicity",
              "doubling the data shrank the runtime: " +
                  Fmt(small.total_seconds) + "s -> " +
                  Fmt(big.total_seconds) + "s");
  }
}

void SimulatorOracle::CheckExecutorScaling(const WorkloadTuple& t,
                                           OracleReport* report) const {
  const auto& space = spark::KnobSpace::Spark16();
  spark::Config scaled = t.config;
  scaled[spark::kExecutorInstances] =
      std::min(space.spec(spark::kExecutorInstances).max_value,
               t.config[spark::kExecutorInstances] * 2.0);
  scaled = space.Clamp(scaled);
  if (scaled[spark::kExecutorInstances] ==
      t.config[spark::kExecutorInstances]) {
    return;  // already at the knob ceiling.
  }
  const spark::CostModel& model = quiet_runner_.cost_model();
  spark::AppRunResult base = model.Run(*t.app, t.data, t.env, t.config);
  spark::AppRunResult more = model.Run(*t.app, t.data, t.env, scaled);
  if (base.failed != more.failed) {
    Violation(report, "executor_scaling",
              "doubling executor instances flipped the failure outcome");
    return;
  }
  if (base.failed) return;
  if (base.stage_runs.size() != more.stage_runs.size()) {
    Violation(report, "executor_scaling",
              "doubling executor instances changed the stage structure");
    return;
  }
  for (size_t i = 0; i < base.stage_runs.size(); ++i) {
    if (more.stage_runs[i].waves > base.stage_runs[i].waves) {
      Violation(report, "executor_scaling",
                "stage " + std::to_string(base.stage_runs[i].stage_index) +
                    ": more executors increased waves " +
                    std::to_string(base.stage_runs[i].waves) + " -> " +
                    std::to_string(more.stage_runs[i].waves));
      return;
    }
    // On one node, occupancy (and so memory-bandwidth contention) can only
    // grow with more executors: pure compute time must not shrink.
    if (t.env.num_nodes == 1 &&
        more.stage_runs[i].cpu_seconds <
            base.stage_runs[i].cpu_seconds * (1.0 - options_.rel_tol)) {
      Violation(report, "executor_scaling",
                "stage " + std::to_string(base.stage_runs[i].stage_index) +
                    ": more executors shrank pure compute time " +
                    Fmt(base.stage_runs[i].cpu_seconds) + "s -> " +
                    Fmt(more.stage_runs[i].cpu_seconds) + "s on one node");
      return;
    }
  }
}

void SimulatorOracle::CheckIterationMonotonicity(const WorkloadTuple& t,
                                                 OracleReport* report) const {
  const spark::CostModel& model = quiet_runner_.cost_model();
  spark::AppRunResult run = model.Run(*t.app, t.data, t.env, t.config);
  if (run.failed) return;
  // Input (textFile) stages re-partition by block size, which makes their
  // per-task work non-monotone in the frontier; every other per-iteration
  // stage must do no more work in later iterations (frontier decay).
  std::map<size_t, double> last_seconds;
  for (const auto& sr : run.stage_runs) {
    const spark::StageSpec& stage = t.app->stages[sr.stage_index];
    if (!stage.per_iteration || HasOp(stage, "textFile")) continue;
    auto it = last_seconds.find(sr.stage_index);
    if (it != last_seconds.end() &&
        sr.seconds > it->second * (1.0 + options_.rel_tol) + 1e-9) {
      Violation(report, "iteration_monotonicity",
                "stage " + std::to_string(sr.stage_index) + " grew from " +
                    Fmt(it->second) + "s to " + Fmt(sr.seconds) +
                    "s at iteration " + std::to_string(sr.iteration));
      return;
    }
    last_seconds[sr.stage_index] = sr.seconds;
  }
}

void SimulatorOracle::CheckShuffleBufferSensitivity(const WorkloadTuple& t,
                                                    OracleReport* report) const {
  const spark::CostModel& model = quiet_runner_.cost_model();
  spark::AppRunResult base = model.Run(*t.app, t.data, t.env, t.config);
  if (base.failed) return;
  double shuffle_mb = 0.0;
  for (const auto& sr : base.stage_runs) shuffle_mb += sr.shuffle_mb;
  if (shuffle_mb <= 0.0) return;
  double cap = model.options().failure_cap_seconds;
  const auto& spec =
      spark::KnobSpace::Spark16().spec(spark::kShuffleFileBuffer);
  spark::Config small_buf = t.config;
  small_buf[spark::kShuffleFileBuffer] = spec.min_value;
  spark::Config big_buf = t.config;
  big_buf[spark::kShuffleFileBuffer] = spec.max_value;
  double t_small = model.Run(*t.app, t.data, t.env, small_buf).total_seconds;
  double t_big = model.Run(*t.app, t.data, t.env, big_buf).total_seconds;
  if (t_small >= cap || t_big >= cap) return;  // both clipped at the cap.
  // The file buffer only appears in the shuffle-write flush penalty, so a
  // smaller buffer must strictly slow any run with shuffle traffic. A model
  // that ignores this knob has lost (part of) its shuffle cost term.
  if (t_small <= t_big) {
    Violation(report, "shuffle_buffer_sensitivity",
              "run moves " + Fmt(shuffle_mb) +
                  "MB of shuffle but shrinking shuffle.file.buffer does not "
                  "slow it down (" +
                  Fmt(t_small) + "s vs " + Fmt(t_big) + "s)");
  }
}

void SimulatorOracle::CheckEnvMonotonicity(const WorkloadTuple& t,
                                           OracleReport* report) const {
  const spark::CostModel& model = quiet_runner_.cost_model();
  double base = model.Run(*t.app, t.data, t.env, t.config).total_seconds;

  struct Degrade {
    const char* what;
    spark::ClusterEnv env;
  };
  std::vector<Degrade> degrades;
  {
    spark::ClusterEnv e = t.env;
    e.network_gbps /= 4.0;
    degrades.push_back({"network bandwidth / 4", e});
  }
  {
    spark::ClusterEnv e = t.env;
    e.disk_mbps /= 4.0;
    degrades.push_back({"disk bandwidth / 4", e});
  }
  {
    spark::ClusterEnv e = t.env;
    e.cpu_ghz /= 2.0;
    degrades.push_back({"CPU frequency / 2", e});
  }
  {
    spark::ClusterEnv e = t.env;
    e.memory_mts /= 2.0;
    degrades.push_back({"memory speed / 2", e});
  }
  for (const auto& d : degrades) {
    double slower = model.Run(*t.app, t.data, d.env, t.config).total_seconds;
    if (slower < base * (1.0 - options_.rel_tol) - 1e-9) {
      Violation(report, "env_monotonicity",
                std::string(d.what) + " sped the run up: " + Fmt(base) +
                    "s -> " + Fmt(slower) + "s");
    }
  }
}

void SimulatorOracle::CheckFaultReplay(const WorkloadTuple& t,
                                       OracleReport* report) const {
  spark::FaultPlan plan(spark::FaultOptions::Moderate(options_.fault_seed));
  spark::ResilientRunner first(&runner_, plan);
  spark::ResilientRunner second(&runner_, plan);
  spark::MeasureOutcome a = first.MeasureDetailed(*t.app, t.data, t.env, t.config);
  spark::MeasureOutcome b = second.MeasureDetailed(*t.app, t.data, t.env, t.config);
  if (a.seconds != b.seconds || a.failed != b.failed ||
      a.censored != b.censored || a.attempts != b.attempts ||
      a.wasted_seconds != b.wasted_seconds) {
    Violation(report, "fault_replay",
              "identical fault plans diverged: " + Fmt(a.seconds) + "s/" +
                  std::to_string(a.attempts) + " attempts vs " +
                  Fmt(b.seconds) + "s/" + std::to_string(b.attempts));
  }
}

void SimulatorOracle::CheckResilientTransparency(const WorkloadTuple& t,
                                                 OracleReport* report) const {
  spark::ResilientRunner inert(&runner_);
  double via_harness = inert.Measure(*t.app, t.data, t.env, t.config);
  double direct = runner_.Measure(*t.app, t.data, t.env, t.config);
  if (via_harness != direct) {
    Violation(report, "resilient_transparency",
              "inert harness measurement " + Fmt(via_harness) +
                  "s != direct measurement " + Fmt(direct) + "s");
  }
}

std::string OracleCheckAsProperty(const SimulatorOracle& oracle,
                                  const WorkloadTuple& t) {
  OracleReport report = oracle.Check(t);
  return report.ok() ? std::string() : report.Summary();
}

}  // namespace lite::testkit
