#include "testkit/oracle.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "lite/lite_system.h"
#include "lite/snapshot.h"
#include "modelplane/channel.h"
#include "modelplane/plane_server.h"
#include "modelplane/shard_puller.h"
#include "modelplane/sharded_service.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sparksim/eventlog.h"
#include "sparksim/resilient_runner.h"
#include "sparksim/stage_planner.h"
#include "sparksim/trace.h"

namespace lite::testkit {

namespace {

spark::CostModelOptions WithoutNoise(spark::CostModelOptions o) {
  o.noise_sigma = 0.0;
  return o;
}

bool HasOp(const spark::StageSpec& stage, const std::string& op) {
  for (const auto& o : stage.ops) {
    if (o == op) return true;
  }
  return false;
}

/// Doubles the input data while keeping the tuple otherwise identical
/// (iteration counts fixed so the stage structure is comparable).
spark::DataSpec DoubleData(const spark::DataSpec& data) {
  spark::DataSpec d = data;
  d.size_mb *= 2.0;
  d.num_rows *= 2;
  return d;
}

void Violation(OracleReport* report, const std::string& invariant,
               const std::string& detail) {
  report->violations.push_back({invariant, detail});
}

std::string Fmt(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

std::string OracleReport::Summary() const {
  std::ostringstream os;
  for (const auto& v : violations) {
    os << v.invariant << ": " << v.detail << "\n";
  }
  return os.str();
}

SimulatorOracle::SimulatorOracle(spark::CostModelOptions model_options,
                                 OracleOptions options)
    : options_(options),
      runner_(model_options),
      quiet_runner_(WithoutNoise(model_options)) {}

const std::vector<std::string>& SimulatorOracle::InvariantNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "stage_sanity",
      "total_consistency",
      "determinism",
      "eventlog_consistency",
      "trace_consistency",
      "inner_metrics",
      "oom_consistency",
      "data_monotonicity",
      "executor_scaling",
      "iteration_monotonicity",
      "shuffle_buffer_sensitivity",
      "env_monotonicity",
      "fault_replay",
      "resilient_transparency",
      "metrics_consistency",
      "span_consistency",
      "stage_override_dominance",
      "retune_inertness",
      "plane_pull_atomicity",
      "shard_equivalence",
  };
  return *names;
}

OracleReport SimulatorOracle::Check(const WorkloadTuple& t) const {
  OracleReport report;
  CheckStageSanity(t, &report);
  CheckTotalConsistency(t, &report);
  CheckDeterminism(t, &report);
  CheckEventLogConsistency(t, &report);
  CheckTraceConsistency(t, &report);
  CheckInnerMetrics(t, &report);
  CheckOomConsistency(t, &report);
  CheckDataMonotonicity(t, &report);
  CheckExecutorScaling(t, &report);
  CheckIterationMonotonicity(t, &report);
  CheckShuffleBufferSensitivity(t, &report);
  CheckEnvMonotonicity(t, &report);
  CheckFaultReplay(t, &report);
  CheckResilientTransparency(t, &report);
  CheckMetricsConsistency(t, &report);
  CheckSpanConsistency(t, &report);
  CheckStageOverrideDominance(t, &report);
  CheckRetuneInertness(t, &report);
  CheckPlanePullAtomicity(t, &report);
  CheckShardEquivalence(t, &report);
  return report;
}

void SimulatorOracle::CheckStageSanity(const WorkloadTuple& t,
                                       OracleReport* report) const {
  const spark::CostModel& model = runner_.cost_model();
  spark::AppRunResult run = model.Run(*t.app, t.data, t.env, t.config);
  double cap = model.options().failure_cap_seconds;
  for (const auto& sr : run.stage_runs) {
    std::string at = "stage " + std::to_string(sr.stage_index) + " it" +
                     std::to_string(sr.iteration);
    if (!std::isfinite(sr.seconds) || !std::isfinite(sr.cpu_seconds) ||
        !std::isfinite(sr.input_mb) || !std::isfinite(sr.shuffle_mb) ||
        !std::isfinite(sr.spill_mb) || !std::isfinite(sr.memory_pressure)) {
      Violation(report, "stage_sanity", at + ": non-finite diagnostics");
      continue;
    }
    if (sr.input_mb < 0.0 || sr.shuffle_mb < 0.0 || sr.spill_mb < 0.0 ||
        sr.cpu_seconds < 0.0 || sr.memory_pressure < 0.0) {
      Violation(report, "stage_sanity", at + ": negative diagnostics");
    }
    if (sr.failed) {
      if (std::fabs(sr.seconds - cap) > 1e-9) {
        Violation(report, "stage_sanity",
                  at + ": failed stage reports " + Fmt(sr.seconds) +
                      "s instead of the failure cap " + Fmt(cap));
      }
      continue;  // diagnostics of a failed stage are partial.
    }
    if (sr.seconds <= 0.0) {
      Violation(report, "stage_sanity",
                at + ": non-positive stage time " + Fmt(sr.seconds));
    }
    if (sr.tasks < 1) {
      Violation(report, "stage_sanity",
                at + ": task count " + std::to_string(sr.tasks) + " < 1");
    }
    if (sr.waves < 1 || sr.waves > sr.tasks) {
      Violation(report, "stage_sanity",
                at + ": wave count " + std::to_string(sr.waves) +
                    " outside [1, tasks=" + std::to_string(sr.tasks) + "]");
      continue;
    }
    int min_waves = static_cast<int>(
        (sr.tasks + t.env.total_cores() - 1) / t.env.total_cores());
    if (sr.waves < min_waves) {
      Violation(report, "stage_sanity",
                at + ": " + std::to_string(sr.tasks) + " tasks on " +
                    std::to_string(t.env.total_cores()) +
                    " cluster cores cannot finish in " +
                    std::to_string(sr.waves) + " wave(s)");
    }
  }
}

void SimulatorOracle::CheckTotalConsistency(const WorkloadTuple& t,
                                            OracleReport* report) const {
  const spark::CostModel& model = runner_.cost_model();
  spark::AppRunResult run = model.Run(*t.app, t.data, t.env, t.config);
  double cap = model.options().failure_cap_seconds;
  if (run.failed) {
    if (std::fabs(run.total_seconds - cap) > 1e-9) {
      Violation(report, "total_consistency",
                "failed run reports " + Fmt(run.total_seconds) +
                    "s instead of the failure cap " + Fmt(cap));
    }
    if (run.stage_runs.empty() || !run.stage_runs.back().failed) {
      Violation(report, "total_consistency",
                "failed run does not end at the failed stage");
    }
    return;
  }
  if (run.total_seconds > cap * (1.0 + 1e-12)) {
    Violation(report, "total_consistency",
              "total " + Fmt(run.total_seconds) + "s exceeds the cap " +
                  Fmt(cap) + "s");
  }
  double sum = 0.0;
  for (const auto& sr : run.stage_runs) sum += sr.seconds;
  double expected = std::min(sum, cap);
  if (std::fabs(run.total_seconds - expected) >
      options_.rel_tol * std::max(1.0, expected)) {
    Violation(report, "total_consistency",
              "total " + Fmt(run.total_seconds) +
                  "s != capped stage sum " + Fmt(expected) + "s");
  }
}

void SimulatorOracle::CheckDeterminism(const WorkloadTuple& t,
                                       OracleReport* report) const {
  const spark::CostModel& model = runner_.cost_model();
  spark::AppRunResult a = model.Run(*t.app, t.data, t.env, t.config);
  spark::AppRunResult b = model.Run(*t.app, t.data, t.env, t.config);
  if (a.total_seconds != b.total_seconds || a.failed != b.failed ||
      a.stage_runs.size() != b.stage_runs.size()) {
    Violation(report, "determinism",
              "repeated runs disagree: " + Fmt(a.total_seconds) + "s vs " +
                  Fmt(b.total_seconds) + "s");
    return;
  }
  for (size_t i = 0; i < a.stage_runs.size(); ++i) {
    if (a.stage_runs[i].seconds != b.stage_runs[i].seconds) {
      Violation(report, "determinism",
                "stage " + std::to_string(i) + " drifted between runs: " +
                    Fmt(a.stage_runs[i].seconds) + "s vs " +
                    Fmt(b.stage_runs[i].seconds) + "s");
      return;
    }
  }
}

void SimulatorOracle::CheckEventLogConsistency(const WorkloadTuple& t,
                                               OracleReport* report) const {
  spark::Submission sub = runner_.Submit(*t.app, t.data, t.env, t.config);
  spark::ParsedEventLog parsed;
  if (!spark::ParseEventLog(sub.event_log, &parsed)) {
    Violation(report, "eventlog_consistency", "own event log does not parse");
    return;
  }
  if (parsed.app_name != t.app->name) {
    Violation(report, "eventlog_consistency",
              "app name round-trip: '" + parsed.app_name + "'");
  }
  if (parsed.failed != sub.result.failed) {
    Violation(report, "eventlog_consistency", "failure flag round-trip");
  }
  if (parsed.stages.size() != sub.result.stage_runs.size()) {
    Violation(report, "eventlog_consistency",
              "stage count " + std::to_string(parsed.stages.size()) + " vs " +
                  std::to_string(sub.result.stage_runs.size()));
    return;
  }
  // The writer keeps 9 significant digits.
  const double tol = 1e-8;
  for (size_t i = 0; i < parsed.stages.size(); ++i) {
    const auto& ev = parsed.stages[i];
    const auto& sr = sub.result.stage_runs[i];
    if (ev.stage_index != sr.stage_index || ev.iteration != sr.iteration ||
        std::fabs(ev.seconds - sr.seconds) >
            tol * std::max(1.0, std::fabs(sr.seconds))) {
      Violation(report, "eventlog_consistency",
                "stage event " + std::to_string(i) + " drifted in round-trip");
      return;
    }
  }
  if (std::fabs(parsed.total_seconds - sub.result.total_seconds) >
      tol * std::max(1.0, sub.result.total_seconds)) {
    Violation(report, "eventlog_consistency",
              "total round-trip: " + Fmt(parsed.total_seconds) + "s vs " +
                  Fmt(sub.result.total_seconds) + "s");
  }
}

void SimulatorOracle::CheckTraceConsistency(const WorkloadTuple& t,
                                            OracleReport* report) const {
  const spark::CostModel& model = runner_.cost_model();
  spark::AppRunResult run = model.Run(*t.app, t.data, t.env, t.config);
  std::string trace = spark::WriteChromeTrace(*t.app, run);
  spark::ParsedChromeTrace parsed;
  if (!spark::ParseChromeTrace(trace, &parsed)) {
    Violation(report, "trace_consistency", "own trace does not parse");
    return;
  }
  if (parsed.thread_names.size() != t.app->stages.size()) {
    Violation(report, "trace_consistency",
              "trace rows " + std::to_string(parsed.thread_names.size()) +
                  " != stage specs " + std::to_string(t.app->stages.size()));
  }
  if (parsed.spans.size() != run.stage_runs.size()) {
    Violation(report, "trace_consistency",
              "trace spans " + std::to_string(parsed.spans.size()) +
                  " != stage executions " +
                  std::to_string(run.stage_runs.size()));
    return;
  }
  // The writer emits fixed-point microseconds with 3 decimals.
  const double tol_us = 1e-2;
  double cursor_us = 0.0;
  for (size_t i = 0; i < parsed.spans.size(); ++i) {
    const auto& span = parsed.spans[i];
    const auto& sr = run.stage_runs[i];
    if (span.tid != static_cast<int>(sr.stage_index) ||
        span.failed != sr.failed) {
      Violation(report, "trace_consistency",
                "span " + std::to_string(i) + " row/failure mismatch");
      return;
    }
    if (std::fabs(span.dur_us - sr.seconds * 1e6) > tol_us) {
      Violation(report, "trace_consistency",
                "span " + std::to_string(i) + " duration " +
                    Fmt(span.dur_us) + "us != stage time " +
                    Fmt(sr.seconds * 1e6) + "us");
      return;
    }
    if (std::fabs(span.ts_us - cursor_us) > tol_us * (1.0 + double(i))) {
      Violation(report, "trace_consistency",
                "span " + std::to_string(i) + " not contiguous in time");
      return;
    }
    cursor_us += sr.seconds * 1e6;
  }
}

void SimulatorOracle::CheckInnerMetrics(const WorkloadTuple& t,
                                        OracleReport* report) const {
  spark::AppRunResult run =
      runner_.cost_model().Run(*t.app, t.data, t.env, t.config);
  std::vector<double> m = run.InnerMetrics();
  if (m.size() != spark::AppRunResult::kInnerMetricsDim) {
    Violation(report, "inner_metrics", "wrong metric dimension");
    return;
  }
  for (size_t i = 0; i < m.size(); ++i) {
    if (!std::isfinite(m[i])) {
      Violation(report, "inner_metrics",
                "metric " + std::to_string(i) + " non-finite");
      return;
    }
  }
  if (m[6] != (run.failed ? 1.0 : 0.0)) {
    Violation(report, "inner_metrics", "failure flag metric inconsistent");
  }
}

void SimulatorOracle::CheckOomConsistency(const WorkloadTuple& t,
                                          OracleReport* report) const {
  const spark::CostModel& model = runner_.cost_model();
  spark::AppRunResult run = model.Run(*t.app, t.data, t.env, t.config);
  double threshold = model.options().oom_pressure_threshold;
  for (const auto& sr : run.stage_runs) {
    bool oom_reported = sr.failed && sr.failure_reason.find("executor OOM") !=
                                         std::string::npos;
    bool over_threshold = sr.memory_pressure > threshold;
    if (over_threshold && !oom_reported) {
      Violation(report, "oom_consistency",
                "stage " + std::to_string(sr.stage_index) + " pressure " +
                    Fmt(sr.memory_pressure) + " exceeds the OOM threshold " +
                    Fmt(threshold) + " but did not fail as OOM");
    }
    if (oom_reported && !over_threshold) {
      Violation(report, "oom_consistency",
                "stage " + std::to_string(sr.stage_index) +
                    " reported OOM at pressure " + Fmt(sr.memory_pressure));
    }
  }
}

void SimulatorOracle::CheckDataMonotonicity(const WorkloadTuple& t,
                                            OracleReport* report) const {
  const spark::CostModel& model = quiet_runner_.cost_model();
  spark::AppRunResult small = model.Run(*t.app, t.data, t.env, t.config);
  spark::AppRunResult big =
      model.Run(*t.app, DoubleData(t.data), t.env, t.config);
  if (small.failed && !big.failed) {
    Violation(report, "data_monotonicity",
              "run fails at " + Fmt(t.data.size_mb) + "MB (" +
                  small.failure_reason + ") but succeeds at twice the data");
    return;
  }
  if (big.total_seconds <
      small.total_seconds * (1.0 - options_.rel_tol) - 1e-9) {
    Violation(report, "data_monotonicity",
              "doubling the data shrank the runtime: " +
                  Fmt(small.total_seconds) + "s -> " +
                  Fmt(big.total_seconds) + "s");
  }
}

void SimulatorOracle::CheckExecutorScaling(const WorkloadTuple& t,
                                           OracleReport* report) const {
  const auto& space = spark::KnobSpace::Spark16();
  spark::Config scaled = t.config;
  scaled[spark::kExecutorInstances] =
      std::min(space.spec(spark::kExecutorInstances).max_value,
               t.config[spark::kExecutorInstances] * 2.0);
  scaled = space.Clamp(scaled);
  if (scaled[spark::kExecutorInstances] ==
      t.config[spark::kExecutorInstances]) {
    return;  // already at the knob ceiling.
  }
  const spark::CostModel& model = quiet_runner_.cost_model();
  spark::AppRunResult base = model.Run(*t.app, t.data, t.env, t.config);
  spark::AppRunResult more = model.Run(*t.app, t.data, t.env, scaled);
  if (base.failed != more.failed) {
    Violation(report, "executor_scaling",
              "doubling executor instances flipped the failure outcome");
    return;
  }
  if (base.failed) return;
  if (base.stage_runs.size() != more.stage_runs.size()) {
    Violation(report, "executor_scaling",
              "doubling executor instances changed the stage structure");
    return;
  }
  for (size_t i = 0; i < base.stage_runs.size(); ++i) {
    if (more.stage_runs[i].waves > base.stage_runs[i].waves) {
      Violation(report, "executor_scaling",
                "stage " + std::to_string(base.stage_runs[i].stage_index) +
                    ": more executors increased waves " +
                    std::to_string(base.stage_runs[i].waves) + " -> " +
                    std::to_string(more.stage_runs[i].waves));
      return;
    }
    // On one node, occupancy (and so memory-bandwidth contention) can only
    // grow with more executors: pure compute time must not shrink.
    if (t.env.num_nodes == 1 &&
        more.stage_runs[i].cpu_seconds <
            base.stage_runs[i].cpu_seconds * (1.0 - options_.rel_tol)) {
      Violation(report, "executor_scaling",
                "stage " + std::to_string(base.stage_runs[i].stage_index) +
                    ": more executors shrank pure compute time " +
                    Fmt(base.stage_runs[i].cpu_seconds) + "s -> " +
                    Fmt(more.stage_runs[i].cpu_seconds) + "s on one node");
      return;
    }
  }
}

void SimulatorOracle::CheckIterationMonotonicity(const WorkloadTuple& t,
                                                 OracleReport* report) const {
  const spark::CostModel& model = quiet_runner_.cost_model();
  spark::AppRunResult run = model.Run(*t.app, t.data, t.env, t.config);
  if (run.failed) return;
  // Input (textFile) stages re-partition by block size, which makes their
  // per-task work non-monotone in the frontier; every other per-iteration
  // stage must do no more work in later iterations (frontier decay).
  std::map<size_t, double> last_seconds;
  for (const auto& sr : run.stage_runs) {
    const spark::StageSpec& stage = t.app->stages[sr.stage_index];
    if (!stage.per_iteration || HasOp(stage, "textFile")) continue;
    auto it = last_seconds.find(sr.stage_index);
    if (it != last_seconds.end() &&
        sr.seconds > it->second * (1.0 + options_.rel_tol) + 1e-9) {
      Violation(report, "iteration_monotonicity",
                "stage " + std::to_string(sr.stage_index) + " grew from " +
                    Fmt(it->second) + "s to " + Fmt(sr.seconds) +
                    "s at iteration " + std::to_string(sr.iteration));
      return;
    }
    last_seconds[sr.stage_index] = sr.seconds;
  }
}

void SimulatorOracle::CheckShuffleBufferSensitivity(const WorkloadTuple& t,
                                                    OracleReport* report) const {
  const spark::CostModel& model = quiet_runner_.cost_model();
  spark::AppRunResult base = model.Run(*t.app, t.data, t.env, t.config);
  if (base.failed) return;
  double shuffle_mb = 0.0;
  for (const auto& sr : base.stage_runs) shuffle_mb += sr.shuffle_mb;
  if (shuffle_mb <= 0.0) return;
  double cap = model.options().failure_cap_seconds;
  const auto& spec =
      spark::KnobSpace::Spark16().spec(spark::kShuffleFileBuffer);
  spark::Config small_buf = t.config;
  small_buf[spark::kShuffleFileBuffer] = spec.min_value;
  spark::Config big_buf = t.config;
  big_buf[spark::kShuffleFileBuffer] = spec.max_value;
  double t_small = model.Run(*t.app, t.data, t.env, small_buf).total_seconds;
  double t_big = model.Run(*t.app, t.data, t.env, big_buf).total_seconds;
  if (t_small >= cap || t_big >= cap) return;  // both clipped at the cap.
  // The file buffer only appears in the shuffle-write flush penalty, so a
  // smaller buffer must strictly slow any run with shuffle traffic. A model
  // that ignores this knob has lost (part of) its shuffle cost term.
  if (t_small <= t_big) {
    Violation(report, "shuffle_buffer_sensitivity",
              "run moves " + Fmt(shuffle_mb) +
                  "MB of shuffle but shrinking shuffle.file.buffer does not "
                  "slow it down (" +
                  Fmt(t_small) + "s vs " + Fmt(t_big) + "s)");
  }
}

void SimulatorOracle::CheckEnvMonotonicity(const WorkloadTuple& t,
                                           OracleReport* report) const {
  const spark::CostModel& model = quiet_runner_.cost_model();
  double base = model.Run(*t.app, t.data, t.env, t.config).total_seconds;

  struct Degrade {
    const char* what;
    spark::ClusterEnv env;
  };
  std::vector<Degrade> degrades;
  {
    spark::ClusterEnv e = t.env;
    e.network_gbps /= 4.0;
    degrades.push_back({"network bandwidth / 4", e});
  }
  {
    spark::ClusterEnv e = t.env;
    e.disk_mbps /= 4.0;
    degrades.push_back({"disk bandwidth / 4", e});
  }
  {
    spark::ClusterEnv e = t.env;
    e.cpu_ghz /= 2.0;
    degrades.push_back({"CPU frequency / 2", e});
  }
  {
    spark::ClusterEnv e = t.env;
    e.memory_mts /= 2.0;
    degrades.push_back({"memory speed / 2", e});
  }
  for (const auto& d : degrades) {
    double slower = model.Run(*t.app, t.data, d.env, t.config).total_seconds;
    if (slower < base * (1.0 - options_.rel_tol) - 1e-9) {
      Violation(report, "env_monotonicity",
                std::string(d.what) + " sped the run up: " + Fmt(base) +
                    "s -> " + Fmt(slower) + "s");
    }
  }
}

void SimulatorOracle::CheckFaultReplay(const WorkloadTuple& t,
                                       OracleReport* report) const {
  spark::FaultPlan plan(spark::FaultOptions::Moderate(options_.fault_seed));
  spark::ResilientRunner first(&runner_, plan);
  spark::ResilientRunner second(&runner_, plan);
  spark::MeasureOutcome a = first.MeasureDetailed(*t.app, t.data, t.env, t.config);
  spark::MeasureOutcome b = second.MeasureDetailed(*t.app, t.data, t.env, t.config);
  if (a.seconds != b.seconds || a.failed != b.failed ||
      a.censored != b.censored || a.attempts != b.attempts ||
      a.wasted_seconds != b.wasted_seconds) {
    Violation(report, "fault_replay",
              "identical fault plans diverged: " + Fmt(a.seconds) + "s/" +
                  std::to_string(a.attempts) + " attempts vs " +
                  Fmt(b.seconds) + "s/" + std::to_string(b.attempts));
  }
}

void SimulatorOracle::CheckResilientTransparency(const WorkloadTuple& t,
                                                 OracleReport* report) const {
  spark::ResilientRunner inert(&runner_);
  double via_harness = inert.Measure(*t.app, t.data, t.env, t.config);
  double direct = runner_.Measure(*t.app, t.data, t.env, t.config);
  if (via_harness != direct) {
    Violation(report, "resilient_transparency",
              "inert harness measurement " + Fmt(via_harness) +
                  "s != direct measurement " + Fmt(direct) + "s");
  }
}

namespace {

/// Serializes the obs-touching invariants: they read and perturb
/// process-global registry/recorder state, so two concurrent checks would
/// see each other's deltas.
std::mutex& ObsCheckMutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

/// Restores the observability on/off switch on scope exit.
struct ObsEnabledGuard {
  bool saved = obs::Enabled();
  ObsEnabledGuard() { obs::SetEnabled(true); }
  ~ObsEnabledGuard() { obs::SetEnabled(saved); }
};

/// The `resilient_*` registry series that mirror per-harness FaultStats.
struct ResilientSeries {
  uint64_t submissions, attempts, transient_failures, deterministic_failures,
      recovered, retries_exhausted;
  double wasted_seconds;
  uint64_t measure_histogram_count;

  static ResilientSeries Read() {
    auto& reg = obs::MetricsRegistry::Global();
    return ResilientSeries{
        reg.GetCounter("resilient_submissions_total")->Value(),
        reg.GetCounter("resilient_attempts_total")->Value(),
        reg.GetCounter("resilient_transient_failures_total")->Value(),
        reg.GetCounter("resilient_deterministic_failures_total")->Value(),
        reg.GetCounter("resilient_recovered_total")->Value(),
        reg.GetCounter("resilient_retries_exhausted_total")->Value(),
        reg.GetGauge("resilient_wasted_seconds_total")->Value(),
        reg.GetHistogram("resilient_measure_sim_seconds")->Snapshot().count,
    };
  }
};

}  // namespace

void SimulatorOracle::CheckMetricsConsistency(const WorkloadTuple& t,
                                              OracleReport* report) const {
  std::lock_guard<std::mutex> lock(ObsCheckMutex());
  ObsEnabledGuard enabled;

  // (1) Encoder-cache identity: every lookup is resolved as exactly one hit
  // or one miss, so at any quiescent point the cumulative counters satisfy
  // lookups == hits + misses.
  auto& reg = obs::MetricsRegistry::Global();
  uint64_t lookups = reg.GetCounter("necs_encoder_cache_lookups_total")->Value();
  uint64_t hits = reg.GetCounter("necs_encoder_cache_hits_total")->Value();
  uint64_t misses = reg.GetCounter("necs_encoder_cache_misses_total")->Value();
  if (lookups != hits + misses) {
    Violation(report, "metrics_consistency",
              "encoder cache: " + std::to_string(lookups) + " lookups != " +
                  std::to_string(hits) + " hits + " + std::to_string(misses) +
                  " misses");
  }

  // (2) Registry deltas across a faulted replay must equal the harness's
  // own FaultStats — the mirror increments sit next to each ++stats_ line,
  // and this is the law that keeps them there.
  ResilientSeries before = ResilientSeries::Read();
  spark::FaultPlan plan(spark::FaultOptions::Moderate(options_.fault_seed));
  spark::ResilientRunner harness(&runner_, plan);
  for (int i = 0; i < 3; ++i) {
    harness.MeasureDetailed(*t.app, t.data, t.env, t.config);
  }
  ResilientSeries after = ResilientSeries::Read();
  const spark::FaultStats& s = harness.stats();
  auto delta_mismatch = [&](uint64_t a, uint64_t b, uint64_t want,
                            const char* what) {
    if (b - a != want) {
      Violation(report, "metrics_consistency",
                std::string("resilient_") + what + " delta " +
                    std::to_string(b - a) + " != FaultStats " +
                    std::to_string(want));
    }
  };
  delta_mismatch(before.submissions, after.submissions, s.submissions,
                 "submissions");
  delta_mismatch(before.attempts, after.attempts, s.attempts, "attempts");
  delta_mismatch(before.transient_failures, after.transient_failures,
                 s.transient_failures, "transient_failures");
  delta_mismatch(before.deterministic_failures, after.deterministic_failures,
                 s.deterministic_failures, "deterministic_failures");
  delta_mismatch(before.recovered, after.recovered, s.recovered, "recovered");
  delta_mismatch(before.retries_exhausted, after.retries_exhausted,
                 s.retries_exhausted, "retries_exhausted");
  // The gauge accumulates from a nonzero process-lifetime baseline, so its
  // delta differs from the from-zero FaultStats sum by rounding that scales
  // with the absolute gauge value — compare relative to that magnitude.
  double wasted_delta = after.wasted_seconds - before.wasted_seconds;
  double wasted_tol =
      1e-9 * std::max({1.0, std::fabs(after.wasted_seconds),
                       std::fabs(s.wasted_seconds)});
  if (std::fabs(wasted_delta - s.wasted_seconds) > wasted_tol) {
    Violation(report, "metrics_consistency",
              "resilient_wasted_seconds_total delta " + Fmt(wasted_delta) +
                  " != FaultStats " + Fmt(s.wasted_seconds));
  }

  // (3) Histogram/counter agreement: every submission contributes exactly
  // one observation to the measure-latency histogram.
  if (after.measure_histogram_count - before.measure_histogram_count !=
      s.submissions) {
    Violation(report, "metrics_consistency",
              "resilient_measure_sim_seconds count delta " +
                  std::to_string(after.measure_histogram_count -
                                 before.measure_histogram_count) +
                  " != " + std::to_string(s.submissions) + " submissions");
  }
}

void SimulatorOracle::CheckSpanConsistency(const WorkloadTuple& t,
                                           OracleReport* report) const {
  std::lock_guard<std::mutex> lock(ObsCheckMutex());
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  if (recorder.recording()) return;  // someone else owns the live recording.
  ObsEnabledGuard enabled;

  recorder.Start();
  {
    // Nested wall spans around an instrumented submission, so the recording
    // holds both hand-opened scopes and harness/simulator events.
    obs::Span outer("oracle.span_check");
    {
      obs::Span inner("oracle.span_check.measure");
      spark::ResilientRunner inert(&runner_);
      inert.MeasureDetailed(*t.app, t.data, t.env, t.config);
    }
  }
  recorder.Stop();
  std::vector<obs::TraceEvent> events = recorder.Events();
  if (events.empty()) {
    Violation(report, "span_consistency", "recording produced no events");
    return;
  }

  // Wall spans on one thread come from RAII scopes: ctor/dtor ordering plus
  // a monotonic recorder clock means a later-starting span either nests
  // inside the earlier one or starts after it ends. end = ts + dur is one
  // double addition, so allow an ulp-scale slack (microsecond timeline).
  const double slack_us = 1e-3;
  for (size_t i = 0; i < events.size(); ++i) {
    const obs::TraceEvent& a = events[i];
    if (!std::isfinite(a.ts_us) || !std::isfinite(a.dur_us) || a.dur_us < 0) {
      Violation(report, "span_consistency",
                "event '" + a.name + "' has a non-finite or negative time");
      return;
    }
    if (a.tid >= obs::kSimulatedTidBase) continue;
    for (size_t j = i + 1; j < events.size(); ++j) {
      const obs::TraceEvent& b = events[j];  // Events() sorted by (tid, ts).
      if (b.tid != a.tid) break;
      double a_end = a.ts_us + a.dur_us;
      bool nested = b.ts_us + slack_us >= a.ts_us &&
                    b.ts_us + b.dur_us <= a_end + slack_us;
      bool disjoint = b.ts_us + slack_us >= a_end;
      if (!nested && !disjoint) {
        Violation(report, "span_consistency",
                  "spans '" + a.name + "' and '" + b.name +
                      "' partially overlap on tid " + std::to_string(a.tid));
      }
    }
  }

  // Simulated stage events are laid out by one sequential cursor
  // (AppendSimulatedRun), so sorted by start time they tile the simulated
  // window: each event starts exactly where the previous one ended.
  std::vector<const obs::TraceEvent*> sim;
  for (const auto& e : events) {
    if (e.tid >= obs::kSimulatedTidBase) sim.push_back(&e);
  }
  std::sort(sim.begin(), sim.end(),
            [](const obs::TraceEvent* a, const obs::TraceEvent* b) {
              return a->ts_us < b->ts_us;
            });
  for (size_t i = 1; i < sim.size(); ++i) {
    double prev_end = sim[i - 1]->ts_us + sim[i - 1]->dur_us;
    if (sim[i]->ts_us != prev_end) {
      Violation(report, "span_consistency",
                "simulated timeline has a gap/overlap before '" +
                    sim[i]->name + "': starts " + Fmt(sim[i]->ts_us) +
                    "us, previous ended " + Fmt(prev_end) + "us");
    }
  }

  // The export must survive the simulator-side parser: one parsed span per
  // recorded event, same unified-timeline format as WriteChromeTrace.
  spark::ParsedChromeTrace parsed;
  if (!spark::ParseChromeTrace(recorder.ToChromeTrace(), &parsed)) {
    Violation(report, "span_consistency",
              "ToChromeTrace output does not ParseChromeTrace");
  } else if (parsed.spans.size() != events.size()) {
    Violation(report, "span_consistency",
              "parsed " + std::to_string(parsed.spans.size()) +
                  " spans from " + std::to_string(events.size()) +
                  " recorded events");
  }
}

void SimulatorOracle::CheckStageOverrideDominance(const WorkloadTuple& t,
                                                  OracleReport* report) const {
  const std::string kInv = "stage_override_dominance";
  const spark::CostModel& model = quiet_runner_.cost_model();
  spark::StagePlannerOptions popts;
  popts.mutation = options_.stage_mutation;
  const spark::StagePlanner planner(popts);
  const int iterations = spark::ResolveIterations(*t.app, t.data);
  const spark::StageEvalFactory factory =
      spark::MakeSimulatorStageEvalFactory(&model, t.app, t.data, &t.env);
  const spark::StagePlan plan =
      planner.Plan(*t.app, iterations, t.config, factory(1.0));
  if (!plan.ok) {
    Violation(report, kInv, "planner returned ok == false");
    return;
  }
  if (plan.staged.base != t.config) {
    Violation(report, kInv, "planner rewrote the base config");
    return;
  }
  std::string why;
  if (!spark::ValidateStagedConfig(plan.staged, *t.app, &why)) {
    Violation(report, kInv, "planned staged config invalid: " + why);
    return;
  }

  const spark::AppRunResult base = model.Run(*t.app, t.data, t.env, t.config);
  const spark::AppRunResult staged =
      model.RunStaged(*t.app, t.data, t.env, plan.staged);
  if (base.failed) {
    // Nothing sound to improve on; the plan must not invent overrides.
    if (!plan.staged.overrides.empty()) {
      Violation(report, kInv,
                "base config fails but the plan carries " +
                    std::to_string(plan.staged.overrides.size()) +
                    " override(s)");
    }
    return;
  }
  if (staged.failed) {
    Violation(report, kInv,
              "staged config fails where the base config succeeds: " +
                  staged.failure_reason);
    return;
  }
  if (staged.total_seconds > base.total_seconds * (1.0 + options_.rel_tol)) {
    Violation(report, kInv,
              "per-stage plan loses to the app-level config: staged " +
                  Fmt(staged.total_seconds) + "s vs base " +
                  Fmt(base.total_seconds) + "s");
  }

  // Consistency leg: the planner's claimed planned_seconds must re-predict
  // bit-identically from the plan it returned — a plan recorded against
  // the wrong stage no longer matches what the search measured.
  if (!plan.baseline_failed) {
    bool repredict_failed = false;
    const double repredicted = spark::PredictStagedSeconds(
        *t.app, iterations, plan.staged, factory(1.0), &repredict_failed);
    if (repredict_failed) {
      Violation(report, kInv,
                "planned staged config fails to re-predict under the "
                "planning evaluator");
    } else if (repredicted != plan.planned_seconds) {
      Violation(report, kInv,
                "planned_seconds " + Fmt(plan.planned_seconds) +
                    " does not re-predict from the returned plan (got " +
                    Fmt(repredicted) + ")");
    }
  }
}

void SimulatorOracle::CheckRetuneInertness(const WorkloadTuple& t,
                                           OracleReport* report) const {
  const std::string kInv = "retune_inertness";
  const spark::CostModel& model = quiet_runner_.cost_model();
  spark::StagePlannerOptions popts;
  popts.mutation = options_.stage_mutation;
  const spark::StagePlanner planner(popts);
  const int iterations = spark::ResolveIterations(*t.app, t.data);
  const spark::StageEvalFactory factory =
      spark::MakeSimulatorStageEvalFactory(&model, t.app, t.data, &t.env);
  const spark::StagePlan plan =
      planner.Plan(*t.app, iterations, t.config, factory(1.0));
  if (!plan.ok || plan.baseline_failed) return;  // dominance owns these.

  // Observations come straight from the quiet staged run's stage records —
  // NOT from the serialized event log, which rounds durations to 9
  // significant digits. Bit-exact observed seconds are the precondition of
  // the inertness contract.
  const spark::AppRunResult run =
      model.RunStaged(*t.app, t.data, t.env, plan.staged);
  if (run.failed) return;  // dominance reports this case.
  const size_t cut = (t.app->stages.size() + 1) / 2;
  std::vector<spark::StageEvent> observed;
  for (const auto& sr : run.stage_runs) {
    if (sr.stage_index >= cut) continue;
    spark::StageEvent e;
    e.stage_index = sr.stage_index;
    e.iteration = sr.iteration;
    e.stage_name = t.app->stages[sr.stage_index].name;
    e.seconds = sr.seconds;
    observed.push_back(e);
  }
  if (observed.empty()) return;

  const spark::RetuneResult ret =
      planner.Retune(*t.app, iterations, plan.staged, observed, factory);
  if (!ret.ok) {
    Violation(report, kInv, "Retune returned ok == false");
    return;
  }
  if (ret.correction != 1.0) {
    Violation(report, kInv,
              "observations match predictions bit for bit but the "
              "correction is " +
                  Fmt(ret.correction));
  }
  if (ret.staged.base != plan.staged.base) {
    Violation(report, kInv, "re-tune rewrote the base config");
  }
  bool overrides_match =
      ret.staged.overrides.size() == plan.staged.overrides.size();
  for (size_t i = 0; overrides_match && i < ret.staged.overrides.size(); ++i) {
    const spark::StageKnobOverride& a = ret.staged.overrides[i];
    const spark::StageKnobOverride& b = plan.staged.overrides[i];
    overrides_match = a.stage_index == b.stage_index && a.knob == b.knob &&
                      a.value == b.value;
  }
  if (!overrides_match) {
    Violation(report, kInv,
              "re-tune with matching observations changed the overrides (" +
                  std::to_string(plan.staged.overrides.size()) + " before, " +
                  std::to_string(ret.staged.overrides.size()) + " after)");
  }

  // Responsiveness leg: doubling only the *newest* observation must move
  // the correction to exactly the value of the documented formula — an
  // observation window that drops the newest event cannot reproduce it.
  std::vector<spark::StageEvent> perturbed = observed;
  perturbed.back().seconds *= 2.0;
  const spark::StageEvalFn predict = factory(1.0);
  const size_t n = perturbed.size();
  const size_t w = std::min(n, spark::StagePlanner::kObservationWindow);
  double observed_sum = 0.0;
  double predicted_sum = 0.0;
  for (size_t i = n - w; i < n; ++i) {
    const spark::StageEvent& e = perturbed[i];
    if (e.stage_index >= t.app->stages.size()) continue;
    const spark::StageEvalResult p =
        predict(e.stage_index, e.iteration,
                spark::EffectiveConfig(plan.staged, e.stage_index));
    if (p.failed) continue;
    observed_sum += e.seconds;
    predicted_sum += p.seconds;
  }
  const double expected =
      predicted_sum > 0.0
          ? std::clamp(observed_sum / predicted_sum, 0.25, 4.0)
          : 1.0;
  const spark::RetuneResult ret2 =
      planner.Retune(*t.app, iterations, plan.staged, perturbed, factory);
  if (!ret2.ok || ret2.correction != expected) {
    Violation(report, kInv,
              "correction after perturbing the newest observation is " +
                  Fmt(ret2.correction) + ", the contract formula expects " +
                  Fmt(expected));
  }
}

void SimulatorOracle::CheckPlanePullAtomicity(const WorkloadTuple& t,
                                              OracleReport* report) const {
  const std::string kInv = "plane_pull_atomicity";
  // Synthetic blobs, no model: the invariant is about the pull protocol,
  // not the payload. Everything is seeded from the tuple so a violation
  // replays from the sweep seed.
  const uint64_t seed = modelplane::HashBytes(t.Describe());
  Rng rng(seed);
  const auto random_text = [&rng]() {
    static const char* kTokens[] = {"0.125", "-3.5e-2", "7", "necs", "w"};
    std::string s;
    const size_t words = 64 + rng.Index(256);
    for (size_t i = 0; i < words; ++i) {
      s += kTokens[rng.Index(5)];
      s += (i % 8 == 7) ? '\n' : ' ';
    }
    return s;
  };
  modelplane::PlaneOptions popts;
  popts.delta_history = 4;
  modelplane::ModelPlaneServer plane(popts);
  modelplane::ChannelFaultOptions faults;
  faults.drop = 0.20;
  faults.truncate = 0.20;
  faults.corrupt = 0.20;
  faults.duplicate = 0.15;
  faults.hold = 0.15;
  modelplane::QueueChannel req_q, resp_q;
  modelplane::FaultInjectedChannel req(&req_q, faults, seed ^ 0x5eed1);
  modelplane::FaultInjectedChannel resp(&resp_q, faults, seed ^ 0x5eed2);
  modelplane::ShardPuller puller(plane.chain());

  std::map<uint64_t, std::map<std::string, std::string>> published;
  std::map<std::string, std::string> blobs = {
      {"vocab.txt", random_text()},
      {"necs_0.txt", random_text()},
      {"necs_1.txt", random_text()},
      {"acg.txt", random_text()},
  };
  uint64_t last_installed = 0;
  for (int round = 0; round < 12; ++round) {
    // Mutate a member, occasionally add or drop an optional part — the
    // delta paths (changed, added, removed keys) all get exercised.
    blobs["necs_" + std::to_string(rng.Index(2)) + ".txt"] = random_text();
    if (rng.Bernoulli(0.25)) {
      blobs["stagehead.txt"] = random_text();
    } else if (rng.Bernoulli(0.25)) {
      blobs.erase("stagehead.txt");
    }
    const uint64_t v = plane.Publish(blobs);
    published[v] = blobs;
    for (int attempt = 0; attempt < 3; ++attempt) {
      req.Send(puller.MakeRequestFrame());
      std::string frame;
      while (req.Recv(&frame)) {
        const std::string r = plane.HandleRequestFrame(frame);
        if (!r.empty()) resp.Send(r);
      }
      while (resp.Recv(&frame)) puller.ApplyResponseFrame(frame);

      const uint64_t iv = puller.installed_version();
      const auto got = puller.installed_blobs();
      if (iv < last_installed) {
        Violation(report, kInv,
                  "installed version regressed from " +
                      std::to_string(last_installed) + " to " +
                      std::to_string(iv));
        return;
      }
      last_installed = iv;
      if (iv == 0) {
        if (!got->empty()) {
          Violation(report, kInv, "blobs installed at version 0");
          return;
        }
        continue;
      }
      const auto it = published.find(iv);
      if (it == published.end()) {
        Violation(report, kInv,
                  "installed version " + std::to_string(iv) +
                      " was never published");
        return;
      }
      if (*got != it->second) {
        // The torn/mixed-version case the whole plane design exists to
        // prevent: the served set differs from what version iv published.
        Violation(report, kInv,
                  "installed blob set at version " + std::to_string(iv) +
                      " is not the published set (torn or mixed pull)");
        return;
      }
    }
    req.Flush();
    resp.Flush();
  }
  // Liveness: with faults off the puller must converge to the head
  // version in one clean round-trip. Discard stale in-flight frames first —
  // a held response applied after MakeRequestFrame could advance the
  // puller past the request's `have`, base-rejecting the fresh delta
  // (a retry concern for SyncAll, not an atomicity violation).
  std::string frame;
  while (req_q.Recv(&frame)) {
  }
  while (resp_q.Recv(&frame)) {
  }
  req_q.Send(puller.MakeRequestFrame());
  while (req_q.Recv(&frame)) {
    const std::string r = plane.HandleRequestFrame(frame);
    if (!r.empty()) resp_q.Send(r);
  }
  while (resp_q.Recv(&frame)) puller.ApplyResponseFrame(frame);
  if (puller.installed_version() != plane.version()) {
    Violation(report, kInv,
              "clean pull did not converge: installed " +
                  std::to_string(puller.installed_version()) + ", plane at " +
                  std::to_string(plane.version()));
  }
}

namespace {

/// Lazily built shared fixture for shard_equivalence: a tiny trained
/// system published to a plane, two shards pulled current over clean
/// links, and a single-process reference service on the same blobs. Built
/// once per process (training dominates); recommends are thread-safe.
struct ShardEquivalenceFixture {
  spark::SparkRunner runner;  ///< default options on both sides.
  std::unique_ptr<modelplane::ModelPlaneServer> plane;
  std::unique_ptr<serve::TuningService> reference;
  std::unique_ptr<modelplane::ShardedTuningService> shards;
  int reference_session = -1;
  std::vector<int> shard_sessions;  ///< one fleet session routed per shard.
  std::string error;                ///< non-empty when the build failed.

  static ShardEquivalenceFixture& Get() {
    static ShardEquivalenceFixture* fx = [] {
      auto* f = new ShardEquivalenceFixture();
      f->Build();
      return f;
    }();
    return *fx;
  }

  void Build() {
    LiteOptions opts;
    opts.corpus.apps = {"TS", "PR"};
    opts.corpus.clusters = {spark::ClusterEnv::ClusterA()};
    opts.corpus.configs_per_setting = 2;
    opts.corpus.max_stage_instances_per_run = 5;
    opts.corpus.max_code_tokens = 64;
    opts.necs.emb_dim = 8;
    opts.necs.cnn_widths = {3, 4};
    opts.necs.cnn_kernels = 6;
    opts.necs.code_dim = 12;
    opts.necs.gcn_hidden = 8;
    opts.train.epochs = 2;
    opts.num_candidates = 8;
    opts.ensemble_size = 1;
    LiteSystem system(&runner, opts);
    system.TrainOffline();
    std::map<std::string, std::string> blobs;
    if (!EncodeSnapshotBlobs(system, &blobs)) {
      error = "EncodeSnapshotBlobs failed";
      return;
    }
    plane = std::make_unique<modelplane::ModelPlaneServer>(
        modelplane::PlaneOptions{});
    plane->Publish(blobs);
    serve::ServiceOptions sopts;
    sopts.scoring.threads = 1;
    reference = std::make_unique<serve::TuningService>(&runner, sopts);
    auto model = LoadedLiteModel::LoadFromBlobs(blobs, &runner);
    if (model == nullptr) {
      error = "LoadFromBlobs failed on the published blob set";
      return;
    }
    reference->InstallSnapshot(std::move(model));
    reference_session = reference->OpenSession("oracle", /*seed=*/0);
    modelplane::ShardedServiceOptions shopts;
    shopts.shards = 2;
    shopts.service = sopts;
    shards = std::make_unique<modelplane::ShardedTuningService>(
        &runner, plane.get(), shopts);
    if (shards->SyncAll() != shopts.shards) {
      error = "shards failed to sync over clean links";
      return;
    }
    // One session routed to each shard (guardrail off, so the tenant name
    // only picks the shard; it cannot change the response).
    for (size_t i = 0; i < shopts.shards; ++i) {
      int session = -1;
      for (int probe = 0; probe < 64; ++probe) {
        const std::string tenant = "tenant" + std::to_string(probe);
        if (shards->RouteShard(tenant) == i) {
          session = shards->OpenSession(tenant, /*seed=*/0);
          break;
        }
      }
      if (session < 0) {
        error = "no tenant routed to shard " + std::to_string(i);
        return;
      }
      shard_sessions.push_back(session);
    }
  }
};

}  // namespace

void SimulatorOracle::CheckShardEquivalence(const WorkloadTuple& t,
                                            OracleReport* report) const {
  const std::string kInv = "shard_equivalence";
  ShardEquivalenceFixture& fx = ShardEquivalenceFixture::Get();
  if (!fx.error.empty()) {
    Violation(report, kInv, "fixture build failed: " + fx.error);
    return;
  }
  const serve::TuningService::Response want =
      fx.reference->Recommend(fx.reference_session, *t.app, t.data, t.env);
  if (!want.ok) {
    Violation(report, kInv, "reference recommend failed: " + want.error);
    return;
  }
  for (size_t i = 0; i < fx.shard_sessions.size(); ++i) {
    if (fx.shards->shard_version(i) != fx.plane->version()) {
      Violation(report, kInv,
                "shard " + std::to_string(i) + " at plane version " +
                    std::to_string(fx.shards->shard_version(i)) +
                    ", expected " + std::to_string(fx.plane->version()));
      continue;
    }
    const serve::TuningService::Response got =
        fx.shards->Recommend(fx.shard_sessions[i], *t.app, t.data, t.env);
    if (!got.ok) {
      Violation(report, kInv,
                "shard " + std::to_string(i) + " recommend failed: " +
                    got.error);
      continue;
    }
    if (!(got.rec.config == want.rec.config) ||
        got.rec.predicted_seconds != want.rec.predicted_seconds ||
        got.rec.candidates_evaluated != want.rec.candidates_evaluated) {
      Violation(report, kInv,
                "shard " + std::to_string(i) +
                    " response differs from the single-process service at "
                    "plane version " +
                    std::to_string(fx.plane->version()) + " (predicted " +
                    Fmt(got.rec.predicted_seconds) + " vs " +
                    Fmt(want.rec.predicted_seconds) + ")");
    }
  }
}

std::string OracleCheckAsProperty(const SimulatorOracle& oracle,
                                  const WorkloadTuple& t) {
  OracleReport report = oracle.Check(t);
  return report.ok() ? std::string() : report.Summary();
}

}  // namespace lite::testkit
