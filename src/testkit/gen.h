// Testkit generators: random-but-replayable workload tuples for
// property-based testing of the simulator and the LITE serving stack.
//
// Every randomized suite in this repository draws its master seed through
// SeedFromEnv("LITE_TEST_SEED") so a failure printed as
//
//   replay with: LITE_TEST_SEED=12345 ./build/tests/oracle_property_test
//
// reproduces the exact failing case. On failure the harness greedily
// shrinks the counterexample (knob deltas back to defaults, smaller data,
// fewer iterations, smaller cluster) and reports the minimal tuple that
// still violates the property, not the raw random draw.
#ifndef LITE_TESTKIT_GEN_H_
#define LITE_TESTKIT_GEN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sparksim/application.h"
#include "sparksim/environment.h"
#include "sparksim/knob.h"
#include "util/rng.h"

namespace lite::testkit {

/// Master seed for a randomized suite: the value of `env_var` when set (any
/// base-10 uint64), `fallback` otherwise. Suites must print the seed they
/// ran with on failure so every run is replayable.
uint64_t SeedFromEnv(const char* env_var = "LITE_TEST_SEED",
                     uint64_t fallback = 0x5eed);

/// Iteration count for a property sweep: `env_var` when set, else
/// `fallback`. PR builds keep the default smoke tier; the nightly workflow
/// exports LITE_PROPERTY_CASES=10000.
size_t CasesFromEnv(const char* env_var = "LITE_PROPERTY_CASES",
                    size_t fallback = 200);

/// One complete simulator input: (application, data, environment, knobs).
struct WorkloadTuple {
  const spark::ApplicationSpec* app = nullptr;
  spark::DataSpec data;
  spark::ClusterEnv env;
  spark::Config config;

  /// Compact one-line description: app/data/env plus only the knobs that
  /// differ from the Spark16 defaults (the interesting part of a shrunk
  /// counterexample).
  std::string Describe() const;
};

struct GenOptions {
  /// Applications to draw from (names or abbrevs); empty = whole catalog.
  std::vector<std::string> apps;
  /// Clusters to draw from; empty = Table III's A/B/C.
  std::vector<spark::ClusterEnv> clusters;
  /// Data sizes are drawn log-uniformly in [min_scale, max_scale] times the
  /// application's smallest training size.
  double min_size_scale = 0.5;
  double max_size_scale = 8.0;
  /// Probability that a knob is pinned to its min (resp. max) instead of
  /// drawn uniformly — corner-heavy sampling finds boundary bugs faster.
  double corner_prob = 0.15;
};

/// Deterministic stream of random workload tuples. Two generators built
/// with the same (options, seed) produce the same stream.
class TupleGenerator {
 public:
  TupleGenerator(GenOptions options, uint64_t seed);

  WorkloadTuple Next();

  Rng* rng() { return &rng_; }

 private:
  GenOptions options_;
  std::vector<const spark::ApplicationSpec*> apps_;
  std::vector<spark::ClusterEnv> clusters_;
  Rng rng_;
};

/// Greedy counterexample minimization: repeatedly tries simpler variants of
/// `failing` (each knob back to its default, data halved, iterations cut,
/// environment swapped to the 1-node cluster A) and keeps a variant whenever
/// `still_fails` holds, until a fixpoint or `max_probes` property
/// evaluations. The result fails the property whenever the input did.
WorkloadTuple ShrinkTuple(
    const WorkloadTuple& failing,
    const std::function<bool(const WorkloadTuple&)>& still_fails,
    int max_probes = 400);

/// Outcome of a property sweep. On failure `report` holds everything a
/// human needs: the seed, the failing case index, the raw tuple, the shrunk
/// minimal tuple and the property's message on it.
struct PropertyOutcome {
  bool ok = true;
  size_t cases_run = 0;
  std::string report;
};

/// Runs `check` over `cases` generated tuples. `check` returns an empty
/// string when the property holds, else a violation message. Stops at the
/// first failure, shrinks it, and formats the replay report. When the
/// LITE_SEED_ARTIFACT environment variable names a writable path, the
/// failing seed + report are also appended there (CI uploads it).
PropertyOutcome CheckTupleProperty(
    const std::string& property_name, size_t cases, const GenOptions& options,
    uint64_t seed,
    const std::function<std::string(const WorkloadTuple&)>& check);

}  // namespace lite::testkit

#endif  // LITE_TESTKIT_GEN_H_
