// Testkit differential layer: the repo now has three execution paths
// (scalar NECS, batched NECS, resilient harness) and a persistence format
// that all claim to agree. This header turns each agreement claim into a
// checkable assertion:
//
//   * scalar PredictTarget vs batched PredictBatch — bit-identical;
//   * ensemble candidate scoring across thread counts — bit-identical;
//   * SparkRunner vs ResilientRunner with faults disabled — bit-identical;
//   * LiteSystem vs its snapshot round-trip — identical recommendation and
//     bit-identical ensemble predictions;
//   * event-log and Chrome-trace serialization round-trips.
//
// Each check returns a DiffResult whose message pinpoints the first
// divergence; suites assert `result.ok` and print `result.message`.
#ifndef LITE_TESTKIT_DIFF_H_
#define LITE_TESTKIT_DIFF_H_

#include <span>
#include <string>
#include <vector>

#include "lite/dataset.h"
#include "lite/lite_system.h"
#include "lite/necs.h"
#include "testkit/gen.h"

namespace lite::testkit {

struct DiffResult {
  bool ok = true;
  std::string message;
};

/// Scalar PredictTarget vs one PredictBatch call over `insts`: entry i must
/// be bit-identical (the batched tower documents this contract).
DiffResult DiffScalarVsBatch(const NecsModel& model,
                             std::span<const StageInstance> insts);

/// ScoreCandidatesWithEnsemble across `thread_counts`: every thread count
/// must produce bit-identical scores (ordered reduction contract).
DiffResult DiffScoringThreadCounts(
    const spark::SparkRunner* runner, const Corpus& feature_space,
    const std::vector<const NecsModel*>& models, const WorkloadTuple& t,
    const std::vector<spark::Config>& candidates,
    const std::vector<size_t>& thread_counts);

/// Observability transparency: ScoreCandidatesWithEnsemble and Recommend
/// must be bit-identical with observability disabled vs enabled (metrics +
/// a live trace recording), for every thread count in `thread_counts`.
/// Instrumentation may only observe the computation, never steer it.
/// Serializes on the obs checks' internal mutex; saves and restores the
/// process-wide enabled flag and leaves the recorder stopped.
DiffResult DiffObservabilityTransparency(
    const LiteSystem& system, const spark::SparkRunner& runner,
    const WorkloadTuple& t, const std::vector<spark::Config>& candidates,
    const std::vector<size_t>& thread_counts);

/// SparkRunner::Measure vs an inert-plan ResilientRunner on one tuple:
/// bit-identical seconds, and the detailed outcome must report a clean
/// single attempt.
DiffResult DiffRunnerVsResilient(const spark::SparkRunner& runner,
                                 const WorkloadTuple& t);

/// Event-log serialization round-trip on one tuple: structure and times
/// must survive WriteEventLog -> ParseEventLog.
DiffResult DiffEventLogRoundTrip(const spark::SparkRunner& runner,
                                 const WorkloadTuple& t);

/// Chrome-trace round-trip on one tuple: spans must mirror stage runs.
DiffResult DiffTraceRoundTrip(const spark::SparkRunner& runner,
                              const WorkloadTuple& t);

/// Snapshot round-trip: saves `system` into `dir` (which must exist and be
/// writable), loads it back, and compares (a) the recommendation for the
/// tuple and (b) every ensemble member's predictions over the tuple's
/// featurized stage instances, bit for bit.
DiffResult DiffSnapshotRoundTrip(const LiteSystem& system,
                                 const spark::SparkRunner& runner,
                                 const WorkloadTuple& t,
                                 const std::string& dir);

/// Guardrail transparency (the `guardrail_transparency` oracle invariant):
/// a TuningService with the guardrail *enabled* but never tripped — default
/// tenant policies, no feedback submitted, breaker CLOSED — must produce
/// bit-identical recommendations to the same service with the guardrail
/// disabled, for the tuple's query. `dir` must hold a saved snapshot. The
/// safety layer may intervene only when its detector has evidence; an idle
/// guardrail that perturbs even one bit is a serving regression.
DiffResult DiffGuardrailTransparency(const spark::SparkRunner& runner,
                                     const WorkloadTuple& t,
                                     const std::string& dir);

/// Retrieval-cache transparency (the `retrieval_transparency` invariant),
/// checked across scoring thread counts 1/4/8:
///   * cache-disabled vs cache-enabled-but-cold must be bit-identical — an
///     empty index seeds nothing and a cold memo hits nothing, so enabling
///     the cache may not perturb a single bit;
///   * a second identical request on the enabled service must be a memo hit
///     (from_cache) replaying the first response's Recommendation verbatim
///     — config, predicted seconds, candidate count and recorded wall time
///     all bit-identical.
/// `dir` must hold a saved snapshot.
DiffResult DiffRetrievalTransparency(const spark::SparkRunner& runner,
                                     const WorkloadTuple& t,
                                     const std::string& dir);

}  // namespace lite::testkit

#endif  // LITE_TESTKIT_DIFF_H_
