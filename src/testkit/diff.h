// Testkit differential layer: the repo now has three execution paths
// (scalar NECS, batched NECS, resilient harness) and a persistence format
// that all claim to agree. This header turns each agreement claim into a
// checkable assertion:
//
//   * scalar PredictTarget vs batched PredictBatch — bit-identical;
//   * ensemble candidate scoring across thread counts — bit-identical;
//   * SparkRunner vs ResilientRunner with faults disabled — bit-identical;
//   * LiteSystem vs its snapshot round-trip — identical recommendation and
//     bit-identical ensemble predictions;
//   * event-log and Chrome-trace serialization round-trips.
//
// Each check returns a DiffResult whose message pinpoints the first
// divergence; suites assert `result.ok` and print `result.message`.
#ifndef LITE_TESTKIT_DIFF_H_
#define LITE_TESTKIT_DIFF_H_

#include <span>
#include <string>
#include <vector>

#include "lite/dataset.h"
#include "lite/lite_system.h"
#include "lite/necs.h"
#include "testkit/gen.h"

namespace lite::testkit {

struct DiffResult {
  bool ok = true;
  std::string message;
};

/// Scalar PredictTarget vs one PredictBatch call over `insts`: entry i must
/// be bit-identical (the batched tower documents this contract).
DiffResult DiffScalarVsBatch(const NecsModel& model,
                             std::span<const StageInstance> insts);

/// ScoreCandidatesWithEnsemble across `thread_counts`: every thread count
/// must produce bit-identical scores (ordered reduction contract).
DiffResult DiffScoringThreadCounts(
    const spark::SparkRunner* runner, const Corpus& feature_space,
    const std::vector<const NecsModel*>& models, const WorkloadTuple& t,
    const std::vector<spark::Config>& candidates,
    const std::vector<size_t>& thread_counts);

/// Observability transparency: ScoreCandidatesWithEnsemble and Recommend
/// must be bit-identical with observability disabled vs enabled (metrics +
/// a live trace recording), for every thread count in `thread_counts`.
/// Instrumentation may only observe the computation, never steer it.
/// Serializes on the obs checks' internal mutex; saves and restores the
/// process-wide enabled flag and leaves the recorder stopped.
DiffResult DiffObservabilityTransparency(
    const LiteSystem& system, const spark::SparkRunner& runner,
    const WorkloadTuple& t, const std::vector<spark::Config>& candidates,
    const std::vector<size_t>& thread_counts);

/// SparkRunner::Measure vs an inert-plan ResilientRunner on one tuple:
/// bit-identical seconds, and the detailed outcome must report a clean
/// single attempt.
DiffResult DiffRunnerVsResilient(const spark::SparkRunner& runner,
                                 const WorkloadTuple& t);

/// Event-log serialization round-trip on one tuple: structure and times
/// must survive WriteEventLog -> ParseEventLog.
DiffResult DiffEventLogRoundTrip(const spark::SparkRunner& runner,
                                 const WorkloadTuple& t);

/// Chrome-trace round-trip on one tuple: spans must mirror stage runs.
DiffResult DiffTraceRoundTrip(const spark::SparkRunner& runner,
                              const WorkloadTuple& t);

/// Snapshot round-trip: saves `system` into `dir` (which must exist and be
/// writable), loads it back, and compares (a) the recommendation for the
/// tuple and (b) every ensemble member's predictions over the tuple's
/// featurized stage instances, bit for bit.
DiffResult DiffSnapshotRoundTrip(const LiteSystem& system,
                                 const spark::SparkRunner& runner,
                                 const WorkloadTuple& t,
                                 const std::string& dir);

/// Guardrail transparency (the `guardrail_transparency` oracle invariant):
/// a TuningService with the guardrail *enabled* but never tripped — default
/// tenant policies, no feedback submitted, breaker CLOSED — must produce
/// bit-identical recommendations to the same service with the guardrail
/// disabled, for the tuple's query. `dir` must hold a saved snapshot. The
/// safety layer may intervene only when its detector has evidence; an idle
/// guardrail that perturbs even one bit is a serving regression.
DiffResult DiffGuardrailTransparency(const spark::SparkRunner& runner,
                                     const WorkloadTuple& t,
                                     const std::string& dir);

/// Observed accuracy numbers from DiffQuantizationAccuracy, for aggregation
/// into the golden workload-matrix agreement test (differential_test.cc).
struct QuantAccuracyReport {
  /// max over candidates of |quant - exact| / max(|exact|, 1e-9).
  double max_rel_error = 0.0;
  /// Exact-score regret of the quantized argmin relative to the exact
  /// argmin: (exact[q*] - exact[e*]) / max(exact[e*], 1e-9). Zero when the
  /// top-1 candidate agrees exactly.
  double top1_regret = 0.0;
  bool top1_exact_match = false;
};

/// Quantized-backend accuracy (the quantization error bound): scores the
/// candidate set with the exact fp32 tower and with `backend`, and checks
///   * quantized scores are bit-identical across `thread_counts` (the
///     ordered-reduction contract extends to the quantized path);
///   * when the AVX2 kernels are compiled in and the CPU supports them,
///     generic and AVX2 quantized scores are bit-identical (integer dots
///     are exact; the fp16 path fixes its reduction tree) — the kernel ISA
///     may never leak into scores. Twin encoder caches are flushed between
///     ISA passes so cached encodings cannot mask a CNN divergence.
///     Restores the process-wide ISA override before returning;
///   * every candidate's relative score error is <= `max_rel_error`.
/// On success `report` (optional) carries the observed error and the top-1
/// regret of the quantized argmin.
DiffResult DiffQuantizationAccuracy(
    const spark::SparkRunner* runner, const Corpus& feature_space,
    const std::vector<const NecsModel*>& models, const WorkloadTuple& t,
    const std::vector<spark::Config>& candidates, QuantBackend backend,
    double max_rel_error, const std::vector<size_t>& thread_counts,
    QuantAccuracyReport* report = nullptr);

/// Quantized-backend transparency (the `quant_transparency` invariant):
/// with the backend left at its kExactFp32 default, ScoreCandidateSet —
/// batched and scalar — must be bit-identical to the pre-quantization
/// ScoreCandidatesWithEnsemble reference for every thread count. Shipping
/// the quantized kernels may not move one bit of the default serving path.
DiffResult DiffQuantTransparency(
    const spark::SparkRunner* runner, const Corpus& feature_space,
    const std::vector<const NecsModel*>& models, const WorkloadTuple& t,
    const std::vector<spark::Config>& candidates,
    const std::vector<size_t>& thread_counts);

/// Retrieval-cache transparency (the `retrieval_transparency` invariant),
/// checked across scoring thread counts 1/4/8:
///   * cache-disabled vs cache-enabled-but-cold must be bit-identical — an
///     empty index seeds nothing and a cold memo hits nothing, so enabling
///     the cache may not perturb a single bit;
///   * a second identical request on the enabled service must be a memo hit
///     (from_cache) replaying the first response's Recommendation verbatim
///     — config, predicted seconds, candidate count and recorded wall time
///     all bit-identical.
/// `dir` must hold a saved snapshot.
DiffResult DiffRetrievalTransparency(const spark::SparkRunner& runner,
                                     const WorkloadTuple& t,
                                     const std::string& dir);

/// Stage-tuning transparency (the structurally-inert guarantee of
/// ServiceOptions::stage_tuning), checked across scoring thread counts
/// 1/4/8 and the exact, int8 and fp16 scoring backends:
///   * with stage tuning enabled but no staged endpoint exercised, plain
///     Recommend must be bit-identical to a stage-tuning-disabled service
///     — config, predicted seconds and candidate count;
///   * RecommendStaged's embedded base response must be that same
///     bit-identical recommendation (it takes the exact Recommend path);
///   * a plain Recommend issued *after* a staged request must still match
///     the disabled service — planning leaves no residue in serving state.
/// `dir` must hold a saved snapshot.
DiffResult DiffStageTuningTransparency(const spark::SparkRunner& runner,
                                       const WorkloadTuple& t,
                                       const std::string& dir);

}  // namespace lite::testkit

#endif  // LITE_TESTKIT_DIFF_H_
