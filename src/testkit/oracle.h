// Simulator invariant oracle: physical-plausibility laws the analytic cost
// model must obey for any (application, data, environment, knobs) tuple.
// The learning stack's entire training signal flows through the simulator,
// so a silent cost-model regression corrupts every downstream result; this
// oracle is the machinery that makes such regressions loud.
//
// Invariant catalog (see docs/TESTING.md for the rationale of each):
//   stage_sanity          finite, positive stage times; 1 <= waves <= tasks;
//                         waves >= ceil(tasks / total cluster cores);
//                         non-negative diagnostics.
//   total_consistency     non-failed total == sum of stage times (capped);
//                         failed total == failure cap, last stage failed.
//   cap_consistency       total never exceeds the failure cap.
//   determinism           bit-identical repeated runs (noise is hash-seeded).
//   eventlog_consistency  WriteEventLog -> ParseEventLog round-trips the
//                         stage structure, times and total.
//   trace_consistency     WriteChromeTrace -> ParseChromeTrace yields one
//                         span per stage execution with matching durations
//                         and contiguous timestamps.
//   inner_metrics         InnerMetrics() finite, failure flag consistent.
//   oom_consistency       memory pressure above threshold <=> OOM failure.
//   data_monotonicity     doubling the input data never shrinks the runtime
//                         (noise disabled), and failures stay failures.
//   executor_scaling      doubling executor instances never increases wave
//                         counts, never changes the failure outcome, and on
//                         a single-node cluster never shrinks pure compute
//                         time (occupancy contention is monotone).
//   iteration_monotonicity per-iteration (non-input) stages do no more work
//                         in later iterations (frontier decay).
//   shuffle_buffer_sensitivity shrinking shuffle.file.buffer must strictly
//                         slow a run with shuffle traffic (noise disabled)
//                         — the canary for dropped shuffle-cost terms.
//   env_monotonicity      slower network/disk/CPU never speeds a run up.
//   fault_replay          an active FaultPlan replays bit-identically.
//   resilient_transparency ResilientRunner with an inert plan is
//                         bit-identical to the plain runner.
//   metrics_consistency   the obs registry stays in lock-step with ground
//                         truth: encoder-cache hits + misses == lookups,
//                         `resilient_*` series mirror FaultStats deltas
//                         across a faulted replay, and the measure
//                         histogram's count matches the submission counter.
//   span_consistency      a recorded trace of one resilient submission
//                         yields spans that nest without partial overlap
//                         per thread, simulated stage events that tile the
//                         timeline without gaps, and a Chrome-trace export
//                         that ParseChromeTrace round-trips.
//   stage_override_dominance the per-stage planner's staged config is valid
//                         (every override in range, on a stage-tunable
//                         knob, on an existing stage), never loses to the
//                         app-level config on the quiet model, and its
//                         planned_seconds re-predicts bit-identically from
//                         the returned plan.
//   retune_inertness      re-tuning with observations copied bit-exactly
//                         from the plan's own quiet execution yields
//                         correction == 1.0 and zero override deltas; and
//                         doubling only the newest observation moves the
//                         correction to exactly the documented formula's
//                         value (> 1), so a stale observation window
//                         cannot hide.
//   plane_pull_atomicity  a model-plane shard puller driven through
//                         fault-injected channels (drop, truncate,
//                         corrupt, duplicate, reorder) only ever holds a
//                         (version, blob-set) pair that was published
//                         exactly as-is — never a mix of two versions —
//                         and its installed version never regresses.
//                         Synthetic blobs seeded from the tuple; no model.
//   shard_equivalence     a request served by any shard of a
//                         ShardedTuningService at plane version V is
//                         bit-identical (config, predicted seconds,
//                         candidate count) to the single-process
//                         TuningService serving the same version. Uses a
//                         lazily trained shared tiny model; the tuple
//                         supplies the request's app/data/env.
//
// All comparisons that reason about monotonicity run on a noise-free copy
// of the model options; determinism and replay checks keep the caller's
// noise settings. The metrics/span invariants touch process-global obs
// state: they serialize on an internal mutex, force observability on for
// their own measurements (restoring the previous state afterwards), and
// assume no *other* thread is concurrently driving instrumented code.
#ifndef LITE_TESTKIT_ORACLE_H_
#define LITE_TESTKIT_ORACLE_H_

#include <string>
#include <vector>

#include "sparksim/cost_model.h"
#include "sparksim/runner.h"
#include "testkit/gen.h"

namespace lite::testkit {

struct InvariantViolation {
  std::string invariant;  ///< catalog name, e.g. "data_monotonicity".
  std::string detail;
};

struct OracleReport {
  std::vector<InvariantViolation> violations;
  bool ok() const { return violations.empty(); }
  /// Human-readable multi-line summary ("<invariant>: <detail>" per line).
  std::string Summary() const;
};

struct OracleOptions {
  /// Relative tolerance for monotonicity comparisons (guards against pure
  /// floating-point reassociation, not real regressions).
  double rel_tol = 1e-9;
  /// Seed for the fault-replay invariant's FaultPlan.
  uint64_t fault_seed = 0x0b5e55ed;
  /// Test-only: injects one known stage-planner bug (StageTuningMutation)
  /// into the planner the stage_override_dominance / retune_inertness
  /// invariants exercise. tools/mutation_check flips each id in turn and
  /// verifies the invariants flag the mutated planner; production and
  /// every experiment leave this at 0. Orthogonal to the cost-model
  /// mutation carried in CostModelOptions.
  int stage_mutation = 0;
};

/// Checks every catalog invariant against the cost model built from
/// `model_options` (which may carry a test mutation). Stateless per call;
/// safe to share across threads.
class SimulatorOracle {
 public:
  explicit SimulatorOracle(spark::CostModelOptions model_options = {},
                           OracleOptions options = {});

  /// Runs the full invariant catalog on one tuple.
  OracleReport Check(const WorkloadTuple& t) const;

  /// Individual invariants (each appends violations to `report`). Exposed
  /// so suites and tools can probe one law in isolation.
  void CheckStageSanity(const WorkloadTuple& t, OracleReport* report) const;
  void CheckTotalConsistency(const WorkloadTuple& t, OracleReport* report) const;
  void CheckDeterminism(const WorkloadTuple& t, OracleReport* report) const;
  void CheckEventLogConsistency(const WorkloadTuple& t, OracleReport* report) const;
  void CheckTraceConsistency(const WorkloadTuple& t, OracleReport* report) const;
  void CheckInnerMetrics(const WorkloadTuple& t, OracleReport* report) const;
  void CheckOomConsistency(const WorkloadTuple& t, OracleReport* report) const;
  void CheckDataMonotonicity(const WorkloadTuple& t, OracleReport* report) const;
  void CheckExecutorScaling(const WorkloadTuple& t, OracleReport* report) const;
  void CheckIterationMonotonicity(const WorkloadTuple& t,
                                  OracleReport* report) const;
  void CheckShuffleBufferSensitivity(const WorkloadTuple& t,
                                     OracleReport* report) const;
  void CheckEnvMonotonicity(const WorkloadTuple& t, OracleReport* report) const;
  void CheckFaultReplay(const WorkloadTuple& t, OracleReport* report) const;
  void CheckResilientTransparency(const WorkloadTuple& t,
                                  OracleReport* report) const;
  void CheckMetricsConsistency(const WorkloadTuple& t,
                               OracleReport* report) const;
  void CheckSpanConsistency(const WorkloadTuple& t, OracleReport* report) const;
  void CheckStageOverrideDominance(const WorkloadTuple& t,
                                   OracleReport* report) const;
  void CheckRetuneInertness(const WorkloadTuple& t, OracleReport* report) const;
  void CheckPlanePullAtomicity(const WorkloadTuple& t,
                               OracleReport* report) const;
  void CheckShardEquivalence(const WorkloadTuple& t,
                             OracleReport* report) const;

  /// Names of every invariant in the catalog, in Check() order.
  static const std::vector<std::string>& InvariantNames();

  const spark::SparkRunner& runner() const { return runner_; }

 private:
  OracleOptions options_;
  spark::SparkRunner runner_;        ///< the caller's options (noise kept).
  spark::SparkRunner quiet_runner_;  ///< same model, noise disabled.
};

/// Adapter for CheckTupleProperty: runs the full catalog and folds the
/// report into the property-check message convention (empty = pass).
std::string OracleCheckAsProperty(const SimulatorOracle& oracle,
                                  const WorkloadTuple& t);

}  // namespace lite::testkit

#endif  // LITE_TESTKIT_ORACLE_H_
