#include "testkit/diff.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "lite/qnecs.h"
#include "lite/snapshot.h"
#include "obs/metrics.h"
#include "serve/recommend_pipeline.h"
#include "serve/tuning_service.h"
#include "tensor/qkernels.h"
#include "obs/trace.h"
#include "sparksim/eventlog.h"
#include "sparksim/resilient_runner.h"
#include "sparksim/trace.h"

namespace lite::testkit {

namespace {

DiffResult Fail(const std::string& message) { return {false, message}; }

std::string Fmt(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

DiffResult DiffScalarVsBatch(const NecsModel& model,
                             std::span<const StageInstance> insts) {
  std::vector<double> batched = model.PredictBatch(insts);
  if (batched.size() != insts.size()) {
    return Fail("PredictBatch returned " + std::to_string(batched.size()) +
                " predictions for " + std::to_string(insts.size()) +
                " instances");
  }
  for (size_t i = 0; i < insts.size(); ++i) {
    double scalar = model.PredictTarget(insts[i]);
    if (scalar != batched[i]) {
      return Fail("instance " + std::to_string(i) + ": scalar " +
                  Fmt(scalar) + " != batched " + Fmt(batched[i]));
    }
  }
  return {};
}

DiffResult DiffScoringThreadCounts(
    const spark::SparkRunner* runner, const Corpus& feature_space,
    const std::vector<const NecsModel*>& models, const WorkloadTuple& t,
    const std::vector<spark::Config>& candidates,
    const std::vector<size_t>& thread_counts) {
  if (thread_counts.empty()) return {};
  std::vector<double> reference;
  size_t reference_threads = 0;
  for (size_t threads : thread_counts) {
    std::vector<double> scores = ScoreCandidatesWithEnsemble(
        runner, feature_space, models, *t.app, t.data, t.env, candidates,
        threads);
    if (reference.empty()) {
      reference = scores;
      reference_threads = threads;
      continue;
    }
    if (scores.size() != reference.size()) {
      return Fail("score count changed between thread counts");
    }
    for (size_t i = 0; i < scores.size(); ++i) {
      if (scores[i] != reference[i]) {
        return Fail("candidate " + std::to_string(i) + ": " +
                    std::to_string(reference_threads) + " thread(s) -> " +
                    Fmt(reference[i]) + " but " + std::to_string(threads) +
                    " thread(s) -> " + Fmt(scores[i]));
      }
    }
  }
  return {};
}

DiffResult DiffObservabilityTransparency(
    const LiteSystem& system, const spark::SparkRunner& runner,
    const WorkloadTuple& t, const std::vector<spark::Config>& candidates,
    const std::vector<size_t>& thread_counts) {
  std::vector<const NecsModel*> models;
  for (size_t m = 0; m < system.ensemble_size(); ++m) {
    models.push_back(system.ensemble_member(m));
  }

  const bool saved = obs::Enabled();
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  if (recorder.recording()) {
    return Fail("a trace recording is already live; transparency needs to "
                "own the recorder");
  }

  // Pass 1: observability fully off — this is the ground truth.
  obs::SetEnabled(false);
  std::vector<std::vector<double>> off_scores;
  for (size_t threads : thread_counts) {
    off_scores.push_back(ScoreCandidatesWithEnsemble(
        &runner, system.corpus(), models, *t.app, t.data, t.env, candidates,
        threads));
  }
  LiteSystem::Recommendation off_rec = system.Recommend(*t.app, t.data, t.env);

  // Pass 2: maximum observability — metrics on and a live trace recording,
  // so every span/counter site on the scoring path actually executes.
  obs::SetEnabled(true);
  recorder.Start();
  std::vector<std::vector<double>> on_scores;
  for (size_t threads : thread_counts) {
    on_scores.push_back(ScoreCandidatesWithEnsemble(
        &runner, system.corpus(), models, *t.app, t.data, t.env, candidates,
        threads));
  }
  LiteSystem::Recommendation on_rec = system.Recommend(*t.app, t.data, t.env);
  recorder.Stop();
  obs::SetEnabled(saved);

  for (size_t k = 0; k < thread_counts.size(); ++k) {
    if (off_scores[k].size() != on_scores[k].size()) {
      return Fail("score count changed with observability enabled at " +
                  std::to_string(thread_counts[k]) + " thread(s)");
    }
    for (size_t i = 0; i < off_scores[k].size(); ++i) {
      if (off_scores[k][i] != on_scores[k][i]) {
        return Fail("candidate " + std::to_string(i) + " at " +
                    std::to_string(thread_counts[k]) + " thread(s): obs off " +
                    Fmt(off_scores[k][i]) + " != obs on " +
                    Fmt(on_scores[k][i]));
      }
    }
  }
  if (off_rec.config != on_rec.config ||
      off_rec.predicted_seconds != on_rec.predicted_seconds ||
      off_rec.candidates_evaluated != on_rec.candidates_evaluated) {
    return Fail("Recommend() diverged with observability enabled: " +
                Fmt(off_rec.predicted_seconds) + "s vs " +
                Fmt(on_rec.predicted_seconds) + "s");
  }
  return {};
}

DiffResult DiffRunnerVsResilient(const spark::SparkRunner& runner,
                                 const WorkloadTuple& t) {
  spark::ResilientRunner inert(&runner);
  double direct = runner.Measure(*t.app, t.data, t.env, t.config);
  spark::MeasureOutcome outcome =
      inert.MeasureDetailed(*t.app, t.data, t.env, t.config);
  if (outcome.seconds != direct) {
    return Fail("inert harness " + Fmt(outcome.seconds) +
                "s != plain runner " + Fmt(direct) + "s");
  }
  if (outcome.attempts != 1 || outcome.wasted_seconds != 0.0 ||
      outcome.transient) {
    return Fail("inert harness reported retries/waste on a clean run");
  }
  return {};
}

DiffResult DiffEventLogRoundTrip(const spark::SparkRunner& runner,
                                 const WorkloadTuple& t) {
  spark::Submission sub = runner.Submit(*t.app, t.data, t.env, t.config);
  spark::ParsedEventLog parsed;
  if (!spark::ParseEventLog(sub.event_log, &parsed)) {
    return Fail("event log does not parse back");
  }
  if (parsed.app_name != t.app->name || parsed.failed != sub.result.failed ||
      parsed.stages.size() != sub.result.stage_runs.size()) {
    return Fail("event-log header/stage structure drifted in round-trip");
  }
  const double tol = 1e-8;  // writer keeps 9 significant digits.
  for (size_t i = 0; i < parsed.stages.size(); ++i) {
    double want = sub.result.stage_runs[i].seconds;
    if (std::fabs(parsed.stages[i].seconds - want) >
        tol * std::max(1.0, want)) {
      return Fail("stage " + std::to_string(i) + " time drifted: wrote " +
                  Fmt(want) + "s, parsed " + Fmt(parsed.stages[i].seconds) +
                  "s");
    }
  }
  return {};
}

DiffResult DiffTraceRoundTrip(const spark::SparkRunner& runner,
                              const WorkloadTuple& t) {
  spark::AppRunResult run =
      runner.cost_model().Run(*t.app, t.data, t.env, t.config);
  std::string trace = spark::WriteChromeTrace(*t.app, run);
  spark::ParsedChromeTrace parsed;
  if (!spark::ParseChromeTrace(trace, &parsed)) {
    return Fail("chrome trace does not parse back");
  }
  if (parsed.spans.size() != run.stage_runs.size()) {
    return Fail("trace spans " + std::to_string(parsed.spans.size()) +
                " != stage executions " +
                std::to_string(run.stage_runs.size()));
  }
  for (size_t i = 0; i < parsed.spans.size(); ++i) {
    double want_us = run.stage_runs[i].seconds * 1e6;
    if (std::fabs(parsed.spans[i].dur_us - want_us) > 1e-2) {
      return Fail("span " + std::to_string(i) + " duration drifted");
    }
  }
  return {};
}

DiffResult DiffSnapshotRoundTrip(const LiteSystem& system,
                                 const spark::SparkRunner& runner,
                                 const WorkloadTuple& t,
                                 const std::string& dir) {
  if (!SaveSnapshot(system, dir)) {
    return Fail("SaveSnapshot failed for " + dir);
  }
  std::unique_ptr<LoadedLiteModel> loaded = LoadedLiteModel::Load(dir, &runner);
  if (loaded == nullptr) {
    return Fail("LoadedLiteModel::Load failed for " + dir);
  }
  if (loaded->ensemble_size() != system.ensemble_size()) {
    return Fail("ensemble size drifted in snapshot round-trip");
  }

  // (a) Bit-identical per-member predictions over the tuple's instances.
  CandidateEval ce = CorpusBuilder(&runner).FeaturizeCandidate(
      system.corpus(), *t.app, t.data, t.env, t.config);
  for (size_t m = 0; m < system.ensemble_size(); ++m) {
    const NecsModel* orig = system.ensemble_member(m);
    const NecsModel* rest = loaded->model(m);
    if (orig == nullptr || rest == nullptr) {
      return Fail("missing ensemble member " + std::to_string(m));
    }
    std::vector<double> a = orig->PredictBatch(ce.stage_instances);
    std::vector<double> b = rest->PredictBatch(ce.stage_instances);
    if (a != b) {
      return Fail("ensemble member " + std::to_string(m) +
                  " predictions drifted through the snapshot");
    }
  }

  // (b) Identical recommendation (same candidate stream seed + weights).
  LiteSystem::Recommendation orig = system.Recommend(*t.app, t.data, t.env);
  LiteSystem::Recommendation rest = loaded->Recommend(*t.app, t.data, t.env);
  if (orig.config != rest.config) {
    return Fail("recommended configuration drifted through the snapshot");
  }
  if (std::fabs(orig.predicted_seconds - rest.predicted_seconds) >
      1e-9 * (1.0 + std::fabs(orig.predicted_seconds))) {
    return Fail("predicted seconds drifted through the snapshot: " +
                Fmt(orig.predicted_seconds) + " vs " +
                Fmt(rest.predicted_seconds));
  }
  return {};
}

DiffResult DiffGuardrailTransparency(const spark::SparkRunner& runner,
                                     const WorkloadTuple& t,
                                     const std::string& dir) {
  auto recommend = [&](bool guarded) -> serve::TuningService::Response {
    serve::ServiceOptions opts;
    opts.guardrail.enabled = guarded;
    serve::TuningService service(&runner, opts);
    if (!service.LoadSnapshot(dir)) {
      return serve::TuningService::Response{};
    }
    int session = service.OpenSession("transparency-tenant");
    return service.Recommend(session, *t.app, t.data, t.env);
  };

  serve::TuningService::Response off = recommend(false);
  serve::TuningService::Response on = recommend(true);
  if (!off.ok) return Fail("guardrails-off serving failed: " + off.error);
  if (!on.ok) return Fail("guardrails-on serving failed: " + on.error);
  if (on.from_incumbent || on.probe) {
    return Fail("idle guardrail intervened (from_incumbent=" +
                std::to_string(on.from_incumbent) +
                " probe=" + std::to_string(on.probe) + ") with no evidence");
  }
  if (on.rec.config != off.rec.config) {
    return Fail("idle guardrail changed the recommended configuration for " +
                std::string(t.app->name));
  }
  if (on.rec.predicted_seconds != off.rec.predicted_seconds) {
    return Fail("idle guardrail moved predicted seconds: " +
                Fmt(off.rec.predicted_seconds) + " vs " +
                Fmt(on.rec.predicted_seconds));
  }
  if (on.rec.candidates_evaluated != off.rec.candidates_evaluated) {
    return Fail("idle guardrail changed the evaluated candidate count");
  }
  return {};
}

DiffResult DiffQuantizationAccuracy(
    const spark::SparkRunner* runner, const Corpus& feature_space,
    const std::vector<const NecsModel*>& models, const WorkloadTuple& t,
    const std::vector<spark::Config>& candidates, QuantBackend backend,
    double max_rel_error, const std::vector<size_t>& thread_counts,
    QuantAccuracyReport* report) {
  if (backend == QuantBackend::kExactFp32) {
    return Fail("DiffQuantizationAccuracy needs a quantized backend");
  }
  if (candidates.empty()) return Fail("empty candidate set");
  const std::string who = std::string(QuantBackendName(backend)) + "/" +
                          std::string(t.app->name);

  std::vector<double> exact = ScoreCandidatesWithEnsemble(
      runner, feature_space, models, *t.app, t.data, t.env, candidates, 1);

  // Thread-count invariance of the quantized path.
  std::vector<double> quant;
  size_t reference_threads = 0;
  std::vector<size_t> counts =
      thread_counts.empty() ? std::vector<size_t>{1} : thread_counts;
  for (size_t threads : counts) {
    std::vector<double> scores = ScoreCandidatesWithEnsembleQuantized(
        runner, feature_space, models, *t.app, t.data, t.env, candidates,
        backend, threads);
    if (scores.size() != candidates.size()) {
      return Fail("quantized scoring returned " +
                  std::to_string(scores.size()) + " scores for " +
                  std::to_string(candidates.size()) + " candidates (" + who +
                  ")");
    }
    if (quant.empty()) {
      quant = scores;
      reference_threads = threads;
      continue;
    }
    for (size_t i = 0; i < scores.size(); ++i) {
      if (scores[i] != quant[i]) {
        return Fail("quantized candidate " + std::to_string(i) + ": " +
                    std::to_string(reference_threads) + " thread(s) -> " +
                    Fmt(quant[i]) + " but " + std::to_string(threads) +
                    " thread(s) -> " + Fmt(scores[i]) + " (" + who + ")");
      }
    }
  }

  // ISA parity: generic and AVX2 kernels must score bit-identically. Twin
  // encoder caches are flushed before each pass so an encoding computed by
  // the other ISA can never be served from the cache and mask a divergence.
  if (qk::Avx2KernelAvailable()) {
    const qk::KernelIsa saved = qk::ActiveKernelIsa();
    std::vector<std::vector<double>> by_isa;
    for (qk::KernelIsa isa : {qk::KernelIsa::kGeneric, qk::KernelIsa::kAvx2}) {
      qk::SetKernelIsaForTest(isa);
      for (const NecsModel* m : models) {
        m->Quantized(backend)->InvalidateCache();
      }
      by_isa.push_back(ScoreCandidatesWithEnsembleQuantized(
          runner, feature_space, models, *t.app, t.data, t.env, candidates,
          backend, 1));
    }
    qk::SetKernelIsaForTest(saved);
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (by_isa[0][i] != by_isa[1][i]) {
        return Fail("candidate " + std::to_string(i) + ": generic kernel " +
                    Fmt(by_isa[0][i]) + " != AVX2 kernel " +
                    Fmt(by_isa[1][i]) + " (" + who + ")");
      }
    }
  }

  // Error bound and top-1 regret against the exact tower.
  QuantAccuracyReport local;
  size_t exact_best = 0, quant_best = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    double rel = std::fabs(quant[i] - exact[i]) /
                 std::max(std::fabs(exact[i]), 1e-9);
    if (rel > local.max_rel_error) local.max_rel_error = rel;
    if (exact[i] < exact[exact_best]) exact_best = i;
    if (quant[i] < quant[quant_best]) quant_best = i;
  }
  local.top1_exact_match = quant_best == exact_best;
  local.top1_regret = (exact[quant_best] - exact[exact_best]) /
                      std::max(std::fabs(exact[exact_best]), 1e-9);
  if (report != nullptr) *report = local;
  if (local.max_rel_error > max_rel_error) {
    return Fail("quantized score error " + Fmt(local.max_rel_error) +
                " exceeds the " + Fmt(max_rel_error) + " bound (" + who + ")");
  }
  return {};
}

DiffResult DiffQuantTransparency(
    const spark::SparkRunner* runner, const Corpus& feature_space,
    const std::vector<const NecsModel*>& models, const WorkloadTuple& t,
    const std::vector<spark::Config>& candidates,
    const std::vector<size_t>& thread_counts) {
  for (size_t threads : thread_counts) {
    std::vector<double> reference = ScoreCandidatesWithEnsemble(
        runner, feature_space, models, *t.app, t.data, t.env, candidates,
        threads);
    serve::ScoringOptions opts;
    opts.threads = threads;
    std::vector<double> batched = serve::ScoreCandidateSet(
        runner, feature_space, models, *t.app, t.data, t.env, candidates,
        opts);
    opts.batched = false;
    std::vector<double> scalar = serve::ScoreCandidateSet(
        runner, feature_space, models, *t.app, t.data, t.env, candidates,
        opts);
    if (batched.size() != reference.size() ||
        scalar.size() != reference.size()) {
      return Fail("score count drifted with the default backend at " +
                  std::to_string(threads) + " thread(s)");
    }
    for (size_t i = 0; i < reference.size(); ++i) {
      if (batched[i] != reference[i]) {
        return Fail("candidate " + std::to_string(i) + " at " +
                    std::to_string(threads) +
                    " thread(s): default-backend batched " + Fmt(batched[i]) +
                    " != reference " + Fmt(reference[i]));
      }
      if (scalar[i] != reference[i]) {
        return Fail("candidate " + std::to_string(i) + " at " +
                    std::to_string(threads) +
                    " thread(s): default-backend scalar " + Fmt(scalar[i]) +
                    " != reference " + Fmt(reference[i]));
      }
    }
  }
  return {};
}

DiffResult DiffRetrievalTransparency(const spark::SparkRunner& runner,
                                     const WorkloadTuple& t,
                                     const std::string& dir) {
  for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    auto make_service = [&](bool cached) {
      serve::ServiceOptions opts;
      opts.scoring.threads = threads;
      opts.retrieval.enabled = cached;
      auto service = std::make_unique<serve::TuningService>(&runner, opts);
      if (!service->LoadSnapshot(dir)) service.reset();
      return service;
    };
    auto off_service = make_service(false);
    auto on_service = make_service(true);
    if (off_service == nullptr || on_service == nullptr) {
      return Fail("snapshot failed to load from " + dir);
    }
    int off_session = off_service->OpenSession("transparency-tenant");
    int on_session = on_service->OpenSession("transparency-tenant");
    serve::TuningService::Response off =
        off_service->Recommend(off_session, *t.app, t.data, t.env);
    serve::TuningService::Response on =
        on_service->Recommend(on_session, *t.app, t.data, t.env);
    const std::string where =
        std::string(t.app->name) + " @" + std::to_string(threads) + " threads";
    if (!off.ok) return Fail("cache-off serving failed: " + off.error);
    if (!on.ok) return Fail("cache-on serving failed: " + on.error);
    if (on.from_cache) {
      return Fail("cold cache claimed a memo hit on the first request (" +
                  where + ")");
    }
    if (on.rec.config != off.rec.config) {
      return Fail("cold retrieval cache changed the recommended "
                  "configuration (" + where + ")");
    }
    if (on.rec.predicted_seconds != off.rec.predicted_seconds) {
      return Fail("cold retrieval cache moved predicted seconds: " +
                  Fmt(off.rec.predicted_seconds) + " vs " +
                  Fmt(on.rec.predicted_seconds) + " (" + where + ")");
    }
    if (on.rec.candidates_evaluated != off.rec.candidates_evaluated) {
      return Fail("cold retrieval cache changed the evaluated candidate "
                  "count (" + where + ")");
    }
    // Exact repeat: the memo must replay the first response verbatim.
    serve::TuningService::Response replay =
        on_service->Recommend(on_session, *t.app, t.data, t.env);
    if (!replay.ok) return Fail("memoized serving failed: " + replay.error);
    if (!replay.from_cache) {
      return Fail("exact-repeat request missed the memo (" + where + ")");
    }
    if (replay.rec.config != on.rec.config ||
        replay.rec.predicted_seconds != on.rec.predicted_seconds ||
        replay.rec.candidates_evaluated != on.rec.candidates_evaluated ||
        replay.rec.recommend_wall_seconds != on.rec.recommend_wall_seconds) {
      return Fail("memo hit did not replay the cached Response bit for bit (" +
                  where + ")");
    }
  }
  return {};
}

DiffResult DiffStageTuningTransparency(const spark::SparkRunner& runner,
                                       const WorkloadTuple& t,
                                       const std::string& dir) {
  struct BackendCase {
    QuantBackend backend;
    const char* name;
  };
  const BackendCase backends[] = {{QuantBackend::kExactFp32, "exact"},
                                  {QuantBackend::kInt8, "int8"},
                                  {QuantBackend::kFp16, "fp16"}};
  for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    for (const BackendCase& bc : backends) {
      auto make_service = [&](bool stage_tuning) {
        serve::ServiceOptions opts;
        opts.scoring.threads = threads;
        opts.scoring.backend = bc.backend;
        opts.stage_tuning.enabled = stage_tuning;
        auto service = std::make_unique<serve::TuningService>(&runner, opts);
        if (!service->LoadSnapshot(dir)) service.reset();
        return service;
      };
      auto off_service = make_service(false);
      auto on_service = make_service(true);
      if (off_service == nullptr || on_service == nullptr) {
        return Fail("snapshot failed to load from " + dir);
      }
      const std::string where = std::string(t.app->name) + " @" +
                                std::to_string(threads) + " threads/" +
                                bc.name;
      int off_session = off_service->OpenSession("stage-transparency-tenant");
      int on_session = on_service->OpenSession("stage-transparency-tenant");
      serve::TuningService::Response off =
          off_service->Recommend(off_session, *t.app, t.data, t.env);
      serve::TuningService::Response on =
          on_service->Recommend(on_session, *t.app, t.data, t.env);
      if (!off.ok) return Fail("stage-tuning-off serving failed: " + off.error);
      if (!on.ok) return Fail("stage-tuning-on serving failed: " + on.error);
      auto same = [](const serve::TuningService::Response& a,
                     const serve::TuningService::Response& b) {
        return a.rec.config == b.rec.config &&
               a.rec.predicted_seconds == b.rec.predicted_seconds &&
               a.rec.candidates_evaluated == b.rec.candidates_evaluated;
      };
      if (!same(on, off)) {
        return Fail("enabling idle stage tuning moved the plain Recommend "
                    "response (" + where + ")");
      }
      // The staged endpoint's embedded base response takes the exact
      // Recommend path — bit-identical to the disabled service.
      int staged_session =
          on_service->OpenSession("stage-transparency-staged-tenant");
      serve::TuningService::StagedResponse sr =
          on_service->RecommendStaged(staged_session, *t.app, t.data, t.env);
      if (!sr.base.ok) {
        return Fail("RecommendStaged base serving failed: " + sr.base.error);
      }
      if (!same(sr.base, off)) {
        return Fail("RecommendStaged's base response drifted from plain "
                    "Recommend (" + where + ")");
      }
      if (sr.staged.base != sr.base.rec.config) {
        return Fail("staged plan is not rooted at the base recommendation (" +
                    where + ")");
      }
      // Planning must leave no residue: a plain request after the staged
      // one still matches the disabled service.
      int after_session =
          on_service->OpenSession("stage-transparency-after-tenant");
      serve::TuningService::Response after =
          on_service->Recommend(after_session, *t.app, t.data, t.env);
      if (!after.ok) {
        return Fail("post-staged serving failed: " + after.error);
      }
      if (!same(after, off)) {
        return Fail("a staged request perturbed subsequent plain serving (" +
                    where + ")");
      }
    }
  }
  return {};
}

}  // namespace lite::testkit
