#include "testkit/gen.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "lite/dataset.h"
#include "util/logging.h"

namespace lite::testkit {

uint64_t SeedFromEnv(const char* env_var, uint64_t fallback) {
  const char* v = std::getenv(env_var);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v) {
    LITE_WARN << env_var << "='" << v
              << "' is not a base-10 seed; using fallback " << fallback;
    return fallback;
  }
  return static_cast<uint64_t>(parsed);
}

size_t CasesFromEnv(const char* env_var, size_t fallback) {
  const char* v = std::getenv(env_var);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || parsed == 0) return fallback;
  return static_cast<size_t>(parsed);
}

std::string WorkloadTuple::Describe() const {
  std::ostringstream os;
  os.precision(6);
  os << (app != nullptr ? app->abbrev : "?") << " size_mb=" << data.size_mb
     << " rows=" << data.num_rows << " iters=" << data.iterations << " env="
     << env.name << "(" << env.num_nodes << "x" << env.cores_per_node << ")";
  const auto& space = spark::KnobSpace::Spark16();
  spark::Config defaults = space.DefaultConfig();
  os << " knobs{";
  bool first = true;
  for (size_t i = 0; i < config.size() && i < space.size(); ++i) {
    if (config[i] == defaults[i]) continue;
    if (!first) os << ",";
    first = false;
    os << space.spec(i).name << "=" << config[i];
  }
  os << (first ? "defaults}" : "}");
  return os.str();
}

TupleGenerator::TupleGenerator(GenOptions options, uint64_t seed)
    : options_(std::move(options)),
      apps_(ResolveApps(options_.apps)),
      clusters_(options_.clusters.empty() ? spark::ClusterEnv::AllClusters()
                                          : options_.clusters),
      rng_(seed) {
  LITE_CHECK(!apps_.empty()) << "TupleGenerator: no applications";
  LITE_CHECK(!clusters_.empty()) << "TupleGenerator: no clusters";
}

WorkloadTuple TupleGenerator::Next() {
  WorkloadTuple t;
  t.app = apps_[rng_.Index(apps_.size())];
  t.env = clusters_[rng_.Index(clusters_.size())];

  double base = t.app->train_sizes_mb.empty() ? 50.0 : t.app->train_sizes_mb[0];
  double lo = std::log(options_.min_size_scale);
  double hi = std::log(options_.max_size_scale);
  double scale = std::exp(rng_.Uniform(lo, hi));
  t.data = t.app->MakeData(std::max(1.0, base * scale));

  const auto& space = spark::KnobSpace::Spark16();
  t.config.resize(space.size());
  for (size_t d = 0; d < space.size(); ++d) {
    const auto& spec = space.spec(d);
    double u = rng_.Uniform();
    if (u < options_.corner_prob) {
      t.config[d] = spec.min_value;
    } else if (u < 2.0 * options_.corner_prob) {
      t.config[d] = spec.max_value;
    } else {
      t.config[d] = rng_.Uniform(spec.min_value, spec.max_value);
    }
  }
  t.config = space.Clamp(t.config);
  return t;
}

namespace {

/// One shrinking pass: proposes simpler variants in a fixed order and
/// returns the first accepted one (or nullopt at a local minimum).
bool TryShrinkStep(const WorkloadTuple& cur,
                   const std::function<bool(const WorkloadTuple&)>& still_fails,
                   int* probes_left, WorkloadTuple* out) {
  const auto& space = spark::KnobSpace::Spark16();
  spark::Config defaults = space.DefaultConfig();

  auto probe = [&](const WorkloadTuple& candidate) {
    if (*probes_left <= 0) return false;
    --*probes_left;
    if (!still_fails(candidate)) return false;
    *out = candidate;
    return true;
  };

  // Knob deltas back to their defaults, one at a time.
  for (size_t d = 0; d < space.size() && d < cur.config.size(); ++d) {
    if (cur.config[d] == defaults[d]) continue;
    WorkloadTuple v = cur;
    v.config[d] = defaults[d];
    if (probe(v)) return true;
  }
  // Smaller data (rows scale with size so the tuple stays consistent).
  if (cur.data.size_mb > 2.0) {
    WorkloadTuple v = cur;
    v.data.size_mb = std::max(1.0, cur.data.size_mb / 2.0);
    v.data.num_rows = std::max<long>(1, cur.data.num_rows / 2);
    if (probe(v)) return true;
  }
  // Fewer iterations.
  if (cur.data.iterations > 1) {
    WorkloadTuple v = cur;
    v.data.iterations = std::max(1, cur.data.iterations / 2);
    if (probe(v)) return true;
  }
  // The smallest cluster.
  if (cur.env.name != spark::ClusterEnv::ClusterA().name) {
    WorkloadTuple v = cur;
    v.env = spark::ClusterEnv::ClusterA();
    if (probe(v)) return true;
  }
  return false;
}

}  // namespace

WorkloadTuple ShrinkTuple(
    const WorkloadTuple& failing,
    const std::function<bool(const WorkloadTuple&)>& still_fails,
    int max_probes) {
  WorkloadTuple cur = failing;
  int probes_left = max_probes;
  WorkloadTuple next;
  while (probes_left > 0 && TryShrinkStep(cur, still_fails, &probes_left, &next)) {
    cur = next;
  }
  return cur;
}

PropertyOutcome CheckTupleProperty(
    const std::string& property_name, size_t cases, const GenOptions& options,
    uint64_t seed,
    const std::function<std::string(const WorkloadTuple&)>& check) {
  PropertyOutcome outcome;
  TupleGenerator gen(options, seed);
  for (size_t i = 0; i < cases; ++i) {
    WorkloadTuple t = gen.Next();
    std::string msg = check(t);
    ++outcome.cases_run;
    if (msg.empty()) continue;

    WorkloadTuple minimal = ShrinkTuple(
        t, [&](const WorkloadTuple& v) { return !check(v).empty(); });
    std::string minimal_msg = check(minimal);

    std::ostringstream os;
    os << "property '" << property_name << "' failed at case " << i << "/"
       << cases << "\n"
       << "  replay with: LITE_TEST_SEED=" << seed << "\n"
       << "  raw tuple:    " << t.Describe() << "\n"
       << "  raw failure:  " << msg << "\n"
       << "  minimal tuple: " << minimal.Describe() << "\n"
       << "  minimal failure: " << minimal_msg << "\n";
    outcome.ok = false;
    outcome.report = os.str();

    if (const char* artifact = std::getenv("LITE_SEED_ARTIFACT")) {
      std::ofstream f(artifact, std::ios::app);
      if (f) f << outcome.report;
    }
    return outcome;
  }
  return outcome;
}

}  // namespace lite::testkit
