#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/logging.h"

namespace lite {

Tensor::Tensor(std::vector<size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  size_t n = 1;
  for (size_t d : shape_) n *= d;
  LITE_CHECK(n == data_.size()) << "shape/data mismatch";
}

Tensor Tensor::Zeros(std::vector<size_t> shape) {
  size_t n = 1;
  for (size_t d : shape) n *= d;
  return Tensor(std::move(shape), std::vector<float>(n, 0.0f));
}

Tensor Tensor::Ones(std::vector<size_t> shape) { return Full(std::move(shape), 1.0f); }

Tensor Tensor::Full(std::vector<size_t> shape, float v) {
  size_t n = 1;
  for (size_t d : shape) n *= d;
  return Tensor(std::move(shape), std::vector<float>(n, v));
}

Tensor Tensor::Randn(std::vector<size_t> shape, Rng* rng, float stddev) {
  Tensor t = Zeros(std::move(shape));
  for (size_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng->Gaussian(0.0, stddev));
  }
  return t;
}

Tensor Tensor::FromVector(const std::vector<double>& v) {
  Tensor t(v.size());
  for (size_t i = 0; i < v.size(); ++i) t[i] = static_cast<float>(v[i]);
  return t;
}

void Tensor::Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::Add(const Tensor& other) {
  LITE_CHECK(SameShape(other)) << "Add shape mismatch " << ShapeString() << " vs "
                               << other.ShapeString();
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::Axpy(float alpha, const Tensor& other) {
  LITE_CHECK(numel() == other.numel()) << "Axpy size mismatch";
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Tensor::Scale(float alpha) {
  for (float& x : data_) x *= alpha;
}

float Tensor::Sum() const { return std::accumulate(data_.begin(), data_.end(), 0.0f); }

float Tensor::Max() const {
  LITE_CHECK(!data_.empty()) << "Max of empty tensor";
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::Norm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(s));
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "Tensor[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << "x";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

void MatMul(const Tensor& a, const Tensor& b, Tensor* c) {
  LITE_CHECK(a.rank() == 2 && b.rank() == 2) << "MatMul needs 2D operands";
  size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  LITE_CHECK(b.shape()[0] == k) << "MatMul inner dim mismatch";
  LITE_CHECK(c->rank() == 2 && c->shape()[0] == m && c->shape()[1] == n)
      << "MatMul output shape mismatch";
  c->Zero();
  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = c->data();
  for (size_t i = 0; i < m; ++i) {
    for (size_t p = 0; p < k; ++p) {
      float av = ap[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = bp + p * n;
      float* crow = cp + i * n;
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void MatMulTransposeAAccum(const Tensor& a, const Tensor& b, Tensor* c) {
  // a: m x k, b: m x n, c += a^T b : k x n
  size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  LITE_CHECK(b.shape()[0] == m && c->shape()[0] == k && c->shape()[1] == n)
      << "MatMulTransposeAAccum shape mismatch";
  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = c->data();
  for (size_t i = 0; i < m; ++i) {
    for (size_t p = 0; p < k; ++p) {
      float av = ap[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = bp + i * n;
      float* crow = cp + p * n;
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void MatMulTransposeBAccum(const Tensor& a, const Tensor& b, Tensor* c) {
  // a: m x k, b: n x k, c += a b^T : m x n
  size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[0];
  LITE_CHECK(b.shape()[1] == k && c->shape()[0] == m && c->shape()[1] == n)
      << "MatMulTransposeBAccum shape mismatch";
  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = c->data();
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      const float* arow = ap + i * k;
      const float* brow = bp + j * k;
      float s = 0.0f;
      for (size_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      cp[i * n + j] += s;
    }
  }
}

}  // namespace lite
