// Reverse-mode automatic differentiation over Tensor values.
//
// The graph is dynamic: each op allocates a Var node holding its output value,
// its gradient buffer, its parents, and a closure that propagates the output
// gradient to the parents. Backward() topologically sorts the graph reachable
// from a scalar loss and runs the closures in reverse order.
//
// The op vocabulary is exactly what the models in this repository need:
// dense layers (MatMul/AddBias), activations, TextCNN (Conv1D + max pooling),
// GCN (constant-matrix products + column max), LSTM gates (row slicing,
// elementwise arithmetic), single-head attention (scaled dot product +
// row softmax), embedding lookup, losses (MSE, BCE-with-logits), and the
// gradient-reversal operator used by the adversarial Adaptive Model Update.
#ifndef LITE_TENSOR_AUTODIFF_H_
#define LITE_TENSOR_AUTODIFF_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace lite {

class Var;
using VarPtr = std::shared_ptr<Var>;

/// A node in the autodiff graph.
class Var {
 public:
  Tensor value;
  Tensor grad;  ///< same shape as value; lazily zeroed before backward.
  bool requires_grad = false;
  std::vector<VarPtr> parents;
  /// Propagates this->grad into parents' grads. Null for leaves.
  std::function<void()> backward_fn;

  explicit Var(Tensor v, bool req = false)
      : value(std::move(v)), requires_grad(req) {
    grad = Tensor::Zeros(value.shape());
  }

  size_t numel() const { return value.numel(); }
  /// Scalar accessor; asserts numel()==1 in debug builds.
  float scalar() const { return value[0]; }
};

/// Leaf holding trainable parameters.
VarPtr Param(Tensor t);
/// Leaf holding non-trainable input data.
VarPtr Input(Tensor t);

/// Runs reverse-mode accumulation from scalar `root` (numel must be 1).
/// Gradients of all reachable nodes are zeroed first, then root's grad is
/// seeded with 1.
void Backward(const VarPtr& root);

namespace ops {

/// C = A * B (2D).
VarPtr MatMul(const VarPtr& a, const VarPtr& b);
/// C = A * B^T (2D); used by attention score computation.
VarPtr MatMulTransB(const VarPtr& a, const VarPtr& b);
/// Same-shape elementwise sum.
VarPtr Add(const VarPtr& a, const VarPtr& b);
/// Same-shape elementwise difference a - b.
VarPtr Sub(const VarPtr& a, const VarPtr& b);
/// Same-shape elementwise product (Hadamard).
VarPtr Mul(const VarPtr& a, const VarPtr& b);
/// Adds a rank-1 bias to every row of a 2D tensor (broadcast), or
/// elementwise when `a` is rank-1.
VarPtr AddBias(const VarPtr& a, const VarPtr& bias);
/// Multiplies by a compile-time constant.
VarPtr Scale(const VarPtr& a, float alpha);

VarPtr Relu(const VarPtr& a);
VarPtr Sigmoid(const VarPtr& a);
VarPtr Tanh(const VarPtr& a);

/// Concatenates rank-1 tensors into one rank-1 tensor.
VarPtr Concat(const std::vector<VarPtr>& parts);
/// Stacks equal-length rank-1 tensors into a rank-2 tensor (row i is
/// parts[i]); the batched-inference building block.
VarPtr StackRows(const std::vector<VarPtr>& parts);
/// Extracts row r of a 2D tensor as a 1 x C matrix.
VarPtr Row(const VarPtr& a, size_t r);
/// Extracts columns [start, start+len) of a 2D tensor (LSTM gate slicing).
VarPtr SliceCols(const VarPtr& a, size_t start, size_t len);
/// Reshapes without copying semantics (value copied; gradient routed back).
VarPtr Reshape(const VarPtr& a, std::vector<size_t> shape);

/// 1-D convolution over the token axis. `input` is D x N (embedding dim x
/// positions), `weight` is I x (D*w) (I kernels of width w), `bias` is
/// rank-1 length I. Output is I x (N - w + 1). N must be >= w.
VarPtr Conv1D(const VarPtr& input, const VarPtr& weight, const VarPtr& bias,
              size_t width);
/// Max over each row of a 2D tensor -> rank-1 length R (per-kernel pooling).
VarPtr MaxOverCols(const VarPtr& a);
/// Max over each column of a 2D tensor -> rank-1 length C (GCN readout).
VarPtr MaxOverRows(const VarPtr& a);
/// Mean over rows -> rank-1 length C (transformer pooling).
VarPtr MeanOverRows(const VarPtr& a);

/// Row-wise softmax of a 2D tensor.
VarPtr SoftmaxRows(const VarPtr& a);

/// Gathers embedding rows: `table` is V x D, ids are token indices; output is
/// D x N when `columns_are_tokens`, else N x D. Out-of-range ids are clamped.
VarPtr EmbeddingLookup(const VarPtr& table, const std::vector<int>& ids,
                       bool columns_are_tokens);

/// Scalar MSE: mean_i (a_i - target_i)^2. `target` is constant data.
VarPtr MseLoss(const VarPtr& pred, const Tensor& target);
/// Scalar binary cross-entropy with logits: target label in {0,1}.
VarPtr BceWithLogitsLoss(const VarPtr& logit, float label);
/// Sum of squares of a (L2 regularizer building block).
VarPtr SquareSum(const VarPtr& a);

/// Identity forward; multiplies gradient by -lambda on the way back
/// (Ganin & Lempitsky's gradient-reversal layer, used to implement the
/// minimax objective of Eq. 8 in a single backward pass).
VarPtr GradReverse(const VarPtr& a, float lambda);

}  // namespace ops
}  // namespace lite

#endif  // LITE_TENSOR_AUTODIFF_H_
