// Generic quantized kernels + dispatch + shared GEMM driver.
//
// This translation unit is compiled with -ffp-contract=off (see
// src/tensor/CMakeLists.txt): the generic half dot must perform exactly the
// multiply-then-add the AVX2 kernel performs, so the compiler must not fuse
// them into FMAs.
#include "tensor/qkernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "obs/metrics.h"
#include "util/logging.h"

namespace lite::qk {

namespace {

struct QkMetrics {
  obs::Counter* gemm_calls;
  obs::Counter* gemm_rows;

  static const QkMetrics& Get() {
    static const QkMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      return new QkMetrics{
          reg.GetCounter("qk_gemm_calls_total"),
          reg.GetCounter("qk_gemm_rows_total"),
      };
    }();
    return *m;
  }
};

std::atomic<KernelIsa> g_isa{
#if defined(LITE_QK_HAVE_AVX2)
    KernelIsa::kAvx2  // clamped to generic below if the CPU lacks it.
#else
    KernelIsa::kGeneric
#endif
};
std::atomic<bool> g_isa_resolved{false};

std::atomic<QuantMutation> g_mutation{QuantMutation::kNone};

KernelIsa ResolveIsa() {
  if (!g_isa_resolved.load(std::memory_order_acquire)) {
    if (!Avx2KernelAvailable()) {
      g_isa.store(KernelIsa::kGeneric, std::memory_order_relaxed);
    }
    g_isa_resolved.store(true, std::memory_order_release);
  }
  return g_isa.load(std::memory_order_relaxed);
}

}  // namespace

bool Avx2KernelAvailable() {
#if defined(LITE_QK_HAVE_AVX2)
  return detail::Avx2RuntimeSupported();
#else
  return false;
#endif
}

KernelIsa ActiveKernelIsa() { return ResolveIsa(); }

void SetKernelIsaForTest(KernelIsa isa) {
  if (isa == KernelIsa::kAvx2 && !Avx2KernelAvailable()) {
    isa = KernelIsa::kGeneric;
  }
  g_isa.store(isa, std::memory_order_relaxed);
  g_isa_resolved.store(true, std::memory_order_release);
}

void SetQuantMutationForTest(QuantMutation m) {
  g_mutation.store(m, std::memory_order_relaxed);
}

QuantMutation ActiveQuantMutation() {
  return g_mutation.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Half conversions (exact scalar reference; F16C produces the same bits).

float HalfToFloat(uint16_t h) {
  uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  uint32_t exp = (h >> 10) & 0x1Fu;
  uint32_t man = h & 0x3FFu;
  uint32_t bits;
  if (exp == 0) {
    if (man == 0) {
      bits = sign;  // signed zero.
    } else {
      // Subnormal half: renormalize into the fp32 exponent range.
      int shift = 0;
      while (!(man & 0x400u)) {
        man <<= 1;
        ++shift;
      }
      man &= 0x3FFu;
      bits = sign | ((113u - static_cast<uint32_t>(shift)) << 23) | (man << 13);
    }
  } else if (exp == 31) {
    bits = sign | 0x7F800000u | (man << 13);  // inf / NaN.
  } else {
    bits = sign | ((exp + 112u) << 23) | (man << 13);
  }
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

uint16_t FloatToHalf(float f) {
  uint32_t x;
  std::memcpy(&x, &f, sizeof(x));
  uint16_t sign = static_cast<uint16_t>((x >> 16) & 0x8000u);
  uint32_t fexp = (x >> 23) & 0xFFu;
  uint32_t man = x & 0x7FFFFFu;
  if (fexp == 0xFFu) {  // inf / NaN.
    uint16_t payload = man ? static_cast<uint16_t>(0x200u | (man >> 13)) : 0;
    return static_cast<uint16_t>(sign | 0x7C00u | payload);
  }
  int exp = static_cast<int>(fexp) - 127 + 15;
  if (exp >= 31) return static_cast<uint16_t>(sign | 0x7C00u);  // overflow.
  if (exp <= 0) {
    if (exp < -10) return sign;  // underflow to signed zero.
    man |= 0x800000u;            // restore the implicit bit.
    uint32_t shift = static_cast<uint32_t>(14 - exp);  // 14..24.
    uint16_t half = static_cast<uint16_t>(man >> shift);
    uint32_t rem = man & ((1u << shift) - 1u);
    uint32_t midpoint = 1u << (shift - 1);
    if (rem > midpoint || (rem == midpoint && (half & 1u))) ++half;
    return static_cast<uint16_t>(sign | half);
  }
  uint16_t half =
      static_cast<uint16_t>((exp << 10) | static_cast<int>(man >> 13));
  uint32_t rem = man & 0x1FFFu;
  // Round to nearest even; a carry out of the mantissa bumps the exponent,
  // rolling to infinity exactly when it should.
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) ++half;
  return static_cast<uint16_t>(sign | half);
}

// ---------------------------------------------------------------------------
// Quantizers.

void QuantizedRowMatrix::BuildPanels() {
  cols2 = (cols + 1) & ~static_cast<size_t>(1);
  const size_t np = (rows + 7) / 8;
  panels.assign(np * cols2 * 8, 0);
  for (size_t j = 0; j < rows; ++j) {
    const int8_t* src = q.data() + j * cols;
    int16_t* dst = panels.data() + (j / 8) * cols2 * 8;
    const size_t l = j % 8;
    for (size_t c = 0; c < cols; ++c) {
      dst[(c & ~static_cast<size_t>(1)) * 8 + l * 2 + (c & 1)] = src[c];
    }
  }
}

QuantizedRowMatrix QuantizeRowsInt8(const float* w, size_t rows, size_t cols) {
  QuantizedRowMatrix out;
  out.rows = rows;
  out.cols = cols;
  out.q.resize(rows * cols);
  out.scale.resize(rows);
  out.zero_point.resize(rows);
  for (size_t r = 0; r < rows; ++r) {
    const float* row = w + r * cols;
    float mn = row[0], mx = row[0];
    for (size_t c = 0; c < cols; ++c) {
      LITE_CHECK(std::isfinite(row[c])) << "QuantizeRowsInt8: non-finite weight";
      mn = std::min(mn, row[c]);
      mx = std::max(mx, row[c]);
    }
    float scale;
    int32_t zp;
    if (mx - mn < 1e-20f) {
      // Constant row (bias-like). Pick a scale that represents the value.
      scale = std::max(std::fabs(mn) / 127.0f, 1e-12f);
      zp = 0;
    } else {
      scale = (mx - mn) / 254.0f;
      zp = static_cast<int32_t>(std::lrintf(-127.0f - mn / scale));
    }
    out.scale[r] = scale;
    out.zero_point[r] = zp;
    int8_t* qrow = out.q.data() + r * cols;
    for (size_t c = 0; c < cols; ++c) {
      long code = std::lrintf(row[c] / scale) + zp;
      qrow[c] = static_cast<int8_t>(std::clamp<long>(code, -127, 127));
    }
  }
  out.BuildPanels();
  return out;
}

HalfMatrix PackHalf(const float* w, size_t rows, size_t cols) {
  HalfMatrix out;
  out.rows = rows;
  out.cols = cols;
  out.v.resize(rows * cols);
  for (size_t i = 0; i < rows * cols; ++i) out.v[i] = FloatToHalf(w[i]);
  return out;
}

// ---------------------------------------------------------------------------
// Generic dot kernels.

namespace detail {

int32_t DotInt8Generic(const int8_t* a, const int8_t* b, size_t n) {
  int32_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return acc;
}

float DotHalfGeneric(const float* x, const uint16_t* w, size_t n) {
  // Fixed 8-lane accumulator: lane l sums elements i with i % 8 == l, full
  // 8-element groups only; the tail is zero-padded into one last group.
  // This is exactly what the AVX2 kernel's vector accumulator does.
  float acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t n8 = n & ~static_cast<size_t>(7);
  for (size_t i = 0; i < n8; i += 8) {
    for (size_t l = 0; l < 8; ++l) {
      acc[l] = acc[l] + x[i + l] * HalfToFloat(w[i + l]);
    }
  }
  if (n8 < n) {
    float xs[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    float ws[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (size_t i = n8; i < n; ++i) {
      xs[i - n8] = x[i];
      ws[i - n8] = HalfToFloat(w[i]);
    }
    for (size_t l = 0; l < 8; ++l) acc[l] = acc[l] + xs[l] * ws[l];
  }
  // Reduction tree mirroring the AVX2 epilogue: 256->128 add, movehl add,
  // then the final pairwise add.
  float s4_0 = acc[0] + acc[4];
  float s4_1 = acc[1] + acc[5];
  float s4_2 = acc[2] + acc[6];
  float s4_3 = acc[3] + acc[7];
  float s2_0 = s4_0 + s4_2;
  float s2_1 = s4_1 + s4_3;
  return s2_0 + s2_1;
}

}  // namespace detail

int32_t DotInt8(const int8_t* a, const int8_t* b, size_t n) {
#if defined(LITE_QK_HAVE_AVX2)
  if (ResolveIsa() == KernelIsa::kAvx2) return detail::DotInt8Avx2(a, b, n);
#endif
  return detail::DotInt8Generic(a, b, n);
}

float DotHalf(const float* x, const uint16_t* w, size_t n) {
#if defined(LITE_QK_HAVE_AVX2)
  if (ResolveIsa() == KernelIsa::kAvx2) return detail::DotHalfAvx2(x, w, n);
#endif
  return detail::DotHalfGeneric(x, w, n);
}

// ---------------------------------------------------------------------------
// GEMM drivers. The batch/output loops and the fp32 epilogue are shared
// scalar code; only the inner dots dispatch, so ISA parity reduces to dot
// parity.

namespace {

float MaxAbsGeneric(const float* row, size_t cols) {
  float maxabs = 0.0f;
  for (size_t c = 0; c < cols; ++c) {
    maxabs = std::max(maxabs, std::fabs(row[c]));
  }
  return maxabs;
}

void QuantizeActRowGeneric(const float* row, size_t cols, float inv, int8_t* q,
                           int32_t* rowsum) {
  int32_t sum = 0;
  for (size_t c = 0; c < cols; ++c) {
    long code = std::lrintf(row[c] * inv);
    int8_t v = static_cast<int8_t>(std::clamp<long>(code, -127, 127));
    q[c] = v;
    sum += v;
  }
  *rowsum = sum;
}

}  // namespace

void GemmInt8(const float* x, size_t batch, const QuantizedRowMatrix& w,
              const float* bias, float* y, bool relu, Arena* arena) {
  const size_t cols = w.cols;
  const size_t rows = w.rows;
  if (obs::Enabled()) {
    const QkMetrics& m = QkMetrics::Get();
    m.gemm_calls->Inc();
    m.gemm_rows->Inc(batch);
  }
  const QuantMutation mutation = ActiveQuantMutation();
  // Resolve the ISA once per GEMM: the per-dot dispatch (atomic load +
  // branch) is measurable against these small matrices.
#if defined(LITE_QK_HAVE_AVX2)
  const bool use_avx2 = ResolveIsa() == KernelIsa::kAvx2;
#endif

  float* sx = arena->AllocFloats(batch);
  for (size_t b = 0; b < batch; ++b) {
    const float* row = x + b * cols;
#if defined(LITE_QK_HAVE_AVX2)
    const float maxabs =
        use_avx2 ? detail::MaxAbsAvx2(row, cols) : MaxAbsGeneric(row, cols);
#else
    const float maxabs = MaxAbsGeneric(row, cols);
#endif
    sx[b] = maxabs > 0.0f ? maxabs / 127.0f : 1.0f;
  }
  if (mutation == QuantMutation::kStaleActScale) {
    // Bug under test: row b quantized with row b-1's scale.
    for (size_t b = batch; b-- > 1;) sx[b] = sx[b - 1];
  }

#if defined(LITE_QK_HAVE_AVX2)
  if (use_avx2 && !w.panels.empty() &&
      (mutation == QuantMutation::kNone ||
       mutation == QuantMutation::kStaleActScale)) {
    // Panel path: quantize each activation row straight to int16 codes and
    // run the output-stationary panel GEMV — no int8 narrowing, no
    // horizontal reductions. Same codes, exact int32 sums, so the result is
    // bit-identical to the dot path. (The stale-scale mutation only
    // perturbs sx above and shares it; the other mutants take the
    // reference loop below — they don't need speed.)
    int16_t* a16 = reinterpret_cast<int16_t*>(
        arena->AllocInt8(w.cols2 * sizeof(int16_t)));
    int32_t* acc = arena->AllocInt32(rows);
    for (size_t b = 0; b < batch; ++b) {
      int32_t rsum;
      detail::QuantizeActRowToInt16Avx2(x + b * cols, cols, w.cols2,
                                        1.0f / sx[b], a16, &rsum);
      detail::GemmInt8PanelsAvx2(a16, w, acc);
      float* yrow = y + b * rows;
      for (size_t j = 0; j < rows; ++j) {
        float v = sx[b] * w.scale[j] *
                  static_cast<float>(acc[j] - w.zero_point[j] * rsum);
        if (bias != nullptr) v = bias[j] + v;
        if (relu) v = v > 0.0f ? v : 0.0f;
        yrow[j] = v;
      }
    }
    return;
  }
#endif

  int8_t* xq = arena->AllocInt8(batch * cols);
  int32_t* rowsum = arena->AllocInt32(batch);
  for (size_t b = 0; b < batch; ++b) {
    const float* row = x + b * cols;
    int8_t* qrow = xq + b * cols;
    const float inv = 1.0f / sx[b];
#if defined(LITE_QK_HAVE_AVX2)
    if (use_avx2) {
      detail::QuantizeActRowAvx2(row, cols, inv, qrow, &rowsum[b]);
    } else {
      QuantizeActRowGeneric(row, cols, inv, qrow, &rowsum[b]);
    }
#else
    QuantizeActRowGeneric(row, cols, inv, qrow, &rowsum[b]);
#endif
  }

#if defined(LITE_QK_HAVE_AVX2)
  if (mutation == QuantMutation::kNone ||
      mutation == QuantMutation::kStaleActScale) {
    // Hot path: all of this GEMM's dots for one activation row in a single
    // multi-row kernel call (the stale-scale mutation only perturbs sx
    // above, so it shares this path). kDropZeroPoint / kTransposedTile fall
    // through to the reference loop below — mutants don't need speed.
    int32_t* acc = arena->AllocInt32(rows);
    for (size_t b = 0; b < batch; ++b) {
      const int8_t* qrow = xq + b * cols;
      float* yrow = y + b * rows;
      if (use_avx2) {
        detail::DotInt8MultiAvx2(qrow, w.q.data(), rows, cols, acc);
      } else {
        for (size_t j = 0; j < rows; ++j) {
          acc[j] = detail::DotInt8Generic(qrow, w.q.data() + j * cols, cols);
        }
      }
      for (size_t j = 0; j < rows; ++j) {
        int32_t corr = w.zero_point[j] * rowsum[b];
        float v = sx[b] * w.scale[j] * static_cast<float>(acc[j] - corr);
        if (bias != nullptr) v = bias[j] + v;
        if (relu) v = v > 0.0f ? v : 0.0f;
        yrow[j] = v;
      }
    }
    return;
  }
#endif

  const size_t tile = std::min<size_t>(8, std::min(rows, cols));
  int8_t* wscratch =
      mutation == QuantMutation::kTransposedTile ? arena->AllocInt8(cols) : nullptr;

  for (size_t b = 0; b < batch; ++b) {
    const int8_t* qrow = xq + b * cols;
    float* yrow = y + b * rows;
    for (size_t j = 0; j < rows; ++j) {
      const int8_t* wrow = w.q.data() + j * cols;
      if (mutation == QuantMutation::kTransposedTile && j < tile) {
        // Bug under test: the leading 8x8 weight tile is read transposed.
        std::memcpy(wscratch, wrow, cols);
        for (size_t i = 0; i < tile; ++i) wscratch[i] = w.q[i * cols + j];
        wrow = wscratch;
      }
#if defined(LITE_QK_HAVE_AVX2)
      int32_t acc = use_avx2 ? detail::DotInt8Avx2(qrow, wrow, cols)
                             : detail::DotInt8Generic(qrow, wrow, cols);
#else
      int32_t acc = detail::DotInt8Generic(qrow, wrow, cols);
#endif
      int32_t corr = mutation == QuantMutation::kDropZeroPoint
                         ? 0
                         : w.zero_point[j] * rowsum[b];
      float v = sx[b] * w.scale[j] * static_cast<float>(acc - corr);
      if (bias != nullptr) v = bias[j] + v;
      if (relu) v = v > 0.0f ? v : 0.0f;
      yrow[j] = v;
    }
  }
}

void GemmHalf(const float* x, size_t batch, const HalfMatrix& w,
              const float* bias, float* y, bool relu) {
  const size_t cols = w.cols;
  const size_t rows = w.rows;
  if (obs::Enabled()) {
    const QkMetrics& m = QkMetrics::Get();
    m.gemm_calls->Inc();
    m.gemm_rows->Inc(batch);
  }
#if defined(LITE_QK_HAVE_AVX2)
  const bool use_avx2 = ResolveIsa() == KernelIsa::kAvx2;
#endif
  for (size_t b = 0; b < batch; ++b) {
    const float* xrow = x + b * cols;
    float* yrow = y + b * rows;
#if defined(LITE_QK_HAVE_AVX2)
    if (use_avx2) {
      // All dots for this activation row in one multi-row call (each output
      // keeps the fixed accumulator/reduction order), then bias/relu in
      // place.
      detail::DotHalfMultiAvx2(xrow, w.v.data(), rows, cols, yrow);
      for (size_t j = 0; j < rows; ++j) {
        float v = yrow[j];
        if (bias != nullptr) v = bias[j] + v;
        if (relu) v = v > 0.0f ? v : 0.0f;
        yrow[j] = v;
      }
      continue;
    }
#endif
    for (size_t j = 0; j < rows; ++j) {
      const uint16_t* wrow = w.v.data() + j * cols;
      float v = detail::DotHalfGeneric(xrow, wrow, cols);
      if (bias != nullptr) v = bias[j] + v;
      if (relu) v = v > 0.0f ? v : 0.0f;
      yrow[j] = v;
    }
  }
}

}  // namespace lite::qk
