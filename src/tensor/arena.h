// Bump-pointer arena for the per-request inference scratch.
//
// The quantized scoring path (lite/qnecs.h) evaluates thousands of
// candidates per recommendation; each evaluation needs a handful of
// short-lived buffers (quantized activations, GEMM outputs). Allocating
// them from the heap per candidate is measurable churn, so the scoring
// loops grab a thread-local Arena, Reset() it per candidate, and bump-
// allocate: allocation is a pointer increment, deallocation is free.
#ifndef LITE_TENSOR_ARENA_H_
#define LITE_TENSOR_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace lite::qk {

class Arena {
 public:
  /// `initial_bytes` sizes the first block; further blocks double.
  explicit Arena(size_t initial_bytes = 1 << 16);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// 64-byte-aligned storage, valid until the next Reset(). Never returns
  /// nullptr (aborts on OOM like operator new).
  void* Allocate(size_t bytes);

  float* AllocFloats(size_t n) {
    return static_cast<float*>(Allocate(n * sizeof(float)));
  }
  int8_t* AllocInt8(size_t n) {
    return static_cast<int8_t*>(Allocate(n));
  }
  int32_t* AllocInt32(size_t n) {
    return static_cast<int32_t*>(Allocate(n * sizeof(int32_t)));
  }
  uint16_t* AllocUint16(size_t n) {
    return static_cast<uint16_t*>(Allocate(n * sizeof(uint16_t)));
  }

  /// Frees everything at once; block capacity is retained, so a steady-state
  /// Reset/Allocate cycle stops touching the heap entirely.
  void Reset();

  /// Bytes handed out since the last Reset (including alignment padding).
  size_t bytes_in_use() const { return in_use_; }
  /// Largest bytes_in_use observed over the arena's lifetime.
  size_t high_water() const { return high_water_; }
  /// Total capacity across retained blocks.
  size_t capacity() const;

  /// Per-thread scratch arena. Callers Reset() it at the start of each unit
  /// of work; nested use within one unit shares the same allocation stream.
  static Arena* ThreadLocal();

 private:
  struct Block {
    std::unique_ptr<unsigned char[]> data;
    unsigned char* base = nullptr;  ///< 64-byte-aligned start within data.
    size_t size = 0;                ///< usable bytes from base.
    size_t used = 0;
  };

  Block& GrowFor(size_t bytes);

  std::vector<Block> blocks_;
  size_t active_ = 0;  ///< index of the block currently bumping.
  size_t in_use_ = 0;
  size_t high_water_ = 0;
};

}  // namespace lite::qk

#endif  // LITE_TENSOR_ARENA_H_
