#include "tensor/arena.h"

#include <algorithm>

#include "obs/metrics.h"

namespace lite::qk {

namespace {
constexpr size_t kAlign = 64;

// Arena observability (docs/OBSERVABILITY.md catalog). The high-water gauge
// is fleet-max over arenas: each arena publishes its own lifetime peak and
// the gauge keeps the largest, which is the number capacity planning wants.
struct ArenaMetrics {
  obs::Counter* allocs;
  obs::Counter* bytes;
  obs::Gauge* high_water;

  static const ArenaMetrics& Get() {
    static const ArenaMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      return new ArenaMetrics{
          reg.GetCounter("qk_arena_allocs_total"),
          reg.GetCounter("qk_arena_bytes_total"),
          reg.GetGauge("qk_arena_high_water_bytes"),
      };
    }();
    return *m;
  }
};
}  // namespace

namespace {
// operator new[] only guarantees 16-byte alignment for char arrays, so each
// block over-allocates by kAlign and bumps from an aligned base pointer.
unsigned char* AlignedBase(unsigned char* raw) {
  const uintptr_t p = reinterpret_cast<uintptr_t>(raw);
  return raw + ((kAlign - p % kAlign) % kAlign);
}
}  // namespace

Arena::Arena(size_t initial_bytes) {
  Block b;
  b.size = std::max<size_t>(initial_bytes, kAlign);
  b.data = std::make_unique<unsigned char[]>(b.size + kAlign);
  b.base = AlignedBase(b.data.get());
  blocks_.push_back(std::move(b));
}

Arena::Block& Arena::GrowFor(size_t bytes) {
  // Reuse a retained block if one is big enough; otherwise double.
  for (size_t i = active_ + 1; i < blocks_.size(); ++i) {
    if (blocks_[i].size >= bytes) {
      std::swap(blocks_[active_ + 1], blocks_[i]);
      ++active_;
      return blocks_[active_];
    }
  }
  Block b;
  b.size = std::max(blocks_[active_].size * 2, bytes);
  b.data = std::make_unique<unsigned char[]>(b.size + kAlign);
  b.base = AlignedBase(b.data.get());
  blocks_.insert(blocks_.begin() + static_cast<long>(active_) + 1,
                 std::move(b));
  ++active_;
  return blocks_[active_];
}

void* Arena::Allocate(size_t bytes) {
  if (bytes == 0) bytes = kAlign;
  bytes = (bytes + kAlign - 1) & ~(kAlign - 1);
  Block* b = &blocks_[active_];
  size_t aligned = (b->used + kAlign - 1) & ~(kAlign - 1);
  if (aligned + bytes > b->size) {
    b = &GrowFor(bytes);
    aligned = 0;
  }
  void* p = b->base + aligned;
  b->used = aligned + bytes;
  in_use_ += bytes;
  if (in_use_ > high_water_) {
    high_water_ = in_use_;
    if (obs::Enabled()) {
      const ArenaMetrics& m = ArenaMetrics::Get();
      if (static_cast<double>(high_water_) > m.high_water->Value()) {
        m.high_water->Set(static_cast<double>(high_water_));
      }
    }
  }
  if (obs::Enabled()) {
    const ArenaMetrics& m = ArenaMetrics::Get();
    m.allocs->Inc();
    m.bytes->Inc(bytes);
  }
  return p;
}

void Arena::Reset() {
  for (Block& b : blocks_) b.used = 0;
  active_ = 0;
  in_use_ = 0;
}

size_t Arena::capacity() const {
  size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

Arena* Arena::ThreadLocal() {
  thread_local Arena arena(1 << 16);
  return &arena;
}

}  // namespace lite::qk
