// First-order optimizers over lists of parameter Vars.
#ifndef LITE_TENSOR_OPTIMIZER_H_
#define LITE_TENSOR_OPTIMIZER_H_

#include <vector>

#include "tensor/autodiff.h"

namespace lite {

/// Common interface: after Backward() has filled parameter gradients, Step()
/// applies an update and the caller zeroes or rebuilds the graph.
class Optimizer {
 public:
  explicit Optimizer(std::vector<VarPtr> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void Step() = 0;

  /// Zeroes all parameter gradients (gradients of op nodes are re-zeroed by
  /// Backward itself; parameters persist across graphs so need explicit
  /// clearing when accumulating over minibatches).
  void ZeroGrad();

  /// Clips the global gradient norm to `max_norm` (no-op if under).
  void ClipGradNorm(float max_norm);

  const std::vector<VarPtr>& params() const { return params_; }

 protected:
  std::vector<VarPtr> params_;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<VarPtr> params, float lr, float momentum = 0.0f);
  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<VarPtr> params, float lr = 1e-3f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_, beta1_, beta2_, eps_;
  long t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace lite

#endif  // LITE_TENSOR_OPTIMIZER_H_
