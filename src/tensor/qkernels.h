// Quantized GEMM kernels for the NECS inference fast path.
//
// Weights are quantized per output row (per output channel): int8 with an
// asymmetric scale/zero-point pair per row, or IEEE half-precision storage
// decoded exactly to fp32. Activations on the int8 path are dynamically
// quantized per GEMM input row (symmetric). The fp32 epilogue is shared
// scalar code, and the dispatched inner dot products are constructed to be
// bit-identical between the generic fallback and the AVX2 kernels:
//
//  - int8 dots accumulate exactly in int32, so any summation order works;
//  - half dots keep a fixed 8-lane fp32 accumulator with zero-padded tails
//    and a fixed reduction tree, mirrored lane for lane by the generic
//    kernel (no FMA; the kernel translation units are compiled with
//    -ffp-contract=off so the compiler cannot fuse them either).
//
// That bit-identity is enforced by tests/quant_test.cc and the
// DiffQuantizationAccuracy suite, which makes "which ISA ran" unobservable
// in the scores. The exact FP32 autodiff path remains the oracle; these
// kernels are opt-in via QuantBackend (nn/quantized.h).
#ifndef LITE_TENSOR_QKERNELS_H_
#define LITE_TENSOR_QKERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/arena.h"

namespace lite::qk {

// ---------------------------------------------------------------------------
// Runtime ISA dispatch.

enum class KernelIsa { kGeneric = 0, kAvx2 = 1 };

/// True when the AVX2 (+F16C) kernels were compiled in and the CPU reports
/// support at runtime.
bool Avx2KernelAvailable();

/// The ISA the dot kernels will use. Defaults to the best available.
KernelIsa ActiveKernelIsa();

/// Test hook: force an ISA (kAvx2 is ignored when unavailable). The parity
/// suites run every kernel under both values and require bit-identical
/// output.
void SetKernelIsaForTest(KernelIsa isa);

// ---------------------------------------------------------------------------
// Mutation hooks (tools/mutation_check): deliberately-buggy kernel variants
// that the quantization-accuracy suites must catch. Applied in the shared
// generic code so both ISAs exhibit the bug identically.

enum class QuantMutation {
  kNone = 0,
  kDropZeroPoint,    ///< int8 epilogue forgets the zero-point correction.
  kTransposedTile,   ///< first 8x8 weight tile read transposed.
  kStaleActScale,    ///< activation row b quantized with row b-1's scale.
};

void SetQuantMutationForTest(QuantMutation m);
QuantMutation ActiveQuantMutation();

// ---------------------------------------------------------------------------
// Quantized storage.

/// Per-row asymmetric int8 weights, row-major rows x cols (one output
/// channel per row). Dequantized value: scale[r] * (q[r*cols+c] - zero_point[r]).
struct QuantizedRowMatrix {
  size_t rows = 0, cols = 0;
  std::vector<int8_t> q;          ///< rows * cols.
  std::vector<float> scale;       ///< per row, finite and > 0.
  std::vector<int32_t> zero_point;  ///< per row.

  // Derived output-stationary panel packing for the AVX2 GEMM (not
  // serialized; QuantizedSnapshot rebuilds it after load). Panels hold 8
  // output rows of int16-widened codes, column-pair interleaved: entry
  // [p][c*8 + l*2 + (c&1)] is w[p*8+l][c], so one 32-byte load yields 8
  // lanes of (w[j][c], w[j][c+1]) pairs ready for vpmaddwd against a
  // broadcast activation pair. Zero-padded to even cols and to full panels
  // of 8 rows (zero codes contribute exactly zero). Summation order changes
  // relative to the dot kernels, which is fine on the int8 path only:
  // int32 accumulation is exact, so any order is bit-identical.
  std::vector<int16_t> panels;
  size_t cols2 = 0;  ///< cols rounded up to even.

  /// (Re)builds `panels` from `q`. Called by QuantizeRowsInt8 and the
  /// snapshot loader; kernels fall back to the dot path when empty.
  void BuildPanels();
};

/// Quantizes a row-major rows x cols fp32 matrix per row into int8 codes in
/// [-127, 127] (symmetric code range keeps |q| * |zp| products small).
QuantizedRowMatrix QuantizeRowsInt8(const float* w, size_t rows, size_t cols);

/// Row-major IEEE-754 binary16 storage. Decoding half -> float is exact, so
/// fp16 error comes only from the one rounding at pack time.
struct HalfMatrix {
  size_t rows = 0, cols = 0;
  std::vector<uint16_t> v;  ///< rows * cols.
};

HalfMatrix PackHalf(const float* w, size_t rows, size_t cols);

/// Exact binary16 -> binary32 (subnormals and infinities included; NaN
/// payload top bits preserved).
float HalfToFloat(uint16_t h);
/// binary32 -> binary16, round to nearest even, overflow to infinity.
uint16_t FloatToHalf(float f);

// ---------------------------------------------------------------------------
// Kernels. Exposed individually for the parity tests; the layer code in
// nn/quantized.h drives the Gemm entry points.

/// Exact int32 dot of two int8 vectors.
int32_t DotInt8(const int8_t* a, const int8_t* b, size_t n);

/// fp32 dot of an fp32 vector with a half-storage vector using the fixed
/// 8-lane accumulator / reduction tree described above.
float DotHalf(const float* x, const uint16_t* w, size_t n);

/// y (batch x w.rows) = x (batch x w.cols) * dequant(w)^T + bias, with
/// per-input-row dynamic activation quantization. `relu` fuses y = max(y, 0).
/// `bias` may be null (treated as zeros). Scratch comes from `arena` (not
/// Reset here — callers own the reset cadence).
void GemmInt8(const float* x, size_t batch, const QuantizedRowMatrix& w,
              const float* bias, float* y, bool relu, Arena* arena);

/// Same contract with half-storage weights (no activation quantization).
void GemmHalf(const float* x, size_t batch, const HalfMatrix& w,
              const float* bias, float* y, bool relu);

namespace detail {
int32_t DotInt8Generic(const int8_t* a, const int8_t* b, size_t n);
float DotHalfGeneric(const float* x, const uint16_t* w, size_t n);
#if defined(__x86_64__) || defined(__i386__)
// Defined in qkernels_avx2.cc (compiled with -mavx2 -mf16c).
int32_t DotInt8Avx2(const int8_t* a, const int8_t* b, size_t n);
float DotHalfAvx2(const float* x, const uint16_t* w, size_t n);
// Multi-row forms: one activation row against all `rows` consecutive weight
// rows. Per-output math is identical to the single-dot kernels (int8 is
// exact int32 in any order; each half output keeps its own fixed 8-lane
// accumulator and reduction tree) — the win is purely amortization: the
// activation vector is loaded once per 4 weight rows and the call/reduction
// overhead is paid per activation row, not per output.
void DotInt8MultiAvx2(const int8_t* a, const int8_t* w, size_t rows,
                      size_t cols, int32_t* out);
void DotHalfMultiAvx2(const float* x, const uint16_t* w, size_t rows,
                      size_t cols, float* out);
// Vectorized pieces of the dynamic activation quantization in GemmInt8.
// Bit-identical to the scalar loops: max/fabs are order-independent on
// finite floats, and _mm256_cvtps_epi32 rounds to nearest-even exactly like
// lrintf under the default rounding mode.
float MaxAbsAvx2(const float* x, size_t n);
void QuantizeActRowAvx2(const float* x, size_t n, float inv, int8_t* q,
                        int32_t* rowsum);
// Same quantization but emitting int16-widened codes (zero-padded out to
// n2 >= n) for the panel GEMM below.
void QuantizeActRowToInt16Avx2(const float* x, size_t n, size_t n2, float inv,
                               int16_t* q, int32_t* rowsum);
// Output-stationary GEMV over w.panels for one int16-widened activation
// row: out[j] = exact int32 dot of row j, no horizontal reductions.
// Requires w.BuildPanels() to have run.
void GemmInt8PanelsAvx2(const int16_t* a16, const QuantizedRowMatrix& w,
                        int32_t* out);
bool Avx2RuntimeSupported();
#endif
}  // namespace detail

}  // namespace lite::qk

#endif  // LITE_TENSOR_QKERNELS_H_
