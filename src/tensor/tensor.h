// Dense float tensor used as the value/grad storage of the autodiff graph.
//
// Shapes are small (the NECS model is a few thousand parameters per layer),
// so the implementation favours clarity over SIMD heroics; matmul is cache
// blocked enough for the workloads in this repository.
#ifndef LITE_TENSOR_TENSOR_H_
#define LITE_TENSOR_TENSOR_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/rng.h"

namespace lite {

/// A row-major dense tensor of floats with rank 1 or 2 (the networks in this
/// repository only need vectors and matrices; higher-rank inputs are stored
/// as matrices, e.g. a token-embedding matrix is D x N).
class Tensor {
 public:
  Tensor() = default;

  /// Rank-1 tensor of length n, zero-filled.
  explicit Tensor(size_t n) : shape_{n}, data_(n, 0.0f) {}

  /// Rank-2 tensor rows x cols, zero-filled.
  Tensor(size_t rows, size_t cols)
      : shape_{rows, cols}, data_(rows * cols, 0.0f) {}

  /// From explicit data; `shape` must multiply to data.size().
  Tensor(std::vector<size_t> shape, std::vector<float> data);

  static Tensor Zeros(std::vector<size_t> shape);
  static Tensor Ones(std::vector<size_t> shape);
  static Tensor Full(std::vector<size_t> shape, float v);
  /// Gaussian init with the given stddev (e.g. Glorot computed by caller).
  static Tensor Randn(std::vector<size_t> shape, Rng* rng, float stddev);
  /// Row vector from std::vector<double> (feature vectors arrive as double).
  static Tensor FromVector(const std::vector<double>& v);

  size_t rank() const { return shape_.size(); }
  const std::vector<size_t>& shape() const { return shape_; }
  size_t numel() const { return data_.size(); }
  size_t rows() const { return shape_.empty() ? 0 : shape_[0]; }
  size_t cols() const { return rank() == 2 ? shape_[1] : (rank() == 1 ? shape_[0] : 0); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& operator[](size_t i) { return data_[i]; }
  float operator[](size_t i) const { return data_[i]; }

  /// 2D element access (row-major). Undefined for rank-1 tensors.
  float& at(size_t r, size_t c) { return data_[r * shape_[1] + c]; }
  float at(size_t r, size_t c) const { return data_[r * shape_[1] + c]; }

  void Fill(float v);
  void Zero() { Fill(0.0f); }

  /// Elementwise in-place accumulate; shapes must match exactly.
  void Add(const Tensor& other);
  /// this += alpha * other.
  void Axpy(float alpha, const Tensor& other);
  void Scale(float alpha);

  float Sum() const;
  float Max() const;
  /// L2 norm of the flattened tensor.
  float Norm() const;

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Human-readable short description ("Tensor[3x4]").
  std::string ShapeString() const;

 private:
  std::vector<size_t> shape_;
  std::vector<float> data_;
};

/// C = A * B for 2D tensors (rows_a x k) * (k x cols_b). Asserts shapes.
void MatMul(const Tensor& a, const Tensor& b, Tensor* c);
/// C += A^T * B.
void MatMulTransposeAAccum(const Tensor& a, const Tensor& b, Tensor* c);
/// C += A * B^T.
void MatMulTransposeBAccum(const Tensor& a, const Tensor& b, Tensor* c);

}  // namespace lite

#endif  // LITE_TENSOR_TENSOR_H_
