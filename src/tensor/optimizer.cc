#include "tensor/optimizer.h"

#include <cmath>

namespace lite {

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p->grad.Zero();
}

void Optimizer::ClipGradNorm(float max_norm) {
  double total = 0.0;
  for (auto& p : params_) {
    float n = p->grad.Norm();
    total += static_cast<double>(n) * n;
  }
  float norm = static_cast<float>(std::sqrt(total));
  if (norm <= max_norm || norm == 0.0f) return;
  float scale = max_norm / norm;
  for (auto& p : params_) p->grad.Scale(scale);
}

Sgd::Sgd(std::vector<VarPtr> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (auto& p : params_) velocity_.push_back(Tensor::Zeros(p->value.shape()));
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Var& p = *params_[i];
    if (momentum_ > 0.0f) {
      velocity_[i].Scale(momentum_);
      velocity_[i].Axpy(1.0f, p.grad);
      p.value.Axpy(-lr_, velocity_[i]);
    } else {
      p.value.Axpy(-lr_, p.grad);
    }
  }
}

Adam::Adam(std::vector<VarPtr> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (auto& p : params_) {
    m_.push_back(Tensor::Zeros(p->value.shape()));
    v_.push_back(Tensor::Zeros(p->value.shape()));
  }
}

void Adam::Step() {
  ++t_;
  float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Var& p = *params_[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (size_t j = 0; j < p.value.numel(); ++j) {
      float g = p.grad[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g * g;
      float mhat = m[j] / bc1;
      float vhat = v[j] / bc2;
      p.value[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace lite
