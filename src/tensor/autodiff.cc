#include "tensor/autodiff.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace lite {

VarPtr Param(Tensor t) { return std::make_shared<Var>(std::move(t), true); }
VarPtr Input(Tensor t) { return std::make_shared<Var>(std::move(t), false); }

namespace {

/// Creates an op node whose requires_grad is the OR of its parents'.
VarPtr MakeNode(Tensor value, std::vector<VarPtr> parents) {
  bool req = false;
  for (const auto& p : parents) req = req || p->requires_grad;
  auto node = std::make_shared<Var>(std::move(value), req);
  node->parents = std::move(parents);
  return node;
}

void TopoSort(const VarPtr& root, std::vector<Var*>* order) {
  // Iterative postorder DFS to avoid stack overflow on long chains (LSTM).
  std::unordered_set<Var*> visited;
  std::vector<std::pair<Var*, size_t>> stack;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      Var* child = node->parents[next_child].get();
      ++next_child;
      if (child->requires_grad && !visited.count(child)) {
        visited.insert(child);
        stack.emplace_back(child, 0);
      }
    } else {
      order->push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Backward(const VarPtr& root) {
  LITE_CHECK(root->numel() == 1) << "Backward root must be scalar";
  std::vector<Var*> order;
  TopoSort(root, &order);
  // Zero only op-node gradients: leaf parameters accumulate across calls so
  // minibatch training can sum per-instance gradients (Optimizer::ZeroGrad
  // clears them between steps).
  for (Var* v : order) {
    if (v->backward_fn) v->grad.Zero();
  }
  root->grad[0] = 1.0f;
  // Postorder puts root last; run closures from root backwards.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->backward_fn) (*it)->backward_fn();
  }
}

namespace ops {

VarPtr MatMul(const VarPtr& a, const VarPtr& b) {
  LITE_CHECK(a->value.rank() == 2 && b->value.rank() == 2) << "MatMul rank";
  Tensor out(a->value.shape()[0], b->value.shape()[1]);
  lite::MatMul(a->value, b->value, &out);
  auto node = MakeNode(std::move(out), {a, b});
  Var* n = node.get();
  Var* ap = a.get();
  Var* bp = b.get();
  node->backward_fn = [n, ap, bp]() {
    if (ap->requires_grad) MatMulTransposeBAccum(n->grad, bp->value, &ap->grad);
    if (bp->requires_grad) MatMulTransposeAAccum(ap->value, n->grad, &bp->grad);
  };
  return node;
}

VarPtr MatMulTransB(const VarPtr& a, const VarPtr& b) {
  // out = a * b^T, a: m x k, b: n x k -> m x n.
  LITE_CHECK(a->value.rank() == 2 && b->value.rank() == 2) << "MatMulTransB rank";
  size_t m = a->value.shape()[0], k = a->value.shape()[1], nn = b->value.shape()[0];
  LITE_CHECK(b->value.shape()[1] == k) << "MatMulTransB inner dim";
  Tensor out(m, nn);
  MatMulTransposeBAccum(a->value, b->value, &out);
  auto node = MakeNode(std::move(out), {a, b});
  Var* n = node.get();
  Var* ap = a.get();
  Var* bp = b.get();
  node->backward_fn = [n, ap, bp]() {
    // dA += dOut * B ; dB += dOut^T * A.
    if (ap->requires_grad) {
      Tensor tmp(ap->value.shape()[0], ap->value.shape()[1]);
      lite::MatMul(n->grad, bp->value, &tmp);
      ap->grad.Add(tmp);
    }
    if (bp->requires_grad) MatMulTransposeAAccum(n->grad, ap->value, &bp->grad);
  };
  return node;
}

VarPtr Add(const VarPtr& a, const VarPtr& b) {
  LITE_CHECK(a->value.SameShape(b->value)) << "Add shape";
  Tensor out = a->value;
  out.Add(b->value);
  auto node = MakeNode(std::move(out), {a, b});
  Var* n = node.get();
  Var* ap = a.get();
  Var* bp = b.get();
  node->backward_fn = [n, ap, bp]() {
    if (ap->requires_grad) ap->grad.Add(n->grad);
    if (bp->requires_grad) bp->grad.Add(n->grad);
  };
  return node;
}

VarPtr Sub(const VarPtr& a, const VarPtr& b) {
  LITE_CHECK(a->value.SameShape(b->value)) << "Sub shape";
  Tensor out = a->value;
  out.Axpy(-1.0f, b->value);
  auto node = MakeNode(std::move(out), {a, b});
  Var* n = node.get();
  Var* ap = a.get();
  Var* bp = b.get();
  node->backward_fn = [n, ap, bp]() {
    if (ap->requires_grad) ap->grad.Add(n->grad);
    if (bp->requires_grad) bp->grad.Axpy(-1.0f, n->grad);
  };
  return node;
}

VarPtr Mul(const VarPtr& a, const VarPtr& b) {
  LITE_CHECK(a->value.SameShape(b->value)) << "Mul shape";
  Tensor out = a->value;
  for (size_t i = 0; i < out.numel(); ++i) out[i] *= b->value[i];
  auto node = MakeNode(std::move(out), {a, b});
  Var* n = node.get();
  Var* ap = a.get();
  Var* bp = b.get();
  node->backward_fn = [n, ap, bp]() {
    for (size_t i = 0; i < n->grad.numel(); ++i) {
      if (ap->requires_grad) ap->grad[i] += n->grad[i] * bp->value[i];
      if (bp->requires_grad) bp->grad[i] += n->grad[i] * ap->value[i];
    }
  };
  return node;
}

VarPtr AddBias(const VarPtr& a, const VarPtr& bias) {
  LITE_CHECK(bias->value.rank() == 1) << "AddBias bias must be rank-1";
  Tensor out = a->value;
  if (a->value.rank() == 1) {
    LITE_CHECK(a->value.numel() == bias->value.numel()) << "AddBias size";
    out.Add(bias->value);
  } else {
    size_t rows = a->value.shape()[0], cols = a->value.shape()[1];
    LITE_CHECK(bias->value.numel() == cols) << "AddBias col mismatch";
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) out.at(r, c) += bias->value[c];
    }
  }
  auto node = MakeNode(std::move(out), {a, bias});
  Var* n = node.get();
  Var* ap = a.get();
  Var* bp = bias.get();
  node->backward_fn = [n, ap, bp]() {
    if (ap->requires_grad) ap->grad.Add(n->grad);
    if (bp->requires_grad) {
      if (n->grad.rank() == 1) {
        bp->grad.Add(n->grad);
      } else {
        size_t rows = n->grad.shape()[0], cols = n->grad.shape()[1];
        for (size_t r = 0; r < rows; ++r) {
          for (size_t c = 0; c < cols; ++c) bp->grad[c] += n->grad.at(r, c);
        }
      }
    }
  };
  return node;
}

VarPtr Scale(const VarPtr& a, float alpha) {
  Tensor out = a->value;
  out.Scale(alpha);
  auto node = MakeNode(std::move(out), {a});
  Var* n = node.get();
  Var* ap = a.get();
  node->backward_fn = [n, ap, alpha]() {
    if (ap->requires_grad) ap->grad.Axpy(alpha, n->grad);
  };
  return node;
}

namespace {
template <typename Fwd, typename Bwd>
VarPtr Elementwise(const VarPtr& a, Fwd fwd, Bwd dydx) {
  Tensor out = a->value;
  for (size_t i = 0; i < out.numel(); ++i) out[i] = fwd(out[i]);
  auto node = MakeNode(std::move(out), {a});
  Var* n = node.get();
  Var* ap = a.get();
  node->backward_fn = [n, ap, dydx]() {
    if (!ap->requires_grad) return;
    for (size_t i = 0; i < n->grad.numel(); ++i) {
      ap->grad[i] += n->grad[i] * dydx(ap->value[i], n->value[i]);
    }
  };
  return node;
}
}  // namespace

VarPtr Relu(const VarPtr& a) {
  return Elementwise(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

VarPtr Sigmoid(const VarPtr& a) {
  return Elementwise(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

VarPtr Tanh(const VarPtr& a) {
  return Elementwise(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

VarPtr Concat(const std::vector<VarPtr>& parts) {
  LITE_CHECK(!parts.empty()) << "Concat of nothing";
  size_t total = 0;
  for (const auto& p : parts) total += p->numel();
  Tensor out(total);
  size_t off = 0;
  for (const auto& p : parts) {
    std::copy(p->value.vec().begin(), p->value.vec().end(),
              out.vec().begin() + static_cast<long>(off));
    off += p->numel();
  }
  auto node = MakeNode(std::move(out), parts);
  Var* n = node.get();
  std::vector<Var*> raw;
  raw.reserve(parts.size());
  for (const auto& p : parts) raw.push_back(p.get());
  node->backward_fn = [n, raw]() {
    size_t off = 0;
    for (Var* p : raw) {
      if (p->requires_grad) {
        for (size_t i = 0; i < p->numel(); ++i) p->grad[i] += n->grad[off + i];
      }
      off += p->numel();
    }
  };
  return node;
}

VarPtr StackRows(const std::vector<VarPtr>& parts) {
  LITE_CHECK(!parts.empty()) << "StackRows of nothing";
  size_t cols = parts[0]->numel();
  for (const auto& p : parts) {
    LITE_CHECK(p->value.rank() == 1 && p->numel() == cols)
        << "StackRows needs equal-length rank-1 parts";
  }
  Tensor out(parts.size(), cols);
  for (size_t r = 0; r < parts.size(); ++r) {
    std::copy(parts[r]->value.vec().begin(), parts[r]->value.vec().end(),
              out.vec().begin() + static_cast<long>(r * cols));
  }
  auto node = MakeNode(std::move(out), parts);
  Var* n = node.get();
  std::vector<Var*> raw;
  raw.reserve(parts.size());
  for (const auto& p : parts) raw.push_back(p.get());
  node->backward_fn = [n, raw, cols]() {
    for (size_t r = 0; r < raw.size(); ++r) {
      if (!raw[r]->requires_grad) continue;
      for (size_t c = 0; c < cols; ++c) {
        raw[r]->grad[c] += n->grad.at(r, c);
      }
    }
  };
  return node;
}

VarPtr Row(const VarPtr& a, size_t r) {
  LITE_CHECK(a->value.rank() == 2 && r < a->value.shape()[0]) << "Row OOB";
  size_t cols = a->value.shape()[1];
  Tensor out(1, cols);
  for (size_t c = 0; c < cols; ++c) out.at(0, c) = a->value.at(r, c);
  auto node = MakeNode(std::move(out), {a});
  Var* n = node.get();
  Var* ap = a.get();
  node->backward_fn = [n, ap, r, cols]() {
    if (!ap->requires_grad) return;
    for (size_t c = 0; c < cols; ++c) ap->grad.at(r, c) += n->grad.at(0, c);
  };
  return node;
}

VarPtr SliceCols(const VarPtr& a, size_t start, size_t len) {
  LITE_CHECK(a->value.rank() == 2) << "SliceCols rank";
  size_t rows = a->value.shape()[0], cols = a->value.shape()[1];
  LITE_CHECK(start + len <= cols) << "SliceCols OOB";
  Tensor out(rows, len);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < len; ++c) out.at(r, c) = a->value.at(r, start + c);
  }
  auto node = MakeNode(std::move(out), {a});
  Var* n = node.get();
  Var* ap = a.get();
  node->backward_fn = [n, ap, start, len, rows]() {
    if (!ap->requires_grad) return;
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < len; ++c) {
        ap->grad.at(r, start + c) += n->grad.at(r, c);
      }
    }
  };
  return node;
}

VarPtr Reshape(const VarPtr& a, std::vector<size_t> shape) {
  size_t n = 1;
  for (size_t d : shape) n *= d;
  LITE_CHECK(n == a->numel()) << "Reshape numel mismatch";
  Tensor out(std::move(shape), a->value.vec());
  auto node = MakeNode(std::move(out), {a});
  Var* nd = node.get();
  Var* ap = a.get();
  node->backward_fn = [nd, ap]() {
    if (!ap->requires_grad) return;
    for (size_t i = 0; i < nd->grad.numel(); ++i) ap->grad[i] += nd->grad[i];
  };
  return node;
}

VarPtr Conv1D(const VarPtr& input, const VarPtr& weight, const VarPtr& bias,
              size_t width) {
  LITE_CHECK(input->value.rank() == 2) << "Conv1D input rank";
  size_t d = input->value.shape()[0];
  size_t n = input->value.shape()[1];
  LITE_CHECK(n >= width && width >= 1) << "Conv1D width";
  size_t kernels = weight->value.shape()[0];
  LITE_CHECK(weight->value.shape()[1] == d * width) << "Conv1D weight shape";
  LITE_CHECK(bias->value.numel() == kernels) << "Conv1D bias shape";
  size_t m = n - width + 1;
  Tensor out(kernels, m);
  const float* x = input->value.data();
  const float* w = weight->value.data();
  for (size_t k = 0; k < kernels; ++k) {
    const float* wk = w + k * d * width;
    float b = bias->value[k];
    for (size_t j = 0; j < m; ++j) {
      float s = b;
      // weight layout: [dim][offset-within-window].
      for (size_t dd = 0; dd < d; ++dd) {
        const float* xrow = x + dd * n + j;
        const float* wrow = wk + dd * width;
        for (size_t dx = 0; dx < width; ++dx) s += wrow[dx] * xrow[dx];
      }
      out.at(k, j) = s;
    }
  }
  auto node = MakeNode(std::move(out), {input, weight, bias});
  Var* nd = node.get();
  Var* xp = input.get();
  Var* wp = weight.get();
  Var* bp = bias.get();
  node->backward_fn = [nd, xp, wp, bp, d, n, width, kernels, m]() {
    const float* g = nd->grad.data();
    const float* x = xp->value.data();
    const float* w = wp->value.data();
    for (size_t k = 0; k < kernels; ++k) {
      const float* gk = g + k * m;
      const float* wk = w + k * d * width;
      float* dwk = wp->requires_grad ? wp->grad.data() + k * d * width : nullptr;
      if (bp->requires_grad) {
        float s = 0.0f;
        for (size_t j = 0; j < m; ++j) s += gk[j];
        bp->grad[k] += s;
      }
      for (size_t dd = 0; dd < d; ++dd) {
        const float* xrow = x + dd * n;
        float* dxrow = xp->requires_grad ? xp->grad.data() + dd * n : nullptr;
        for (size_t dx = 0; dx < width; ++dx) {
          float wv = wk[dd * width + dx];
          float dw = 0.0f;
          for (size_t j = 0; j < m; ++j) {
            float gj = gk[j];
            if (gj == 0.0f) continue;
            dw += gj * xrow[j + dx];
            if (dxrow) dxrow[j + dx] += gj * wv;
          }
          if (dwk) dwk[dd * width + dx] += dw;
        }
      }
    }
  };
  return node;
}

VarPtr MaxOverCols(const VarPtr& a) {
  LITE_CHECK(a->value.rank() == 2) << "MaxOverCols rank";
  size_t rows = a->value.shape()[0], cols = a->value.shape()[1];
  Tensor out(rows);
  auto argmax = std::make_shared<std::vector<size_t>>(rows);
  for (size_t r = 0; r < rows; ++r) {
    size_t best = 0;
    for (size_t c = 1; c < cols; ++c) {
      if (a->value.at(r, c) > a->value.at(r, best)) best = c;
    }
    (*argmax)[r] = best;
    out[r] = a->value.at(r, best);
  }
  auto node = MakeNode(std::move(out), {a});
  Var* n = node.get();
  Var* ap = a.get();
  node->backward_fn = [n, ap, argmax, rows]() {
    if (!ap->requires_grad) return;
    for (size_t r = 0; r < rows; ++r) {
      ap->grad.at(r, (*argmax)[r]) += n->grad[r];
    }
  };
  return node;
}

VarPtr MaxOverRows(const VarPtr& a) {
  LITE_CHECK(a->value.rank() == 2) << "MaxOverRows rank";
  size_t rows = a->value.shape()[0], cols = a->value.shape()[1];
  Tensor out(cols);
  auto argmax = std::make_shared<std::vector<size_t>>(cols);
  for (size_t c = 0; c < cols; ++c) {
    size_t best = 0;
    for (size_t r = 1; r < rows; ++r) {
      if (a->value.at(r, c) > a->value.at(best, c)) best = r;
    }
    (*argmax)[c] = best;
    out[c] = a->value.at(best, c);
  }
  auto node = MakeNode(std::move(out), {a});
  Var* n = node.get();
  Var* ap = a.get();
  node->backward_fn = [n, ap, argmax, cols]() {
    if (!ap->requires_grad) return;
    for (size_t c = 0; c < cols; ++c) {
      ap->grad.at((*argmax)[c], c) += n->grad[c];
    }
  };
  return node;
}

VarPtr MeanOverRows(const VarPtr& a) {
  LITE_CHECK(a->value.rank() == 2) << "MeanOverRows rank";
  size_t rows = a->value.shape()[0], cols = a->value.shape()[1];
  Tensor out(cols);
  for (size_t c = 0; c < cols; ++c) {
    float s = 0.0f;
    for (size_t r = 0; r < rows; ++r) s += a->value.at(r, c);
    out[c] = s / static_cast<float>(rows);
  }
  auto node = MakeNode(std::move(out), {a});
  Var* n = node.get();
  Var* ap = a.get();
  node->backward_fn = [n, ap, rows, cols]() {
    if (!ap->requires_grad) return;
    float inv = 1.0f / static_cast<float>(rows);
    for (size_t c = 0; c < cols; ++c) {
      float g = n->grad[c] * inv;
      for (size_t r = 0; r < rows; ++r) ap->grad.at(r, c) += g;
    }
  };
  return node;
}

VarPtr SoftmaxRows(const VarPtr& a) {
  LITE_CHECK(a->value.rank() == 2) << "SoftmaxRows rank";
  size_t rows = a->value.shape()[0], cols = a->value.shape()[1];
  Tensor out = a->value;
  for (size_t r = 0; r < rows; ++r) {
    float mx = out.at(r, 0);
    for (size_t c = 1; c < cols; ++c) mx = std::max(mx, out.at(r, c));
    float sum = 0.0f;
    for (size_t c = 0; c < cols; ++c) {
      float e = std::exp(out.at(r, c) - mx);
      out.at(r, c) = e;
      sum += e;
    }
    for (size_t c = 0; c < cols; ++c) out.at(r, c) /= sum;
  }
  auto node = MakeNode(std::move(out), {a});
  Var* n = node.get();
  Var* ap = a.get();
  node->backward_fn = [n, ap, rows, cols]() {
    if (!ap->requires_grad) return;
    for (size_t r = 0; r < rows; ++r) {
      float dot = 0.0f;
      for (size_t c = 0; c < cols; ++c) dot += n->grad.at(r, c) * n->value.at(r, c);
      for (size_t c = 0; c < cols; ++c) {
        ap->grad.at(r, c) += n->value.at(r, c) * (n->grad.at(r, c) - dot);
      }
    }
  };
  return node;
}

VarPtr EmbeddingLookup(const VarPtr& table, const std::vector<int>& ids,
                       bool columns_are_tokens) {
  LITE_CHECK(table->value.rank() == 2) << "EmbeddingLookup table rank";
  size_t v = table->value.shape()[0];
  size_t d = table->value.shape()[1];
  size_t n = ids.size();
  LITE_CHECK(n > 0 && v > 0) << "EmbeddingLookup empty";
  auto clamped = std::make_shared<std::vector<size_t>>(n);
  for (size_t i = 0; i < n; ++i) {
    long id = ids[i];
    if (id < 0) id = 0;
    if (static_cast<size_t>(id) >= v) id = static_cast<long>(v) - 1;
    (*clamped)[i] = static_cast<size_t>(id);
  }
  Tensor out = columns_are_tokens ? Tensor(d, n) : Tensor(n, d);
  for (size_t i = 0; i < n; ++i) {
    size_t row = (*clamped)[i];
    for (size_t j = 0; j < d; ++j) {
      float val = table->value.at(row, j);
      if (columns_are_tokens) {
        out.at(j, i) = val;
      } else {
        out.at(i, j) = val;
      }
    }
  }
  auto node = MakeNode(std::move(out), {table});
  Var* nd = node.get();
  Var* tp = table.get();
  node->backward_fn = [nd, tp, clamped, d, n, columns_are_tokens]() {
    if (!tp->requires_grad) return;
    for (size_t i = 0; i < n; ++i) {
      size_t row = (*clamped)[i];
      for (size_t j = 0; j < d; ++j) {
        float g = columns_are_tokens ? nd->grad.at(j, i) : nd->grad.at(i, j);
        tp->grad.at(row, j) += g;
      }
    }
  };
  return node;
}

VarPtr MseLoss(const VarPtr& pred, const Tensor& target) {
  LITE_CHECK(pred->numel() == target.numel()) << "MseLoss size";
  size_t n = pred->numel();
  Tensor out(static_cast<size_t>(1));
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double diff = pred->value[i] - target[i];
    s += diff * diff;
  }
  out[0] = static_cast<float>(s / static_cast<double>(n));
  auto node = MakeNode(std::move(out), {pred});
  Var* nd = node.get();
  Var* pp = pred.get();
  Tensor tgt = target;
  node->backward_fn = [nd, pp, tgt, n]() {
    if (!pp->requires_grad) return;
    float scale = 2.0f / static_cast<float>(n) * nd->grad[0];
    for (size_t i = 0; i < n; ++i) {
      pp->grad[i] += scale * (pp->value[i] - tgt[i]);
    }
  };
  return node;
}

VarPtr BceWithLogitsLoss(const VarPtr& logit, float label) {
  LITE_CHECK(logit->numel() == 1) << "BceWithLogitsLoss expects scalar logit";
  float x = logit->value[0];
  // Numerically stable: max(x,0) - x*y + log(1+exp(-|x|)).
  float loss = std::max(x, 0.0f) - x * label + std::log1p(std::exp(-std::fabs(x)));
  Tensor out(static_cast<size_t>(1));
  out[0] = loss;
  auto node = MakeNode(std::move(out), {logit});
  Var* nd = node.get();
  Var* lp = logit.get();
  node->backward_fn = [nd, lp, label]() {
    if (!lp->requires_grad) return;
    float x = lp->value[0];
    float sig = 1.0f / (1.0f + std::exp(-x));
    lp->grad[0] += (sig - label) * nd->grad[0];
  };
  return node;
}

VarPtr SquareSum(const VarPtr& a) {
  Tensor out(static_cast<size_t>(1));
  double s = 0.0;
  for (size_t i = 0; i < a->numel(); ++i) s += static_cast<double>(a->value[i]) * a->value[i];
  out[0] = static_cast<float>(s);
  auto node = MakeNode(std::move(out), {a});
  Var* nd = node.get();
  Var* ap = a.get();
  node->backward_fn = [nd, ap]() {
    if (!ap->requires_grad) return;
    for (size_t i = 0; i < ap->numel(); ++i) {
      ap->grad[i] += 2.0f * ap->value[i] * nd->grad[0];
    }
  };
  return node;
}

VarPtr GradReverse(const VarPtr& a, float lambda) {
  Tensor out = a->value;
  auto node = MakeNode(std::move(out), {a});
  Var* nd = node.get();
  Var* ap = a.get();
  node->backward_fn = [nd, ap, lambda]() {
    if (!ap->requires_grad) return;
    ap->grad.Axpy(-lambda, nd->grad);
  };
  return node;
}

}  // namespace ops
}  // namespace lite
