// AVX2 (+F16C) dot kernels. Compiled with -mavx2 -mf16c -ffp-contract=off
// (src/tensor/CMakeLists.txt); only reached after a runtime CPU check, so
// the rest of the binary stays baseline-ISA clean.
//
// Bit-identity contract with the generic kernels (tensor/qkernels.cc):
//  - int8: exact int32 accumulation, any order.
//  - half: 8-lane fp32 accumulator over zero-padded 8-element groups, plain
//    mul + add (no FMA), reduction tree = 128-bit fold, movehl fold, final
//    pairwise add — mirrored scalar-for-lane by DotHalfGeneric.
#include "tensor/qkernels.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstring>

namespace lite::qk::detail {

namespace {

inline int32_t ReduceI32(__m256i acc) {
  __m128i lo = _mm256_castsi256_si128(acc);
  __m128i hi = _mm256_extracti128_si256(acc, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x1));
  return _mm_cvtsi128_si32(s);
}

// The fixed reduction tree of the half kernels: 128-bit fold, movehl fold,
// final pairwise add. DotHalfGeneric mirrors this exactly.
inline float ReduceHalfAcc(__m256 acc) {
  __m128 lo = _mm256_castps256_ps128(acc);
  __m128 hi = _mm256_extractf128_ps(acc, 1);
  __m128 s4 = _mm_add_ps(lo, hi);                     // lanes l + l+4.
  __m128 s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));  // lanes (0+2, 1+3).
  __m128 s1 = _mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 0x1));
  return _mm_cvtss_f32(s1);
}

}  // namespace

bool Avx2RuntimeSupported() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("f16c");
}

int32_t DotInt8Avx2(const int8_t* a, const int8_t* b, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i av = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    __m128i bv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    // Widen to int16 and multiply-add adjacent pairs into int32. Unlike
    // maddubs this cannot saturate: |a*b| <= 127*127 and pairs sum to at
    // most 2 * 16129.
    __m256i aw = _mm256_cvtepi8_epi16(av);
    __m256i bw = _mm256_cvtepi8_epi16(bv);
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(aw, bw));
  }
  if (i < n) {
    alignas(16) int8_t at[16] = {0};
    alignas(16) int8_t bt[16] = {0};
    std::memcpy(at, a + i, n - i);
    std::memcpy(bt, b + i, n - i);
    __m128i av = _mm_load_si128(reinterpret_cast<const __m128i*>(at));
    __m128i bv = _mm_load_si128(reinterpret_cast<const __m128i*>(bt));
    __m256i aw = _mm256_cvtepi8_epi16(av);
    __m256i bw = _mm256_cvtepi8_epi16(bv);
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(aw, bw));
  }
  return ReduceI32(acc);
}

void DotInt8MultiAvx2(const int8_t* a, const int8_t* w, size_t rows,
                      size_t cols, int32_t* out) {
  size_t j = 0;
  for (; j + 4 <= rows; j += 4) {
    const int8_t* w0 = w + j * cols;
    const int8_t* w1 = w0 + cols;
    const int8_t* w2 = w1 + cols;
    const int8_t* w3 = w2 + cols;
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    __m256i acc2 = _mm256_setzero_si256();
    __m256i acc3 = _mm256_setzero_si256();
    size_t i = 0;
    for (; i + 16 <= cols; i += 16) {
      __m256i aw = _mm256_cvtepi8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
      acc0 = _mm256_add_epi32(
          acc0, _mm256_madd_epi16(aw, _mm256_cvtepi8_epi16(_mm_loadu_si128(
                                          reinterpret_cast<const __m128i*>(
                                              w0 + i)))));
      acc1 = _mm256_add_epi32(
          acc1, _mm256_madd_epi16(aw, _mm256_cvtepi8_epi16(_mm_loadu_si128(
                                          reinterpret_cast<const __m128i*>(
                                              w1 + i)))));
      acc2 = _mm256_add_epi32(
          acc2, _mm256_madd_epi16(aw, _mm256_cvtepi8_epi16(_mm_loadu_si128(
                                          reinterpret_cast<const __m128i*>(
                                              w2 + i)))));
      acc3 = _mm256_add_epi32(
          acc3, _mm256_madd_epi16(aw, _mm256_cvtepi8_epi16(_mm_loadu_si128(
                                          reinterpret_cast<const __m128i*>(
                                              w3 + i)))));
    }
    if (i < cols) {
      alignas(16) int8_t at[16] = {0};
      std::memcpy(at, a + i, cols - i);
      __m256i aw = _mm256_cvtepi8_epi16(
          _mm_load_si128(reinterpret_cast<const __m128i*>(at)));
      auto tail = [&](const int8_t* wr, __m256i& acc) {
        alignas(16) int8_t wt[16] = {0};
        std::memcpy(wt, wr + i, cols - i);
        __m256i ww = _mm256_cvtepi8_epi16(
            _mm_load_si128(reinterpret_cast<const __m128i*>(wt)));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(aw, ww));
      };
      tail(w0, acc0);
      tail(w1, acc1);
      tail(w2, acc2);
      tail(w3, acc3);
    }
    out[j + 0] = ReduceI32(acc0);
    out[j + 1] = ReduceI32(acc1);
    out[j + 2] = ReduceI32(acc2);
    out[j + 3] = ReduceI32(acc3);
  }
  for (; j < rows; ++j) out[j] = DotInt8Avx2(a, w + j * cols, cols);
}

float MaxAbsAvx2(const float* x, size_t n) {
  const __m256 mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
  __m256 m = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    m = _mm256_max_ps(m, _mm256_and_ps(mask, _mm256_loadu_ps(x + i)));
  }
  __m128 m4 =
      _mm_max_ps(_mm256_castps256_ps128(m), _mm256_extractf128_ps(m, 1));
  m4 = _mm_max_ps(m4, _mm_movehl_ps(m4, m4));
  m4 = _mm_max_ss(m4, _mm_shuffle_ps(m4, m4, 0x1));
  float r = _mm_cvtss_f32(m4);
  for (; i < n; ++i) r = std::max(r, std::fabs(x[i]));
  return r;
}

void QuantizeActRowAvx2(const float* x, size_t n, float inv, int8_t* q,
                        int32_t* rowsum) {
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256i lo = _mm256_set1_epi32(-127);
  const __m256i hi = _mm256_set1_epi32(127);
  __m256i sum = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    // cvtps rounds to nearest-even — the same rounding lrintf performs.
    __m256i c0 =
        _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(x + i), vinv));
    __m256i c1 =
        _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(x + i + 8), vinv));
    c0 = _mm256_min_epi32(_mm256_max_epi32(c0, lo), hi);
    c1 = _mm256_min_epi32(_mm256_max_epi32(c1, lo), hi);
    sum = _mm256_add_epi32(sum, _mm256_add_epi32(c0, c1));
    // Narrow 16 clamped int32 codes to int8 in order; the saturating packs
    // are exact because the values already sit in [-127, 127].
    __m256i w16 = _mm256_permute4x64_epi64(_mm256_packs_epi32(c0, c1), 0xD8);
    __m128i b8 = _mm_packs_epi16(_mm256_castsi256_si128(w16),
                                 _mm256_extracti128_si256(w16, 1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(q + i), b8);
  }
  int32_t total = ReduceI32(sum);
  for (; i < n; ++i) {
    long code = std::lrintf(x[i] * inv);
    int8_t v = static_cast<int8_t>(std::clamp<long>(code, -127, 127));
    q[i] = v;
    total += v;
  }
  *rowsum = total;
}

void QuantizeActRowToInt16Avx2(const float* x, size_t n, size_t n2, float inv,
                               int16_t* q, int32_t* rowsum) {
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256i lo = _mm256_set1_epi32(-127);
  const __m256i hi = _mm256_set1_epi32(127);
  __m256i sum = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i c0 =
        _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(x + i), vinv));
    c0 = _mm256_min_epi32(_mm256_max_epi32(c0, lo), hi);
    sum = _mm256_add_epi32(sum, c0);
    __m128i w16 = _mm_packs_epi32(_mm256_castsi256_si128(c0),
                                  _mm256_extracti128_si256(c0, 1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(q + i), w16);
  }
  int32_t total = ReduceI32(sum);
  for (; i < n; ++i) {
    long code = std::lrintf(x[i] * inv);
    int16_t v = static_cast<int16_t>(std::clamp<long>(code, -127, 127));
    q[i] = v;
    total += v;
  }
  for (; i < n2; ++i) q[i] = 0;
  *rowsum = total;
}

void GemmInt8PanelsAvx2(const int16_t* a16, const QuantizedRowMatrix& w,
                        int32_t* out) {
  const size_t cols2 = w.cols2;
  const size_t np = (w.rows + 7) / 8;
  for (size_t p = 0; p < np; ++p) {
    const int16_t* wp = w.panels.data() + p * cols2 * 8;
    __m256i acc = _mm256_setzero_si256();
    for (size_t c = 0; c < cols2; c += 2) {
      // Broadcast the activation pair (a[c], a[c+1]) to every lane; one
      // madd accumulates both columns into all 8 outputs of the panel.
      int32_t pair;
      std::memcpy(&pair, a16 + c, sizeof(pair));
      __m256i av = _mm256_set1_epi32(pair);
      acc = _mm256_add_epi32(
          acc, _mm256_madd_epi16(
                   av, _mm256_loadu_si256(
                           reinterpret_cast<const __m256i*>(wp + c * 8))));
    }
    if (p * 8 + 8 <= w.rows) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + p * 8), acc);
    } else {
      alignas(32) int32_t tmp[8];
      _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), acc);
      for (size_t l = 0; p * 8 + l < w.rows; ++l) out[p * 8 + l] = tmp[l];
    }
  }
}

float DotHalfAvx2(const float* x, const uint16_t* w, size_t n) {
  __m256 acc = _mm256_setzero_ps();
  size_t n8 = n & ~static_cast<size_t>(7);
  for (size_t i = 0; i < n8; i += 8) {
    __m128i hw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + i));
    __m256 wf = _mm256_cvtph_ps(hw);  // exact half -> float.
    __m256 xf = _mm256_loadu_ps(x + i);
    acc = _mm256_add_ps(acc, _mm256_mul_ps(xf, wf));
  }
  if (n8 < n) {
    alignas(32) float xt[8] = {0};
    alignas(16) uint16_t wt[8] = {0};
    for (size_t i = n8; i < n; ++i) {
      xt[i - n8] = x[i];
      wt[i - n8] = w[i];
    }
    __m128i hw = _mm_load_si128(reinterpret_cast<const __m128i*>(wt));
    __m256 wf = _mm256_cvtph_ps(hw);
    __m256 xf = _mm256_load_ps(xt);
    acc = _mm256_add_ps(acc, _mm256_mul_ps(xf, wf));
  }
  return ReduceHalfAcc(acc);
}

void DotHalfMultiAvx2(const float* x, const uint16_t* w, size_t rows,
                      size_t cols, float* out) {
  const size_t n8 = cols & ~static_cast<size_t>(7);
  size_t j = 0;
  for (; j + 4 <= rows; j += 4) {
    const uint16_t* w0 = w + j * cols;
    const uint16_t* w1 = w0 + cols;
    const uint16_t* w2 = w1 + cols;
    const uint16_t* w3 = w2 + cols;
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    for (size_t i = 0; i < n8; i += 8) {
      __m256 xf = _mm256_loadu_ps(x + i);
      acc0 = _mm256_add_ps(
          acc0, _mm256_mul_ps(xf, _mm256_cvtph_ps(_mm_loadu_si128(
                                      reinterpret_cast<const __m128i*>(
                                          w0 + i)))));
      acc1 = _mm256_add_ps(
          acc1, _mm256_mul_ps(xf, _mm256_cvtph_ps(_mm_loadu_si128(
                                      reinterpret_cast<const __m128i*>(
                                          w1 + i)))));
      acc2 = _mm256_add_ps(
          acc2, _mm256_mul_ps(xf, _mm256_cvtph_ps(_mm_loadu_si128(
                                      reinterpret_cast<const __m128i*>(
                                          w2 + i)))));
      acc3 = _mm256_add_ps(
          acc3, _mm256_mul_ps(xf, _mm256_cvtph_ps(_mm_loadu_si128(
                                      reinterpret_cast<const __m128i*>(
                                          w3 + i)))));
    }
    if (n8 < cols) {
      alignas(32) float xt[8] = {0};
      for (size_t i = n8; i < cols; ++i) xt[i - n8] = x[i];
      __m256 xf = _mm256_load_ps(xt);
      auto tail = [&](const uint16_t* wr, __m256& acc) {
        alignas(16) uint16_t wt[8] = {0};
        for (size_t i = n8; i < cols; ++i) wt[i - n8] = wr[i];
        __m256 wf = _mm256_cvtph_ps(
            _mm_load_si128(reinterpret_cast<const __m128i*>(wt)));
        acc = _mm256_add_ps(acc, _mm256_mul_ps(xf, wf));
      };
      tail(w0, acc0);
      tail(w1, acc1);
      tail(w2, acc2);
      tail(w3, acc3);
    }
    out[j + 0] = ReduceHalfAcc(acc0);
    out[j + 1] = ReduceHalfAcc(acc1);
    out[j + 2] = ReduceHalfAcc(acc2);
    out[j + 3] = ReduceHalfAcc(acc3);
  }
  for (; j < rows; ++j) out[j] = DotHalfAvx2(x, w + j * cols, cols);
}

}  // namespace lite::qk::detail

#endif  // x86
