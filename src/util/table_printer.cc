#include "util/table_printer.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace lite {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TablePrinter::Fmt(int64_t v) { return std::to_string(v); }

void TablePrinter::Print(std::ostream& os, const std::string& title) const {
  if (!title.empty()) os << "\n== " << title << " ==\n";
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << "\n";
  };
  print_row(header_);
  std::vector<std::string> rule(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) rule[c] = std::string(widths[c], '-');
  print_row(rule);
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::ToCsv() const {
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
      if (c == '"') out += "\"\"";
      else out.push_back(c);
    }
    out += "\"";
    return out;
  };
  std::ostringstream os;
  for (size_t c = 0; c < header_.size(); ++c) {
    if (c) os << ",";
    os << quote(header_[c]);
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << quote(row[c]);
    }
    os << "\n";
  }
  return os.str();
}

bool TablePrinter::WriteCsv(const std::string& dir, const std::string& name) const {
  if (dir.empty()) return true;
  std::ofstream out(dir + "/" + name + ".csv");
  if (!out) return false;
  out << ToCsv();
  return static_cast<bool>(out);
}

std::string TablePrinter::ToString(const std::string& title) const {
  std::ostringstream os;
  Print(os, title);
  return os.str();
}

}  // namespace lite
