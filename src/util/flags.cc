#include "util/flags.h"

#include <cstdlib>
#include <sstream>

#include "util/string_util.h"

namespace lite {

void FlagParser::AddString(const std::string& name, const std::string& def,
                           const std::string& help) {
  flags_[name] = {Type::kString, def, def, help};
}
void FlagParser::AddInt(const std::string& name, long def, const std::string& help) {
  flags_[name] = {Type::kInt, std::to_string(def), std::to_string(def), help};
}
void FlagParser::AddDouble(const std::string& name, double def,
                           const std::string& help) {
  std::ostringstream os;
  os << def;
  flags_[name] = {Type::kDouble, os.str(), os.str(), help};
}
void FlagParser::AddBool(const std::string& name, bool def, const std::string& help) {
  flags_[name] = {Type::kBool, def ? "true" : "false", def ? "true" : "false", help};
}

bool FlagParser::SetValue(const std::string& name, const std::string& value,
                          std::string* error) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    *error = "unknown flag --" + name;
    return false;
  }
  Flag& flag = it->second;
  switch (flag.type) {
    case Type::kInt: {
      char* end = nullptr;
      std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        *error = "flag --" + name + " expects an integer, got '" + value + "'";
        return false;
      }
      break;
    }
    case Type::kDouble: {
      char* end = nullptr;
      std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        *error = "flag --" + name + " expects a number, got '" + value + "'";
        return false;
      }
      break;
    }
    case Type::kBool:
      if (value != "true" && value != "false") {
        *error = "flag --" + name + " expects true/false, got '" + value + "'";
        return false;
      }
      break;
    case Type::kString:
      break;
  }
  flag.value = value;
  return true;
}

bool FlagParser::Parse(int argc, const char* const* argv, std::string* error) {
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      if (!SetValue(body.substr(0, eq), body.substr(eq + 1), error)) return false;
      continue;
    }
    auto it = flags_.find(body);
    if (it == flags_.end()) {
      *error = "unknown flag --" + body;
      return false;
    }
    if (it->second.type == Type::kBool) {
      it->second.value = "true";
      continue;
    }
    if (i + 1 >= argc) {
      *error = "flag --" + body + " needs a value";
      return false;
    }
    if (!SetValue(body, argv[++i], error)) return false;
  }
  return true;
}

std::string FlagParser::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? "" : it->second.value;
}
long FlagParser::GetInt(const std::string& name) const {
  return std::strtol(GetString(name).c_str(), nullptr, 10);
}
double FlagParser::GetDouble(const std::string& name) const {
  return std::strtod(GetString(name).c_str(), nullptr);
}
bool FlagParser::GetBool(const std::string& name) const {
  return GetString(name) == "true";
}

std::string FlagParser::HelpText() const {
  std::ostringstream os;
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.default_value << ")\n      "
       << flag.help << "\n";
  }
  return os.str();
}

}  // namespace lite
