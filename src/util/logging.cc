#include "util/logging.h"

#include <cstdlib>
#include <iostream>
#include <mutex>

namespace lite {

namespace {
LogLevel g_level = [] {
  const char* env = std::getenv("LITE_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  std::string s(env);
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  return LogLevel::kWarn;
}();
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::cerr << stream_.str() << "\n";
}

CheckFailure::CheckFailure(const char* file, int line, const char* cond) {
  stream_ << "CHECK failed at " << file << ":" << line << ": " << cond << " ";
}

CheckFailure::~CheckFailure() {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << stream_.str() << std::endl;
  }
  std::abort();
}

}  // namespace internal
}  // namespace lite
