// Fixed-width ASCII table rendering for the benchmark harnesses, which print
// the same rows/columns the paper's tables report.
#ifndef LITE_UTIL_TABLE_PRINTER_H_
#define LITE_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace lite {

/// Collects rows of string cells and renders them as an aligned table with a
/// header rule, e.g.
///
///   Application  Default  LITE   ETR
///   -----------  -------  ----   ----
///   TeraSort     812.4    96.1   0.88
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one row; it may have fewer cells than the header (padded).
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string Fmt(double v, int precision = 4);
  static std::string Fmt(int64_t v);

  /// Renders the table to `os`. `title` is printed above when non-empty.
  void Print(std::ostream& os, const std::string& title = "") const;

  /// Renders to a string (used by tests).
  std::string ToString(const std::string& title = "") const;

  /// RFC-4180-style CSV rendering (quotes cells containing commas/quotes).
  std::string ToCsv() const;

  /// Writes CSV to `dir`/`name`.csv when dir is non-empty (no-op returning
  /// true when it is). Harnesses pass the LITE_BENCH_CSV_DIR environment
  /// variable so plotted artifacts can be produced without scraping stdout.
  bool WriteCsv(const std::string& dir, const std::string& name) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lite

#endif  // LITE_UTIL_TABLE_PRINTER_H_
