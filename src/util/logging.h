// Minimal leveled logging. Benchmarks keep the default (WARN) quiet so their
// stdout is exactly the reproduced table; set LITE_LOG=info|debug to trace.
#ifndef LITE_UTIL_LOGGING_H_
#define LITE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace lite {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; initialized from the LITE_LOG environment variable.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

#define LITE_LOG(level)                                               \
  if (::lite::LogLevel::level >= ::lite::GetLogLevel())               \
  ::lite::internal::LogMessage(::lite::LogLevel::level, __FILE__, __LINE__) \
      .stream()

#define LITE_DEBUG LITE_LOG(kDebug)
#define LITE_INFO LITE_LOG(kInfo)
#define LITE_WARN LITE_LOG(kWarn)
#define LITE_ERROR LITE_LOG(kError)

/// CHECK-style assertion that is active in release builds; aborts with a
/// message on failure. Use for invariants that must hold in production.
#define LITE_CHECK(cond)                                                     \
  if (!(cond))                                                               \
  ::lite::internal::CheckFailure(__FILE__, __LINE__, #cond).stream()

namespace internal {
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* cond);
  [[noreturn]] ~CheckFailure();
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace lite

#endif  // LITE_UTIL_LOGGING_H_
