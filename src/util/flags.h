// Minimal command-line flag parsing for the CLI tools: supports
// --name=value, --name value, and bare --bool switches, plus positional
// arguments. No global state; each tool builds its own parser.
#ifndef LITE_UTIL_FLAGS_H_
#define LITE_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace lite {

class FlagParser {
 public:
  /// Registers a flag with a default value and help text.
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help);
  void AddInt(const std::string& name, long default_value, const std::string& help);
  void AddDouble(const std::string& name, double default_value,
                 const std::string& help);
  void AddBool(const std::string& name, bool default_value, const std::string& help);

  /// Parses argv (excluding argv[0]); returns false and fills `error` on
  /// unknown flags or malformed values.
  bool Parse(int argc, const char* const* argv, std::string* error);

  std::string GetString(const std::string& name) const;
  long GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Usage text listing all registered flags.
  std::string HelpText() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    Type type;
    std::string value;
    std::string default_value;
    std::string help;
  };
  bool SetValue(const std::string& name, const std::string& value,
                std::string* error);

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace lite

#endif  // LITE_UTIL_FLAGS_H_
