#include "util/rng.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace lite {

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(gen_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> d(lo, hi);
  return d(gen_);
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(gen_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution d(std::clamp(p, 0.0, 1.0));
  return d(gen_);
}

size_t Rng::Index(size_t n) {
  assert(n > 0);
  std::uniform_int_distribution<size_t> d(0, n - 1);
  return d(gen_);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  // Partial Fisher-Yates: only the first k positions need to be randomized.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + Index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::Fork() { return Rng(gen_()); }

}  // namespace lite
