// A small fixed-size worker pool with deterministic parallel-for /
// parallel-map helpers, used to shard candidate scoring across cores.
//
// Determinism contract: ParallelMap writes result i into slot i and the
// caller reduces in index order, so the outcome is independent of thread
// count and scheduling. Exceptions thrown by tasks are captured and the
// first one is rethrown on the calling thread. Calling ParallelFor from
// inside a worker task runs the loop inline (no deadlock on nested
// submission); empty submissions return immediately.
//
// Observability: pools export threadpool_tasks_{submitted,executed}_total,
// threadpool_parallel_{for,for_inline,iterations}_total and the
// threadpool_queue_depth gauge through obs::MetricsRegistry::Global()
// (see docs/OBSERVABILITY.md). Instrumentation never affects scheduling or
// results.
#ifndef LITE_UTIL_THREAD_POOL_H_
#define LITE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace lite {

class ThreadPool {
 public:
  /// `num_threads` worker threads; 0 picks std::thread::hardware_concurrency
  /// (at least 1). A pool of size 1 still runs tasks on its single worker;
  /// the ParallelFor caller always participates, so even size-1 pools
  /// overlap work with the caller.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues one task; the future rethrows anything the task throws.
  std::future<void> Submit(std::function<void()> task);

  /// Runs fn(i) for every i in [0, n), sharding across the pool with the
  /// calling thread participating. Blocks until all iterations finish.
  /// The first exception thrown by any iteration is rethrown here. Safe to
  /// call with n == 0 and safe to call from inside a worker task (runs
  /// inline in that case).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Ordered reduction: returns {map(0), map(1), ..., map(n-1)} — slot i
  /// always holds map(i), so downstream reductions are deterministic
  /// regardless of thread count or scheduling.
  template <typename T>
  std::vector<T> ParallelMap(size_t n, const std::function<T(size_t)>& map) {
    std::vector<T> out(n);
    ParallelFor(n, [&](size_t i) { out[i] = map(i); });
    return out;
  }

  /// Process-wide pool sized to the hardware; lives for the process.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace lite

#endif  // LITE_UTIL_THREAD_POOL_H_
