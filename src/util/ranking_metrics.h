// HR@K and NDCG@K, the ranking metrics of Section V-C.
//
// A tuner produces a ranked list of candidate configurations; the gold
// standard is the list ordered by true (simulated) execution time. HR@K
// measures the overlap between the predicted top-K and the true top-K;
// NDCG@K additionally rewards placing truly-better configurations higher.
#ifndef LITE_UTIL_RANKING_METRICS_H_
#define LITE_UTIL_RANKING_METRICS_H_

#include <cstddef>
#include <vector>

namespace lite {

/// HR@K: |predicted top-K ∩ true top-K| / K.
/// `predicted_scores` and `true_times` are parallel arrays over the same
/// candidate set; lower is better for both (scores are predicted times).
double HitRatioAtK(const std::vector<double>& predicted_scores,
                   const std::vector<double>& true_times, size_t k);

/// NDCG@K with graded relevance derived from the true ranking: the truly
/// best candidate gets relevance |C|, the next |C|-1, etc., then gains are
/// 2^rel scaled to avoid overflow. Returns a value in [0, 1].
double NdcgAtK(const std::vector<double>& predicted_scores,
               const std::vector<double>& true_times, size_t k);

/// Indices of the k smallest values (stable ordering by value then index).
std::vector<size_t> TopKIndices(const std::vector<double>& values, size_t k);

}  // namespace lite

#endif  // LITE_UTIL_RANKING_METRICS_H_
