#include "util/ranking_metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <unordered_set>

namespace lite {

std::vector<size_t> TopKIndices(const std::vector<double>& values, size_t k) {
  k = std::min(k, values.size());
  std::vector<size_t> idx(values.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    if (values[a] != values[b]) return values[a] < values[b];
    return a < b;
  });
  idx.resize(k);
  return idx;
}

double HitRatioAtK(const std::vector<double>& predicted_scores,
                   const std::vector<double>& true_times, size_t k) {
  assert(predicted_scores.size() == true_times.size());
  if (predicted_scores.empty() || k == 0) return 0.0;
  k = std::min(k, predicted_scores.size());
  std::vector<size_t> pred_top = TopKIndices(predicted_scores, k);
  std::vector<size_t> true_top = TopKIndices(true_times, k);
  std::unordered_set<size_t> truth(true_top.begin(), true_top.end());
  size_t hits = 0;
  for (size_t i : pred_top) hits += truth.count(i);
  return static_cast<double>(hits) / static_cast<double>(k);
}

double NdcgAtK(const std::vector<double>& predicted_scores,
               const std::vector<double>& true_times, size_t k) {
  assert(predicted_scores.size() == true_times.size());
  size_t n = predicted_scores.size();
  if (n == 0 || k == 0) return 0.0;
  k = std::min(k, n);

  // Graded relevance: rank candidates by true time; best gets relevance n,
  // decreasing by 1. Gains use a linear (rel) form — with n up to a few
  // hundred candidates an exponential gain overflows double and collapses the
  // metric to "did we find the single best", which is not what the paper
  // measures.
  std::vector<size_t> true_order = TopKIndices(true_times, n);
  std::vector<double> relevance(n, 0.0);
  for (size_t r = 0; r < n; ++r) {
    relevance[true_order[r]] = static_cast<double>(n - r);
  }

  std::vector<size_t> pred_top = TopKIndices(predicted_scores, k);
  double dcg = 0.0;
  for (size_t i = 0; i < pred_top.size(); ++i) {
    dcg += relevance[pred_top[i]] / std::log2(static_cast<double>(i) + 2.0);
  }
  double idcg = 0.0;
  for (size_t i = 0; i < k; ++i) {
    idcg += relevance[true_order[i]] / std::log2(static_cast<double>(i) + 2.0);
  }
  if (idcg <= 0.0) return 0.0;
  return dcg / idcg;
}

}  // namespace lite
