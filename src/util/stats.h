// Descriptive statistics and the Wilcoxon signed-rank test used by the
// Table IX harness (significance of Adaptive Model Update improvements).
#ifndef LITE_UTIL_STATS_H_
#define LITE_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace lite {

/// Arithmetic mean; returns 0 for an empty input.
double Mean(const std::vector<double>& v);

/// Sample standard deviation (n-1 denominator); returns 0 for n < 2.
double StdDev(const std::vector<double>& v);

/// Population variance helper used by tree splitters.
double Variance(const std::vector<double>& v);

/// Median (averages the two central elements for even n); 0 for empty input.
double Median(std::vector<double> v);

/// Pearson correlation coefficient; returns 0 when either side is constant.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Spearman rank correlation (average ranks for ties).
double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b);

/// Average ranks (1-based) with ties sharing the mean rank.
std::vector<double> AverageRanks(const std::vector<double>& v);

/// Result of a Wilcoxon signed-rank test.
struct WilcoxonResult {
  double w_statistic = 0.0;  ///< min(W+, W-) over non-zero differences.
  double z_score = 0.0;      ///< normal approximation (tie-corrected).
  double p_value = 1.0;      ///< one-sided p-value (alternative: b > a).
  size_t n_effective = 0;    ///< pairs with non-zero difference.
};

/// One-sided Wilcoxon signed-rank test for paired samples, testing whether
/// `after` is stochastically greater than `before` (the paper reports the
/// p-value of the *increase* from NECS to NECS_u). Zero differences are
/// dropped; ties share average ranks; the tie-corrected normal approximation
/// is used (adequate for n >= 5, which all harnesses satisfy).
WilcoxonResult WilcoxonSignedRank(const std::vector<double>& before,
                                  const std::vector<double>& after);

/// Standard normal CDF.
double NormalCdf(double z);

/// Quantile of the standard normal distribution (Acklam's approximation).
double NormalQuantile(double p);

}  // namespace lite

#endif  // LITE_UTIL_STATS_H_
