#include "util/string_util.h"

#include <cctype>
#include <cmath>
#include <sstream>

namespace lite {

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::vector<std::string> SplitWhitespace(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::string HumanBytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  std::ostringstream os;
  if (bytes == std::floor(bytes)) {
    os << static_cast<long long>(bytes) << units[u];
  } else {
    os.precision(1);
    os << std::fixed << bytes << units[u];
  }
  return os.str();
}

std::string HumanSeconds(double seconds) {
  std::ostringstream os;
  os.precision(1);
  os << std::fixed;
  if (seconds < 120.0) {
    os << seconds << "s";
  } else if (seconds < 7200.0) {
    os << seconds / 60.0 << "m";
  } else {
    os << seconds / 3600.0 << "h";
  }
  return os.str();
}

}  // namespace lite
