// Small string helpers used by the code generator, event-log parser, and
// benchmark harnesses.
#ifndef LITE_UTIL_STRING_UTIL_H_
#define LITE_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace lite {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(const std::string& s, char delim);

/// Splits on any whitespace run; drops empty fields.
std::vector<std::string> SplitWhitespace(const std::string& s);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// Lower-cases ASCII.
std::string ToLower(std::string s);

/// Formats bytes as a human-readable size ("160MB", "1.2GB").
std::string HumanBytes(double bytes);

/// Formats seconds compactly ("96.1s", "1.4h").
std::string HumanSeconds(double seconds);

}  // namespace lite

#endif  // LITE_UTIL_STRING_UTIL_H_
