#include "util/atomic_file.h"

#include <atomic>
#include <cstdio>

#ifdef _WIN32
#include <process.h>
#define LITE_GETPID _getpid
#else
#include <unistd.h>
#define LITE_GETPID getpid
#endif

#include "util/logging.h"

namespace lite {

namespace {
// One-shot commit-failure injection (see header). A plain atomic is enough:
// the hook is armed and consumed single-threaded in tests.
std::atomic<int> g_fail_commit_countdown{0};

bool ConsumeInjectedFailure() {
  int n = g_fail_commit_countdown.load(std::memory_order_relaxed);
  while (n > 0) {
    if (g_fail_commit_countdown.compare_exchange_weak(
            n, n - 1, std::memory_order_relaxed)) {
      return n == 1;  // this commit is the doomed one.
    }
  }
  return false;
}
}  // namespace

void InjectAtomicWriteFailure(int nth_commit) {
  g_fail_commit_countdown.store(nth_commit < 0 ? 0 : nth_commit,
                                std::memory_order_relaxed);
}

AtomicFileWriter::AtomicFileWriter(const std::string& path)
    : path_(path),
      temp_path_(path + ".tmp." + std::to_string(LITE_GETPID())),
      out_(temp_path_, std::ios::binary | std::ios::trunc) {}

AtomicFileWriter::~AtomicFileWriter() {
  if (!finished_) {
    out_.close();
    std::remove(temp_path_.c_str());
  }
}

bool AtomicFileWriter::Stage() {
  if (stage_done_) return staged_;
  stage_done_ = true;
  out_.flush();
  // badbit/failbit after the flush means some write — possibly one long
  // before the final << — was short; committing would publish a silently
  // truncated file, which is the exact bug this class exists to kill.
  const bool stream_ok = static_cast<bool>(out_);
  out_.close();
  if (!stream_ok || ConsumeInjectedFailure()) {
    finished_ = true;
    std::remove(temp_path_.c_str());
    return false;
  }
  staged_ = true;
  return true;
}

bool AtomicFileWriter::Publish() {
  if (finished_) return committed_;
  if (!stage_done_ && !Stage()) return false;
  if (!staged_) return false;
  finished_ = true;
  if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    LITE_WARN << "AtomicFileWriter: rename('" << temp_path_ << "' -> '"
              << path_ << "') failed";
    std::remove(temp_path_.c_str());
    return false;
  }
  committed_ = true;
  return true;
}

bool AtomicFileWriter::Commit() {
  if (!Stage()) return false;
  return Publish();
}

bool WriteFileAtomic(const std::string& path,
                     const std::function<bool(std::ostream&)>& writer) {
  AtomicFileWriter w(path);
  if (!w.ok()) return false;
  if (!writer(w.stream())) return false;
  return w.Commit();
}

}  // namespace lite
