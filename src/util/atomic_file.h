// Atomic file publication: write to `<path>.tmp.<pid>`, flush, verify the
// stream, then rename() into place. POSIX rename is atomic within a
// filesystem, so a reader (or a model-plane pull replicating the file)
// observes either the previous committed bytes or the complete new bytes —
// never a torn prefix. Before this existed the snapshot writers streamed
// straight into their final paths; a crash or a concurrent pull mid-write
// published a half-written file that the hardened loaders then had to
// reject, turning a routine save into a serving outage (ISSUE 10).
//
// Usage:
//   AtomicFileWriter w(path);
//   if (!w.ok()) return false;
//   w.stream() << ...;
//   return w.Commit();   // false => temp discarded, committed file untouched
//
// Destruction without Commit() (including via an exception) unlinks the
// temp file and leaves any previously committed file exactly as it was.
//
// Crash-mid-save testing: InjectAtomicWriteFailure(n) makes the n-th
// subsequent Commit() fail after the temp file is written but before the
// rename — exactly the window a crash would hit — so suites can prove a
// multi-file save aborts cleanly without corrupting committed state.
#ifndef LITE_UTIL_ATOMIC_FILE_H_
#define LITE_UTIL_ATOMIC_FILE_H_

#include <fstream>
#include <functional>
#include <string>

namespace lite {

class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(const std::string& path);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// False when the temp file could not even be opened (missing directory,
  /// permissions). Commit() will also return false in that case.
  bool ok() const { return static_cast<bool>(out_); }

  std::ostream& stream() { return out_; }

  /// Flushes, verifies the stream state (a short write poisons it), closes
  /// and renames the temp file over `path`. Returns false — and removes the
  /// temp file — on any failure; the committed file is never touched on a
  /// failed commit. Idempotent: a second call returns the first result.
  /// Equivalent to Stage() && Publish().
  bool Commit();

  /// Two-phase form for multi-file saves (lite/snapshot.cc): Stage() every
  /// file of the set first — flush, verify, close, keep the temp — and only
  /// when ALL stages succeeded Publish() (rename) them, commit marker last.
  /// A failure in any Stage() aborts the save before a single rename, so
  /// the previously committed file set survives byte-for-byte; the window
  /// where a crash can leave a mixed set shrinks to the rename sequence
  /// itself, which the snapshot meta's content hash then detects. The
  /// injected test failure fires in Stage().
  bool Stage();
  bool Publish();

  /// The temp path the bytes are staged in (exposed for tests).
  const std::string& temp_path() const { return temp_path_; }

 private:
  std::string path_;
  std::string temp_path_;
  std::ofstream out_;
  bool staged_ = false;
  bool stage_done_ = false;
  bool committed_ = false;
  bool finished_ = false;
};

/// Convenience wrapper: stage, run `writer` on the stream, commit. Returns
/// false when the stream cannot be opened, `writer` returns false, or the
/// commit fails — the previously committed file survives in every case.
bool WriteFileAtomic(const std::string& path,
                     const std::function<bool(std::ostream&)>& writer);

/// Test hook: arms a one-shot failure on the n-th subsequent Stage()
/// (1 = the next one; Commit() counts, since it stages first). The doomed
/// write flushes the temp file, then fails *before* the rename and unlinks
/// the temp — the precise state a crash between flush and rename leaves
/// behind, minus the stray temp file a real crash would also leave (which
/// loaders must ignore anyway). n = 0 disarms. Test-only.
void InjectAtomicWriteFailure(int nth_commit);

}  // namespace lite

#endif  // LITE_UTIL_ATOMIC_FILE_H_
