#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "obs/metrics.h"

namespace lite {

namespace {
// Set while a thread is executing pool work; nested ParallelFor calls from a
// worker run inline instead of re-entering the queue (which could deadlock
// when every worker is blocked waiting on the nested loop).
thread_local bool t_inside_pool_task = false;

// Pool-wide observability (all pools share the series; the shared pool
// dominates in practice). Queue depth is sampled under the pool mutex at
// every transition, so the gauge always holds the latest observed depth.
struct PoolMetrics {
  obs::Counter* tasks_submitted;
  obs::Counter* tasks_executed;
  obs::Counter* parallel_for_calls;
  obs::Counter* parallel_for_inline;
  obs::Counter* parallel_iterations;
  obs::Gauge* queue_depth;

  static const PoolMetrics& Get() {
    static const PoolMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      return new PoolMetrics{
          reg.GetCounter("threadpool_tasks_submitted_total"),
          reg.GetCounter("threadpool_tasks_executed_total"),
          reg.GetCounter("threadpool_parallel_for_total"),
          reg.GetCounter("threadpool_parallel_for_inline_total"),
          reg.GetCounter("threadpool_parallel_iterations_total"),
          reg.GetGauge("threadpool_queue_depth"),
      };
    }();
    return *m;
  }
};
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
      PoolMetrics::Get().queue_depth->Set(static_cast<double>(tasks_.size()));
    }
    PoolMetrics::Get().tasks_executed->Inc();
    t_inside_pool_task = true;
    task();  // Submit wraps tasks in packaged_task, which captures throws.
    t_inside_pool_task = false;
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  auto packaged = std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> fut = packaged->get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.emplace_back([packaged] { (*packaged)(); });
    PoolMetrics::Get().queue_depth->Set(static_cast<double>(tasks_.size()));
  }
  PoolMetrics::Get().tasks_submitted->Inc();
  cv_.notify_one();
  return fut;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const PoolMetrics& metrics = PoolMetrics::Get();
  metrics.parallel_for_calls->Inc();
  metrics.parallel_iterations->Inc(n);
  if (t_inside_pool_task || workers_.empty() || n == 1) {
    metrics.parallel_for_inline->Inc();
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct LoopState {
    std::atomic<size_t> next{0};
    std::mutex mu;
    std::condition_variable done;
    size_t pending = 0;
    std::exception_ptr error;
  };
  auto state = std::make_shared<LoopState>();

  auto drain = [state, &fn, n] {
    for (;;) {
      size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      {
        // A failed iteration stops the loop early but never the process;
        // only the first exception is kept and rethrown on the caller.
        std::lock_guard<std::mutex> lock(state->mu);
        if (state->error) return;
      }
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->error) state->error = std::current_exception();
        return;
      }
    }
  };

  size_t helpers = std::min(workers_.size(), n - 1);
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->pending = helpers;
  }
  for (size_t h = 0; h < helpers; ++h) {
    std::function<void()> helper = [state, drain] {
      drain();
      std::lock_guard<std::mutex> lock(state->mu);
      if (--state->pending == 0) state->done.notify_all();
    };
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.emplace_back(std::move(helper));
      metrics.queue_depth->Set(static_cast<double>(tasks_.size()));
    }
    metrics.tasks_submitted->Inc();
    cv_.notify_one();
  }

  drain();  // The caller works too instead of just blocking.

  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&] { return state->pending == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

}  // namespace lite
