#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace lite {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = Mean(v);
  double ss = 0.0;
  for (double x : v) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(v.size() - 1));
}

double Variance(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double m = Mean(v);
  double ss = 0.0;
  for (double x : v) ss += (x - m) * (x - m);
  return ss / static_cast<double>(v.size());
}

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t n = v.size();
  if (n % 2 == 1) return v[n / 2];
  return 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  assert(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  double ma = Mean(a), mb = Mean(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da <= 0.0 || db <= 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

std::vector<double> AverageRanks(const std::vector<double>& v) {
  size_t n = v.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t i, size_t j) { return v[i] < v[j]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    // Positions i..j (0-based) share the average 1-based rank.
    double avg = 0.5 * static_cast<double>(i + j) + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  return PearsonCorrelation(AverageRanks(a), AverageRanks(b));
}

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double NormalQuantile(double p) {
  // Acklam's rational approximation, |relative error| < 1.15e-9.
  assert(p > 0.0 && p < 1.0);
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425, phigh = 1 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > phigh) {
    q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

WilcoxonResult WilcoxonSignedRank(const std::vector<double>& before,
                                  const std::vector<double>& after) {
  assert(before.size() == after.size());
  WilcoxonResult res;
  std::vector<double> diffs;
  for (size_t i = 0; i < before.size(); ++i) {
    double d = after[i] - before[i];
    if (d != 0.0) diffs.push_back(d);
  }
  size_t n = diffs.size();
  res.n_effective = n;
  if (n == 0) return res;

  std::vector<double> abs_diffs(n);
  for (size_t i = 0; i < n; ++i) abs_diffs[i] = std::fabs(diffs[i]);
  std::vector<double> ranks = AverageRanks(abs_diffs);

  double w_plus = 0.0, w_minus = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (diffs[i] > 0) {
      w_plus += ranks[i];
    } else {
      w_minus += ranks[i];
    }
  }
  res.w_statistic = std::min(w_plus, w_minus);

  double nn = static_cast<double>(n);
  double mean_w = nn * (nn + 1.0) / 4.0;
  double var_w = nn * (nn + 1.0) * (2.0 * nn + 1.0) / 24.0;
  // Tie correction: subtract sum(t^3 - t)/48 over tie groups of |diffs|.
  {
    std::vector<double> sorted = abs_diffs;
    std::sort(sorted.begin(), sorted.end());
    size_t i = 0;
    while (i < sorted.size()) {
      size_t j = i;
      while (j + 1 < sorted.size() && sorted[j + 1] == sorted[i]) ++j;
      double t = static_cast<double>(j - i + 1);
      if (t > 1) var_w -= (t * t * t - t) / 48.0;
      i = j + 1;
    }
  }
  if (var_w <= 0.0) {
    res.p_value = (w_plus > w_minus) ? 0.0 : 1.0;
    return res;
  }
  // One-sided alternative "after > before": large W+ is evidence. Apply a
  // continuity correction of 0.5.
  res.z_score = (w_plus - mean_w - 0.5) / std::sqrt(var_w);
  res.p_value = 1.0 - NormalCdf(res.z_score);
  return res;
}

}  // namespace lite
