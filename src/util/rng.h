// Deterministic random number utilities shared by every module.
//
// All stochastic components in this repository (workload synthesis, knob
// sampling, neural-network initialization, tuner exploration) draw from an
// explicitly seeded Rng so that every experiment harness is reproducible.
#ifndef LITE_UTIL_RNG_H_
#define LITE_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace lite {

/// A seeded pseudo-random generator wrapping std::mt19937_64 with the
/// convenience draws used throughout the codebase.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed) : gen_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal scaled by stddev around mean.
  double Gaussian(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Returns a uniformly random index in [0, n). n must be > 0.
  size_t Index(size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = Index(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Splits off an independent child generator (useful for parallel or
  /// per-component determinism).
  Rng Fork();

  std::mt19937_64& gen() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace lite

#endif  // LITE_UTIL_RNG_H_
