// lite_serve: end-to-end driver for the concurrent tuning service — the
// serving analogue of obs_report. It trains a canned LITE system, saves a
// snapshot, then exercises serve::TuningService the way a deployment would:
//
//   1. equivalence    multi-threaded clients hammer SubmitRecommend /
//                     Recommend while the main thread hot-swaps the
//                     snapshot; every response must be ok and bit-identical
//                     to the direct LoadedLiteModel::Recommend reference
//                     (same snapshot, same seed — the RCU swap must never
//                     tear or perturb a request);
//   2. backpressure   with every shared-pool worker parked, submissions
//                     beyond max_pending must be rejected immediately and
//                     the accepted ones must still complete;
//   3. adaptation     feedback batches trigger an off-path update that
//                     fine-tunes a clone and swaps it in — pending feedback
//                     drains, the swap is observed, and serving survives;
//   4. guardrails     a feedback-regression storm (failed/censored
//                     outcomes) must trip the tenant's breaker, quarantined
//                     requests must be served the incumbent verbatim with
//                     zero model evaluations, and half-open probing must
//                     recover the tenant once probes run healthy;
//   5. accounting     service stats and serve_* metrics must agree
//                     *exactly* with what the drivers submitted — both are
//                     published under the same mutex, so no tolerance.
//
// Exit status is nonzero when any check fails, so CTest runs this as the
// serving smoke test. Usage:
//   lite_serve [output_dir]     (default: current directory)
#include <atomic>
#include <filesystem>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "lite/lite_system.h"
#include "lite/snapshot.h"
#include "obs/metrics.h"
#include "serve/tuning_service.h"
#include "sparksim/runner.h"
#include "util/thread_pool.h"

using namespace lite;

namespace {

bool Check(bool ok, const std::string& what, int* failures) {
  std::cout << (ok ? "  [ok]   " : "  [FAIL] ") << what << "\n";
  if (!ok) ++*failures;
  return ok;
}

LiteOptions CannedOptions() {
  LiteOptions opts;
  opts.corpus.apps = {"TS", "PR"};
  opts.corpus.clusters = {spark::ClusterEnv::ClusterA()};
  opts.corpus.configs_per_setting = 2;
  opts.corpus.max_stage_instances_per_run = 5;
  opts.corpus.max_code_tokens = 64;
  opts.necs.emb_dim = 8;
  opts.necs.cnn_widths = {3, 4};
  opts.necs.cnn_kernels = 6;
  opts.necs.code_dim = 12;
  opts.necs.gcn_hidden = 8;
  opts.train.epochs = 2;
  opts.num_candidates = 16;
  opts.ensemble_size = 2;
  return opts;
}

struct Query {
  const spark::ApplicationSpec* app;
  spark::DataSpec data;
  spark::ClusterEnv env;
};

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->Value();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = argc > 1 ? argv[1] : ".";
  std::string snap_dir = out_dir + "/snapshot";
  std::filesystem::create_directories(snap_dir);
  int failures = 0;

  std::cout << "Training canned LITE system (2 apps, 1 cluster)...\n";
  spark::SparkRunner runner;
  LiteSystem system(&runner, CannedOptions());
  system.TrainOffline();
  if (!Check(SaveSnapshot(system, snap_dir), "saved snapshot to " + snap_dir,
             &failures)) {
    return 1;
  }

  std::vector<Query> queries;
  for (const char* name : {"TS", "PR"}) {
    const auto* app = spark::AppCatalog::Find(name);
    queries.push_back({app, app->MakeData(app->test_size_mb),
                       spark::ClusterEnv::ClusterA()});
  }

  // Direct reference: the same snapshot served without the service layer.
  auto reference = LoadedLiteModel::Load(snap_dir, &runner);
  if (!Check(reference != nullptr, "snapshot loads standalone", &failures)) {
    return 1;
  }
  std::vector<LiteSystem::Recommendation> want;
  for (const Query& q : queries) {
    want.push_back(reference->Recommend(*q.app, q.data, q.env));
  }

  // --- Phase 1: concurrent clients + hot-swaps, bit-exact responses. ----
  std::cout << "\nPhase 1: concurrent clients under hot-swap\n";
  const uint64_t req_before = CounterValue("serve_requests_total");
  const uint64_t completed_before = CounterValue("serve_completed_total");
  const uint64_t rejected_before = CounterValue("serve_rejected_total");
  const uint64_t sessions_before = CounterValue("serve_sessions_total");
  const uint64_t swaps_before = CounterValue("serve_hot_swaps_total");
  const uint64_t updates_before = CounterValue("serve_adaptive_updates_total");
  const uint64_t dropped_before =
      CounterValue("serve_feedback_dropped_bad_total");
  const uint64_t trips_before = CounterValue("serve_guardrail_trips_total");
  serve::ServiceOptions sopts;
  sopts.max_pending = 128;
  sopts.scoring.threads = 1;  // concurrency comes from the clients here.
  sopts.update_batch = 0;     // phase 3 drives updates explicitly.
  serve::TuningService service(&runner, sopts);
  Check(service.LoadSnapshot(snap_dir), "service loaded the snapshot",
        &failures);

  constexpr int kClients = 4;
  constexpr int kRequests = 8;
  std::vector<int> sessions;
  for (int c = 0; c < kClients; ++c) {
    sessions.push_back(service.OpenSession("tenant-" + std::to_string(c)));
  }
  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRequests; ++r) {
        const size_t qi = static_cast<size_t>(c + r) % queries.size();
        const Query& q = queries[qi];
        serve::TuningService::Response resp =
            (r % 2 == 0)
                ? service.SubmitRecommend(sessions[c], *q.app, q.data, q.env)
                      .get()
                : service.Recommend(sessions[c], *q.app, q.data, q.env);
        if (!resp.ok) {
          ++errors;
        } else if (resp.rec.config != want[qi].config ||
                   resp.rec.predicted_seconds != want[qi].predicted_seconds) {
          ++mismatches;
        }
      }
    });
  }
  for (int swap = 0; swap < 4; ++swap) {
    if (!service.LoadSnapshot(snap_dir)) ++errors;  // hot-swap under load.
  }
  for (auto& t : clients) t.join();
  service.Drain();
  Check(errors.load() == 0, "no failed request or swap under load", &failures);
  Check(mismatches.load() == 0,
        "every concurrent response bit-matches the direct reference",
        &failures);
  Check(service.stats().hot_swaps == 4, "4 hot-swaps recorded", &failures);

  // --- Phase 2: deterministic backpressure. -----------------------------
  std::cout << "\nPhase 2: backpressure at max_pending\n";
  serve::ServiceOptions bp_opts;
  bp_opts.max_pending = 2;
  bp_opts.scoring.threads = 1;
  serve::TuningService bp(&runner, bp_opts);
  Check(bp.LoadSnapshot(snap_dir), "backpressure service loaded", &failures);
  int bp_session = bp.OpenSession("tenant-bp");
  {
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();
    ThreadPool& pool = ThreadPool::Shared();
    std::vector<std::future<void>> parked;
    for (size_t i = 0; i < pool.size(); ++i) {
      parked.push_back(pool.Submit([opened] { opened.wait(); }));
    }
    const Query& q = queries[0];
    auto a = bp.SubmitRecommend(bp_session, *q.app, q.data, q.env);
    auto b = bp.SubmitRecommend(bp_session, *q.app, q.data, q.env);
    auto c = bp.SubmitRecommend(bp_session, *q.app, q.data, q.env);
    serve::TuningService::Response turned_away = c.get();
    Check(turned_away.rejected && !turned_away.ok,
          "3rd request rejected immediately while 2 are pending", &failures);
    gate.set_value();
    for (auto& f : parked) f.get();
    serve::TuningService::Response ra = a.get();
    serve::TuningService::Response rb = b.get();
    Check(ra.ok && rb.ok, "accepted requests completed after the stall",
          &failures);
    Check(ra.rec.config == want[0].config && rb.rec.config == want[0].config,
          "completed responses still bit-match the reference", &failures);
  }
  serve::TuningService::Stats bp_stats = bp.stats();
  Check(bp_stats.submitted == 3 && bp_stats.rejected == 1 &&
            bp_stats.completed == 2 && bp_stats.failed == 0,
        "backpressure stats: 3 submitted = 2 completed + 1 rejected",
        &failures);

  // --- Phase 3: off-path adaptive update. -------------------------------
  std::cout << "\nPhase 3: feedback-driven off-path update\n";
  serve::ServiceOptions up_opts;
  up_opts.update_batch = 1;  // first feedback batch triggers the update.
  up_opts.update.epochs = 1;
  serve::TuningService up(&runner, up_opts);
  Check(up.LoadSnapshot(snap_dir), "update service loaded", &failures);
  int up_session = up.OpenSession("tenant-up");
  auto before = up.CurrentSnapshot();
  const Query& q = queries[1];
  spark::Config probe = spark::KnobSpace::Spark16().DefaultConfig();
  spark::AppRunResult run =
      runner.cost_model().Run(*q.app, q.data, q.env, probe);
  Check(up.SubmitFeedback(up_session, *q.app, q.data, q.env, probe, run),
        "feedback accepted", &failures);
  up.DrainUpdates();
  auto after = up.CurrentSnapshot();
  Check(before.get() != after.get(),
        "adaptive update swapped in a fine-tuned clone", &failures);
  Check(up.stats().adaptive_updates == 1 && up.pending_feedback() == 0,
        "update accounted and feedback queue drained", &failures);
  serve::TuningService::Response post =
      up.Recommend(up_session, *q.app, q.data, q.env);
  Check(post.ok && post.rec.candidates_evaluated > 0,
        "serving continues on the updated snapshot", &failures);

  // --- Phase 4: guardrail regression storm. -----------------------------
  std::cout << "\nPhase 4: guardrail quarantine, fallback and recovery\n";
  serve::ServiceOptions gopts;
  gopts.update_batch = 0;  // keep the model frozen during the storm.
  gopts.guardrail.enabled = true;
  gopts.guardrail.window = 8;
  gopts.guardrail.min_observations = 4;
  gopts.guardrail.failure_rate_threshold = 0.5;
  gopts.guardrail.quarantine_cooldown = 3;
  gopts.guardrail.probe_interval = 2;
  gopts.guardrail.probes_to_close = 2;
  serve::TuningService guarded(&runner, gopts);
  Check(guarded.LoadSnapshot(snap_dir), "guarded service loaded", &failures);
  int g_session = guarded.OpenSession("tenant-storm");
  serve::Guardrail* guard = guarded.guardrail();
  Check(guard != nullptr, "guardrail constructed when enabled", &failures);

  const Query& gq = queries[0];
  spark::Config baseline = spark::KnobSpace::Spark16().DefaultConfig();
  spark::MeasureOutcome healthy;
  healthy.seconds = 12.0;
  healthy.result = runner.cost_model().Run(*gq.app, gq.data, gq.env, baseline);
  Check(guarded.SubmitFeedback(g_session, *gq.app, gq.data, gq.env, baseline,
                               healthy),
        "healthy feedback establishes the incumbent", &failures);
  Check(guard->HasIncumbent("tenant-storm"), "incumbent recorded", &failures);
  const size_t healthy_pending_after_incumbent = guarded.pending_feedback();

  // The storm: failed/censored outcomes for model-chosen configs.
  spark::MeasureOutcome stormy;
  stormy.seconds = 600.0;
  stormy.failed = true;
  stormy.censored = true;
  spark::Config regressed(spark::kNumKnobs, 0.9);
  for (int i = 0; i < 4; ++i) {
    guarded.SubmitFeedback(g_session, *gq.app, gq.data, gq.env, regressed,
                           stormy);
  }
  Check(guard->StateOf("tenant-storm") == serve::BreakerState::kQuarantined,
        "regression storm quarantined the tenant", &failures);
  Check(guarded.pending_feedback() == healthy_pending_after_incumbent,
        "failed/censored runs never reached the update batch", &failures);

  // Quarantined serving: incumbent verbatim, zero candidates evaluated.
  int incumbent_served = 0;
  for (int i = 0; i < 3; ++i) {
    serve::TuningService::Response r =
        guarded.Recommend(g_session, *gq.app, gq.data, gq.env);
    if (r.ok && r.from_incumbent && r.rec.config == baseline &&
        r.rec.candidates_evaluated == 0) {
      ++incumbent_served;
    }
  }
  Check(incumbent_served == 3,
        "quarantined requests served the incumbent verbatim", &failures);
  Check(guard->StateOf("tenant-storm") == serve::BreakerState::kProbing,
        "cooldown half-opened the breaker", &failures);

  // Probe cadence: incumbent, then a model probe.
  serve::TuningService::Response off_tick =
      guarded.Recommend(g_session, *gq.app, gq.data, gq.env);
  serve::TuningService::Response probe_r =
      guarded.Recommend(g_session, *gq.app, gq.data, gq.env);
  Check(off_tick.ok && off_tick.from_incumbent,
        "probing off-tick still serves the incumbent", &failures);
  Check(probe_r.ok && probe_r.probe && !probe_r.from_incumbent &&
            probe_r.rec.candidates_evaluated > 0,
        "probe tick evaluates the model", &failures);

  // Healthy probe feedback closes the breaker.
  spark::MeasureOutcome probe_ok;
  probe_ok.seconds = 13.0;
  probe_ok.result =
      runner.cost_model().Run(*gq.app, gq.data, gq.env, probe_r.rec.config);
  guarded.SubmitFeedback(g_session, *gq.app, gq.data, gq.env,
                         probe_r.rec.config, probe_ok);
  guarded.SubmitFeedback(g_session, *gq.app, gq.data, gq.env,
                         probe_r.rec.config, probe_ok);
  Check(guard->StateOf("tenant-storm") == serve::BreakerState::kClosed,
        "healthy probes recovered the tenant", &failures);
  serve::Guardrail::Stats gstats = guard->stats();
  Check(gstats.trips == 1 && gstats.recoveries == 1,
        "guardrail stats: 1 trip, 1 recovery", &failures);
  Check(!guard->TransitionLog().empty() &&
            guard->TransitionLog().back().to == serve::BreakerState::kClosed,
        "transition log ends CLOSED", &failures);

  // --- Phase 5: accounting (exact stats/metrics agreement). -------------
  std::cout << "\nPhase 5: stats vs metrics accounting (exact)\n";
  serve::TuningService::Stats stats = service.stats();
  Check(stats.submitted == static_cast<uint64_t>(kClients) * kRequests,
        "phase-1 service saw every submission", &failures);
  Check(stats.completed + stats.rejected + stats.failed == stats.submitted,
        "completed + rejected + failed == submitted", &failures);
  serve::TuningService::Stats up_stats = up.stats();
  serve::TuningService::Stats g_stats = guarded.stats();
  const uint64_t req_total = CounterValue("serve_requests_total") - req_before;
  // Stats and metrics publish in the same critical section, so the summed
  // deltas must agree exactly — not approximately.
  Check(req_total == stats.submitted + bp_stats.submitted +
                         up_stats.submitted + g_stats.submitted,
        "serve_requests_total == sum of every driver's submitted (exact)",
        &failures);
  Check(CounterValue("serve_completed_total") - completed_before ==
            stats.completed + bp_stats.completed + up_stats.completed +
                g_stats.completed,
        "serve_completed_total == sum of completed (exact)", &failures);
  Check(CounterValue("serve_rejected_total") - rejected_before ==
            stats.rejected + bp_stats.rejected + up_stats.rejected +
                g_stats.rejected,
        "serve_rejected_total == sum of rejected (exact)", &failures);
  Check(CounterValue("serve_sessions_total") - sessions_before ==
            stats.sessions + bp_stats.sessions + up_stats.sessions +
                g_stats.sessions,
        "serve_sessions_total == sum of sessions (exact)", &failures);
  Check(CounterValue("serve_hot_swaps_total") - swaps_before ==
            stats.hot_swaps + bp_stats.hot_swaps + up_stats.hot_swaps +
                g_stats.hot_swaps,
        "serve_hot_swaps_total == sum of hot swaps (exact)", &failures);
  Check(CounterValue("serve_adaptive_updates_total") - updates_before ==
            stats.adaptive_updates + bp_stats.adaptive_updates +
                up_stats.adaptive_updates + g_stats.adaptive_updates,
        "serve_adaptive_updates_total == sum of updates (exact)", &failures);
  Check(CounterValue("serve_feedback_dropped_bad_total") - dropped_before ==
            g_stats.bad_feedback_dropped && g_stats.bad_feedback_dropped == 4,
        "serve_feedback_dropped_bad_total == 4 gated storm runs (exact)",
        &failures);
  Check(CounterValue("serve_guardrail_trips_total") - trips_before ==
            gstats.trips,
        "serve_guardrail_trips_total matches guardrail stats (exact)",
        &failures);

  std::cout << (failures == 0 ? "\nlite_serve: PASS"
                              : "\nlite_serve: FAIL (" +
                                    std::to_string(failures) + " check(s))")
            << "\n";
  return failures == 0 ? 0 : 1;
}
