// lite_cli — command-line front end for the LITE reproduction.
//
// Subcommands:
//   catalog                      list applications, knobs, and clusters
//   simulate  <App>              run one application in the simulator
//   train     --out <dir>        offline-train a LiteSystem and snapshot it
//   recommend <App> --model <dir> recommend knobs from a snapshot
//   evaluate  --model <dir>      HR@5/NDCG@5 of a snapshot on validation data
//   sweep     <App> <knob>       print a knob response curve
//   dag       <App>              Graphviz dot of every stage's scheduler DAG
//   explain   <App> --model <dir> per-stage predicted vs simulated breakdown
//
// Examples:
//   lite_cli catalog
//   lite_cli simulate PageRank --size-mb 160 --cluster A --event-log
//   lite_cli train --out /tmp/lite-model --epochs 20
//   lite_cli recommend KMeans --model /tmp/lite-model --cluster C
//   lite_cli sweep TeraSort spark.executor.cores --cluster A
#include <filesystem>
#include <iostream>

#include "lite/snapshot.h"
#include "sparksim/trace.h"
#include "util/ranking_metrics.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace lite {
namespace {

int CmdCatalog() {
  TablePrinter apps({"Abbrev", "Application", "Class", "Stages", "Iterations",
                     "Train sizes (MB)", "Test size (MB)"});
  for (const auto& a : spark::AppCatalog::All()) {
    std::string sizes;
    for (double s : a.train_sizes_mb) sizes += TablePrinter::Fmt(s, 0) + " ";
    apps.AddRow({a.abbrev, a.name, spark::AppClassName(a.app_class),
                 std::to_string(a.stages.size()),
                 std::to_string(a.default_iterations), sizes,
                 TablePrinter::Fmt(a.test_size_mb, 0)});
  }
  apps.Print(std::cout, "Applications (spark-bench, Table V)");

  TablePrinter knobs({"Knob", "Type", "Range", "Default", "Description"});
  for (const auto& k : spark::KnobSpace::Spark16().specs()) {
    std::string type = k.type == spark::KnobType::kInt    ? "int"
                       : k.type == spark::KnobType::kBool ? "bool"
                                                          : "float";
    knobs.AddRow({k.name, type,
                  TablePrinter::Fmt(k.min_value, 1) + ".." +
                      TablePrinter::Fmt(k.max_value, 1),
                  TablePrinter::Fmt(k.default_value, 1), k.description});
  }
  knobs.Print(std::cout, "Configuration knobs (Table IV)");

  TablePrinter clusters({"Cluster", "Nodes", "Cores/node", "CPU GHz",
                         "Mem GB/node", "Mem MT/s", "Net Gbps"});
  for (const auto& c : spark::ClusterEnv::AllClusters()) {
    clusters.AddRow({c.name, std::to_string(c.num_nodes),
                     std::to_string(c.cores_per_node),
                     TablePrinter::Fmt(c.cpu_ghz, 1),
                     TablePrinter::Fmt(c.memory_gb_per_node, 0),
                     TablePrinter::Fmt(c.memory_mts, 0),
                     TablePrinter::Fmt(c.network_gbps, 0)});
  }
  clusters.Print(std::cout, "Clusters (Table III)");
  return 0;
}

spark::ClusterEnv ClusterByName(const std::string& name) {
  for (const auto& c : spark::ClusterEnv::AllClusters()) {
    if (c.name == name) return c;
  }
  std::cerr << "unknown cluster '" << name << "', using A\n";
  return spark::ClusterEnv::ClusterA();
}

int CmdSimulate(const FlagParser& flags) {
  if (flags.positional().size() < 2) {
    std::cerr << "usage: lite_cli simulate <App> [--size-mb N] [--cluster A|B|C]"
                 " [--event-log] [--set knob=value,...]\n";
    return 1;
  }
  const auto* app = spark::AppCatalog::Find(flags.positional()[1]);
  if (app == nullptr) {
    std::cerr << "unknown application " << flags.positional()[1] << "\n";
    return 1;
  }
  spark::ClusterEnv env = ClusterByName(flags.GetString("cluster"));
  double size = flags.GetDouble("size-mb");
  if (size <= 0) size = app->train_sizes_mb.back();
  spark::DataSpec data = app->MakeData(size);

  const auto& space = spark::KnobSpace::Spark16();
  spark::Config config = space.DefaultConfig();
  std::string overrides = flags.GetString("set");
  if (!overrides.empty()) {
    for (const auto& kv : Split(overrides, ',')) {
      auto parts = Split(kv, '=');
      if (parts.size() != 2) {
        std::cerr << "bad --set entry '" << kv << "'\n";
        return 1;
      }
      int idx = space.IndexOf(Trim(parts[0]));
      if (idx < 0) {
        std::cerr << "unknown knob '" << parts[0] << "'\n";
        return 1;
      }
      config[static_cast<size_t>(idx)] = std::stod(parts[1]);
    }
    config = space.Clamp(config);
  }

  spark::SparkRunner runner;
  spark::Submission sub = runner.Submit(*app, data, env, config);
  std::cout << app->name << " on " << size << "MB, cluster " << env.name
            << ": " << (sub.result.failed
                            ? "FAILED (" + sub.result.failure_reason + ")"
                            : TablePrinter::Fmt(sub.result.total_seconds, 1) + "s")
            << " across " << sub.result.stage_runs.size() << " stage executions\n";
  std::string trace_path = flags.GetString("trace");
  if (!trace_path.empty()) {
    if (spark::WriteChromeTraceFile(*app, sub.result, trace_path)) {
      std::cout << "chrome trace written to " << trace_path
                << " (open in chrome://tracing)\n";
    } else {
      std::cerr << "could not write trace to " << trace_path << "\n";
    }
  }
  if (flags.GetBool("event-log")) {
    std::cout << sub.event_log;
  } else {
    TablePrinter stages({"Stage", "Iter", "Seconds", "Tasks", "Waves",
                         "Shuffle MB", "Spill MB"});
    size_t shown = 0;
    for (const auto& sr : sub.result.stage_runs) {
      if (++shown > 12) {
        stages.AddRow({"...", "", "", "", "", "", ""});
        break;
      }
      stages.AddRow({app->stages[sr.stage_index].name,
                     std::to_string(sr.iteration), TablePrinter::Fmt(sr.seconds, 2),
                     std::to_string(sr.tasks), std::to_string(sr.waves),
                     TablePrinter::Fmt(sr.shuffle_mb, 1),
                     TablePrinter::Fmt(sr.spill_mb, 1)});
    }
    stages.Print(std::cout);
  }
  return 0;
}

int CmdTrain(const FlagParser& flags) {
  std::string out = flags.GetString("out");
  if (out.empty()) {
    std::cerr << "usage: lite_cli train --out <dir> [--epochs N] "
                 "[--configs-per-setting N] [--ensemble N]\n";
    return 1;
  }
  std::filesystem::create_directories(out);
  spark::SparkRunner runner;
  LiteOptions opts;
  opts.corpus.clusters = spark::ClusterEnv::AllClusters();
  opts.corpus.configs_per_setting =
      static_cast<size_t>(flags.GetInt("configs-per-setting"));
  opts.train.epochs = static_cast<size_t>(flags.GetInt("epochs"));
  opts.ensemble_size = static_cast<size_t>(flags.GetInt("ensemble"));
  opts.acg.top_fraction = flags.GetDouble("top-fraction");
  opts.num_candidates = static_cast<size_t>(flags.GetInt("candidates"));
  LiteSystem system(&runner, opts);
  std::cout << "Collecting corpus and training (this runs the offline phase)...\n";
  system.TrainOffline();
  std::cout << "  " << system.corpus().instances.size() << " stage instances, "
            << system.ensemble_size() << " model(s)\n";
  if (!SaveSnapshot(system, out)) {
    std::cerr << "failed to write snapshot to " << out << "\n";
    return 1;
  }
  std::cout << "Snapshot written to " << out << "\n";
  return 0;
}

int CmdRecommend(const FlagParser& flags) {
  if (flags.positional().size() < 2 || flags.GetString("model").empty()) {
    std::cerr << "usage: lite_cli recommend <App> --model <dir> "
                 "[--size-mb N] [--cluster A|B|C]\n";
    return 1;
  }
  const auto* app = spark::AppCatalog::Find(flags.positional()[1]);
  if (app == nullptr) {
    std::cerr << "unknown application " << flags.positional()[1] << "\n";
    return 1;
  }
  spark::SparkRunner runner;
  auto model = LoadedLiteModel::Load(flags.GetString("model"), &runner);
  if (model == nullptr) {
    std::cerr << "could not load snapshot from " << flags.GetString("model") << "\n";
    return 1;
  }
  spark::ClusterEnv env = ClusterByName(flags.GetString("cluster"));
  double size = flags.GetDouble("size-mb");
  if (size <= 0) size = app->test_size_mb;
  spark::DataSpec data = app->MakeData(size);

  LiteSystem::Recommendation rec = model->Recommend(*app, data, env);
  std::cout << "Recommendation for " << app->name << " (" << size
            << "MB, cluster " << env.name << "), computed in "
            << TablePrinter::Fmt(rec.recommend_wall_seconds, 3) << "s:\n";
  const auto& space = spark::KnobSpace::Spark16();
  for (size_t d = 0; d < space.size(); ++d) {
    std::cout << "  " << space.spec(d).name << " = " << rec.config[d] << "\n";
  }
  double t_rec = runner.Measure(*app, data, env, rec.config);
  double t_def = runner.Measure(*app, data, env, space.DefaultConfig());
  std::cout << "simulated execution: " << TablePrinter::Fmt(t_rec, 1)
            << "s (defaults: " << TablePrinter::Fmt(t_def, 1) << "s, speedup "
            << TablePrinter::Fmt(t_def / t_rec, 2) << "x)\n";
  return 0;
}

int CmdExplain(const FlagParser& flags) {
  if (flags.positional().size() < 2 || flags.GetString("model").empty()) {
    std::cerr << "usage: lite_cli explain <App> --model <dir> [--size-mb N] "
                 "[--cluster A|B|C] [--set knob=value,...]\n";
    return 1;
  }
  const auto* app = spark::AppCatalog::Find(flags.positional()[1]);
  if (app == nullptr) {
    std::cerr << "unknown application\n";
    return 1;
  }
  spark::SparkRunner runner;
  auto model = LoadedLiteModel::Load(flags.GetString("model"), &runner);
  if (model == nullptr) {
    std::cerr << "could not load snapshot\n";
    return 1;
  }
  spark::ClusterEnv env = ClusterByName(flags.GetString("cluster"));
  double size = flags.GetDouble("size-mb");
  if (size <= 0) size = app->test_size_mb;
  spark::DataSpec data = app->MakeData(size);
  const auto& space = spark::KnobSpace::Spark16();
  spark::Config config = space.DefaultConfig();
  std::string overrides = flags.GetString("set");
  if (!overrides.empty()) {
    for (const auto& kv : Split(overrides, ',')) {
      auto parts = Split(kv, '=');
      int idx = parts.size() == 2 ? space.IndexOf(Trim(parts[0])) : -1;
      if (idx < 0) {
        std::cerr << "bad --set entry '" << kv << "'\n";
        return 1;
      }
      config[static_cast<size_t>(idx)] = std::stod(parts[1]);
    }
    config = space.Clamp(config);
  }

  // Ground truth from the simulator vs the model's per-stage view.
  spark::AppRunResult run = runner.cost_model().Run(*app, data, env, config);
  CorpusBuilder builder(&runner);
  CandidateEval ce = builder.FeaturizeCandidate(model->feature_space(), *app,
                                                data, env, config);
  TablePrinter table({"Stage", "reps", "predicted total (s)", "simulated total (s)"});
  std::vector<double> sim_per_spec(app->stages.size(), 0.0);
  for (const auto& sr : run.stage_runs) sim_per_spec[sr.stage_index] += sr.seconds;
  double pred_total = 0.0;
  for (size_t i = 0; i < ce.stage_instances.size(); ++i) {
    double score = 0.0;
    for (size_t m = 0; m < model->ensemble_size(); ++m) {
      score += model->model(m)->PredictTarget(ce.stage_instances[i]);
    }
    score /= static_cast<double>(model->ensemble_size());
    double pred = SecondsFromTarget(score) * ce.stage_reps[i];
    pred_total += pred;
    size_t spec = ce.stage_instances[i].stage_index;
    table.AddRow({app->stages[spec].name, std::to_string(ce.stage_reps[i]),
                  TablePrinter::Fmt(pred, 1),
                  TablePrinter::Fmt(sim_per_spec[spec], 1)});
  }
  table.AddRow({"TOTAL", "", TablePrinter::Fmt(pred_total, 1),
                TablePrinter::Fmt(run.failed ? runner.failure_cap_seconds()
                                             : run.total_seconds,
                                  1)});
  table.Print(std::cout, app->name + " (" + std::to_string(size) + "MB, cluster " +
                             env.name + ")" + (run.failed ? " [RUN FAILED: " +
                             run.failure_reason + "]" : ""));
  std::cout << "\n(Predictions extrapolate from small-data training; expect the\n"
               "ranking to be far better than the absolute scale — Section V-C.)\n";
  return 0;
}

int CmdDag(const FlagParser& flags) {
  if (flags.positional().size() < 2) {
    std::cerr << "usage: lite_cli dag <App>\n";
    return 1;
  }
  const auto* app = spark::AppCatalog::Find(flags.positional()[1]);
  if (app == nullptr) {
    std::cerr << "unknown application " << flags.positional()[1] << "\n";
    return 1;
  }
  // One digraph per stage; pipe through `dot -Tsvg` to render.
  std::cout << "// " << app->name << " stage-level scheduler DAGs\n";
  for (size_t si = 0; si < app->stages.size(); ++si) {
    spark::StageDag dag = spark::BuildStageDag(app->stages[si]);
    std::cout << "digraph stage_" << si << " {\n"
              << "  label=\"" << app->abbrev << " stage " << si << ": "
              << app->stages[si].name << "\";\n"
              << "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
    for (size_t n = 0; n < dag.node_ops.size(); ++n) {
      std::cout << "  n" << n << " [label=\"" << dag.node_ops[n] << "\"";
      if (spark::IsShuffleOp(dag.node_ops[n])) std::cout << ", style=filled";
      std::cout << "];\n";
    }
    for (const auto& [u, v] : dag.edges) {
      std::cout << "  n" << u << " -> n" << v << ";\n";
    }
    std::cout << "}\n";
  }
  return 0;
}

int CmdEvaluate(const FlagParser& flags) {
  if (flags.GetString("model").empty()) {
    std::cerr << "usage: lite_cli evaluate --model <dir> [--cluster A|B|C] "
                 "[--candidates N]\n";
    return 1;
  }
  spark::SparkRunner runner;
  auto model = LoadedLiteModel::Load(flags.GetString("model"), &runner);
  if (model == nullptr) {
    std::cerr << "could not load snapshot\n";
    return 1;
  }
  spark::ClusterEnv env = ClusterByName(flags.GetString("cluster"));
  size_t n = static_cast<size_t>(flags.GetInt("candidates"));
  CorpusBuilder builder(&runner);
  std::vector<RankingCase> cases = builder.BuildRankingCases(
      model->feature_space(), {}, env,
      [](const spark::ApplicationSpec& a) { return a.validation_size_mb; },
      n, 777);

  TablePrinter table({"App", "HR@5", "NDCG@5", "best pred t (s)", "true best (s)"});
  double hr_sum = 0, ndcg_sum = 0;
  for (const auto& rc : cases) {
    std::vector<double> pred, truth;
    for (const auto& cand : rc.candidates) {
      double score = 0.0;
      for (size_t m = 0; m < model->ensemble_size(); ++m) {
        score += std::log1p(std::max(model->model(m)->PredictAppSeconds(cand), 0.0));
      }
      pred.push_back(score);
      truth.push_back(cand.true_seconds);
    }
    double hr = HitRatioAtK(pred, truth, 5);
    double ndcg = NdcgAtK(pred, truth, 5);
    hr_sum += hr;
    ndcg_sum += ndcg;
    size_t best_pred = TopKIndices(pred, 1)[0];
    table.AddRow({rc.app->abbrev, TablePrinter::Fmt(hr, 3),
                  TablePrinter::Fmt(ndcg, 3),
                  TablePrinter::Fmt(truth[best_pred], 1),
                  TablePrinter::Fmt(*std::min_element(truth.begin(), truth.end()), 1)});
  }
  double count = static_cast<double>(cases.size());
  table.AddRow({"MEAN", TablePrinter::Fmt(hr_sum / count, 3),
                TablePrinter::Fmt(ndcg_sum / count, 3), "", ""});
  table.Print(std::cout, "Snapshot ranking quality (validation data, cluster " +
                             env.name + ")");
  return 0;
}

int CmdSweep(const FlagParser& flags) {
  if (flags.positional().size() < 3) {
    std::cerr << "usage: lite_cli sweep <App> <knob> [--size-mb N] "
                 "[--cluster A|B|C] [--steps N]\n";
    return 1;
  }
  const auto* app = spark::AppCatalog::Find(flags.positional()[1]);
  const auto& space = spark::KnobSpace::Spark16();
  int knob = space.IndexOf(flags.positional()[2]);
  if (app == nullptr || knob < 0) {
    std::cerr << "unknown application or knob\n";
    return 1;
  }
  spark::ClusterEnv env = ClusterByName(flags.GetString("cluster"));
  double size = flags.GetDouble("size-mb");
  if (size <= 0) size = app->validation_size_mb;
  spark::DataSpec data = app->MakeData(size);
  spark::SparkRunner runner;

  const auto& spec = space.spec(static_cast<size_t>(knob));
  long steps = std::max(flags.GetInt("steps"), 2L);
  TablePrinter table({spec.name, "exec time (s)"});
  for (long i = 0; i < steps; ++i) {
    double v = spec.min_value +
               (spec.max_value - spec.min_value) * static_cast<double>(i) /
                   static_cast<double>(steps - 1);
    spark::Config c = space.DefaultConfig();
    c[static_cast<size_t>(knob)] = v;
    c = space.Clamp(c);
    table.AddRow({TablePrinter::Fmt(c[static_cast<size_t>(knob)], 2),
                  TablePrinter::Fmt(runner.Measure(*app, data, env, c), 1)});
  }
  table.Print(std::cout, app->name + " response to " + spec.name);
  return 0;
}

int Usage() {
  std::cerr << "lite_cli — LITE Spark-tuning reproduction CLI\n"
               "subcommands: catalog | simulate | train | recommend | evaluate |\n"
               "             explain | sweep | dag\n"
               "run 'lite_cli <subcommand>' with no args for usage.\n";
  return 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  FlagParser flags;
  flags.AddString("cluster", "A", "evaluation cluster (A, B, or C)");
  flags.AddDouble("size-mb", 0, "input datasize in MB (0 = app default)");
  flags.AddBool("event-log", false, "print the JSON event log");
  flags.AddString("set", "", "knob overrides: name=value,name=value");
  flags.AddString("trace", "", "write a chrome://tracing JSON of the run");
  flags.AddString("out", "", "snapshot output directory (train)");
  flags.AddString("model", "", "snapshot directory (recommend)");
  flags.AddInt("epochs", 20, "NECS training epochs");
  flags.AddInt("configs-per-setting", 5, "sampled configs per (app,size,cluster)");
  flags.AddInt("ensemble", 2, "NECS ensemble size");
  flags.AddDouble("top-fraction", 0.25, "ACG top-instance fraction");
  flags.AddInt("candidates", 160, "candidates sampled per recommendation");
  flags.AddInt("steps", 8, "sweep steps");
  std::string error;
  if (!flags.Parse(argc - 1, argv + 1, &error)) {
    std::cerr << error << "\n" << flags.HelpText();
    return 1;
  }
  if (flags.positional().empty()) return Usage();
  const std::string& cmd = flags.positional()[0];
  if (cmd == "catalog") return CmdCatalog();
  if (cmd == "simulate") return CmdSimulate(flags);
  if (cmd == "train") return CmdTrain(flags);
  if (cmd == "recommend") return CmdRecommend(flags);
  if (cmd == "evaluate") return CmdEvaluate(flags);
  if (cmd == "sweep") return CmdSweep(flags);
  if (cmd == "dag") return CmdDag(flags);
  if (cmd == "explain") return CmdExplain(flags);
  return Usage();
}

}  // namespace
}  // namespace lite

int main(int argc, char** argv) { return lite::Main(argc, argv); }
