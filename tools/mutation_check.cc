// Mutation adequacy check for the simulator invariant oracle: every known
// cost-model bug in the CostModelMutation catalog must trip at least one
// invariant, and the unmutated model must trip none. Run as a CTest test
// (tools/mutation_check) or standalone:
//
//   ./build/tools/mutation_check            # full sweep, table on stdout
//   LITE_TEST_SEED=7 ./build/tools/mutation_check
//
// Exit status is non-zero when any mutation escapes the oracle or the clean
// model produces a false positive.
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sparksim/application.h"
#include "sparksim/cost_model.h"
#include "sparksim/environment.h"
#include "sparksim/knob.h"
#include "testkit/gen.h"
#include "testkit/oracle.h"
#include "util/logging.h"

namespace lite::testkit {
namespace {

const char* MutationName(int m) {
  switch (m) {
    case spark::kMutNone: return "none";
    case spark::kMutDropShuffle: return "drop_shuffle";
    case spark::kMutSpillSignFlip: return "spill_sign_flip";
    case spark::kMutWaveFloor: return "wave_floor";
    case spark::kMutWaveOffByOne: return "wave_off_by_one";
    case spark::kMutIgnoreOom: return "ignore_oom";
    case spark::kMutUncappedFailure: return "uncapped_failure";
    case spark::kMutContentionInverted: return "contention_inverted";
    case spark::kMutIterationGrowth: return "iteration_growth";
    case spark::kMutStatefulNoise: return "stateful_noise";
    default: return "unknown";
  }
}

/// Builds a tuple with default knobs plus explicit overrides — the curated
/// corner cases that make each mutation observable (heavy spill, OOM
/// pressure, single-task stages, ...).
WorkloadTuple MakeTuple(const std::string& app, const spark::ClusterEnv& env,
                        double size_scale,
                        const std::vector<std::pair<size_t, double>>& overrides) {
  WorkloadTuple t;
  t.app = spark::AppCatalog::Find(app);
  LITE_CHECK(t.app != nullptr) << "unknown application " << app;
  double base = t.app->train_sizes_mb.empty() ? 50.0 : t.app->train_sizes_mb[0];
  t.data = t.app->MakeData(std::max(1.0, base * size_scale));
  t.env = env;
  const auto& space = spark::KnobSpace::Spark16();
  t.config = space.DefaultConfig();
  for (const auto& [knob, value] : overrides) t.config[knob] = value;
  t.config = space.Clamp(t.config);
  return t;
}

/// Targeted tuples: each curated case exists to make at least one mutation
/// class observable; together they also give the clean model a hard
/// false-positive gauntlet.
std::vector<WorkloadTuple> CuratedTuples() {
  const auto A = spark::ClusterEnv::ClusterA();
  const auto B = spark::ClusterEnv::ClusterB();
  const auto C = spark::ClusterEnv::ClusterC();
  const auto& space = spark::KnobSpace::Spark16();
  std::vector<WorkloadTuple> tuples;
  // Shuffle-heavy run (drop_shuffle canary).
  tuples.push_back(MakeTuple("TS", B, 4.0, {}));
  // Heavy spill without OOM: cramped execution memory (spill_sign_flip).
  tuples.push_back(MakeTuple(
      "PR", A, 4.0,
      {{spark::kExecutorMemory, space.spec(spark::kExecutorMemory).min_value},
       {spark::kMemoryFraction, space.spec(spark::kMemoryFraction).min_value}}));
  // OOM-pressure run (ignore_oom, uncapped_failure): execution memory per
  // task squeezed to ~2MB (1GB heap, min memory fraction, max storage
  // fraction, max cores per executor) while shuffle stages stage
  // 0.5 * maxSizeInFlight = 64MB of in-flight buffers — pressure far above
  // the OOM threshold.
  tuples.push_back(MakeTuple(
      "TS", A, 8.0,
      {{spark::kExecutorMemory, space.spec(spark::kExecutorMemory).min_value},
       {spark::kMemoryFraction, space.spec(spark::kMemoryFraction).min_value},
       {spark::kMemoryStorageFraction,
        space.spec(spark::kMemoryStorageFraction).max_value},
       {spark::kExecutorCores, space.spec(spark::kExecutorCores).max_value},
       {spark::kDefaultParallelism,
        space.spec(spark::kDefaultParallelism).min_value},
       {spark::kReducerMaxSizeInFlight,
        space.spec(spark::kReducerMaxSizeInFlight).max_value}}));
  // Tiny data, maximal partition size -> single-task stages
  // (wave_off_by_one: waves must never exceed tasks).
  tuples.push_back(MakeTuple(
      "WC", A, 0.02,
      {{spark::kFilesMaxPartitionBytes,
        space.spec(spark::kFilesMaxPartitionBytes).max_value},
       {spark::kDefaultParallelism,
        space.spec(spark::kDefaultParallelism).min_value}}));
  // Few executors on the single-node cluster -> instance doubling is
  // uncapped (contention_inverted via the executor-scaling law).
  tuples.push_back(MakeTuple(
      "KM", A, 1.0,
      {{spark::kExecutorInstances,
        space.spec(spark::kExecutorInstances).min_value}}));
  // Iterative applications with frontier decay < 1 (iteration_growth).
  tuples.push_back(MakeTuple("CC", B, 1.0, {}));
  tuples.push_back(MakeTuple("SP", C, 1.0, {}));
  // Plain defaults on every cluster (wave_floor, stateful_noise,
  // determinism and the serialization laws).
  tuples.push_back(MakeTuple("LiR", A, 1.0, {}));
  tuples.push_back(MakeTuple("TC", C, 2.0, {}));
  return tuples;
}

struct MutationResult {
  int mutation = 0;
  size_t violations = 0;
  size_t tuples_tripped = 0;
  std::set<std::string> invariants;
};

MutationResult SweepMutation(int mutation,
                             const std::vector<WorkloadTuple>& curated,
                             size_t random_cases, uint64_t seed) {
  spark::CostModelOptions model;
  model.mutation = mutation;
  SimulatorOracle oracle(model);

  MutationResult result;
  result.mutation = mutation;
  auto absorb = [&](const OracleReport& report) {
    if (!report.ok()) ++result.tuples_tripped;
    result.violations += report.violations.size();
    for (const auto& v : report.violations) result.invariants.insert(v.invariant);
  };

  for (const auto& t : curated) absorb(oracle.Check(t));
  // Random sweep on top of the curated set — same seed for every mutation so
  // a clean-model false positive and a mutant escape are directly comparable.
  TupleGenerator gen(GenOptions{}, seed);
  for (size_t i = 0; i < random_cases; ++i) absorb(oracle.Check(gen.Next()));
  return result;
}

int Main() {
  uint64_t seed = SeedFromEnv();
  size_t random_cases = CasesFromEnv("LITE_MUTATION_CASES", 25);
  std::vector<WorkloadTuple> curated = CuratedTuples();

  std::printf("mutation adequacy sweep: %zu curated + %zu random tuples, "
              "LITE_TEST_SEED=%llu\n\n",
              curated.size(), random_cases,
              static_cast<unsigned long long>(seed));
  std::printf("  %-20s %-10s %-10s %s\n", "mutation", "violations",
              "verdict", "invariants tripped");

  bool ok = true;
  int caught = 0;
  for (int m = 0; m < spark::kNumMutations; ++m) {
    MutationResult r = SweepMutation(m, curated, random_cases, seed);
    bool expected_clean = (m == spark::kMutNone);
    bool pass = expected_clean ? r.violations == 0 : r.violations > 0;
    if (!expected_clean && pass) ++caught;
    ok = ok && pass;

    std::string invariants;
    for (const auto& name : r.invariants) {
      if (!invariants.empty()) invariants += ", ";
      invariants += name;
    }
    if (invariants.empty()) invariants = "-";
    std::printf("  %-20s %-10zu %-10s %s\n", MutationName(m), r.violations,
                pass ? (expected_clean ? "clean" : "caught") : "ESCAPED",
                invariants.c_str());
  }

  int mutants = spark::kNumMutations - 1;
  std::printf("\n%s: %d/%d mutants detected, clean model %s\n",
              ok ? "PASS" : "FAIL", caught, mutants,
              ok ? "violation-free" : "see table");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace lite::testkit

int main() { return lite::testkit::Main(); }
