// Mutation adequacy check for the simulator invariant oracle: every known
// cost-model bug in the CostModelMutation catalog must trip at least one
// invariant, and the unmutated model must trip none. Run as a CTest test
// (tools/mutation_check) or standalone:
//
//   ./build/tools/mutation_check            # full sweep, table on stdout
//   LITE_TEST_SEED=7 ./build/tools/mutation_check
//
// Exit status is non-zero when any mutation escapes the oracle or the clean
// model produces a false positive.
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lite/lite_system.h"
#include "lite/necs.h"
#include "sparksim/application.h"
#include "sparksim/cost_model.h"
#include "sparksim/environment.h"
#include "sparksim/knob.h"
#include "sparksim/stage_planner.h"
#include "tensor/qkernels.h"
#include "testkit/diff.h"
#include "testkit/gen.h"
#include "testkit/oracle.h"
#include "util/logging.h"

namespace lite::testkit {
namespace {

const char* MutationName(int m) {
  switch (m) {
    case spark::kMutNone: return "none";
    case spark::kMutDropShuffle: return "drop_shuffle";
    case spark::kMutSpillSignFlip: return "spill_sign_flip";
    case spark::kMutWaveFloor: return "wave_floor";
    case spark::kMutWaveOffByOne: return "wave_off_by_one";
    case spark::kMutIgnoreOom: return "ignore_oom";
    case spark::kMutUncappedFailure: return "uncapped_failure";
    case spark::kMutContentionInverted: return "contention_inverted";
    case spark::kMutIterationGrowth: return "iteration_growth";
    case spark::kMutStatefulNoise: return "stateful_noise";
    default: return "unknown";
  }
}

/// Builds a tuple with default knobs plus explicit overrides — the curated
/// corner cases that make each mutation observable (heavy spill, OOM
/// pressure, single-task stages, ...).
WorkloadTuple MakeTuple(const std::string& app, const spark::ClusterEnv& env,
                        double size_scale,
                        const std::vector<std::pair<size_t, double>>& overrides) {
  WorkloadTuple t;
  t.app = spark::AppCatalog::Find(app);
  LITE_CHECK(t.app != nullptr) << "unknown application " << app;
  double base = t.app->train_sizes_mb.empty() ? 50.0 : t.app->train_sizes_mb[0];
  t.data = t.app->MakeData(std::max(1.0, base * size_scale));
  t.env = env;
  const auto& space = spark::KnobSpace::Spark16();
  t.config = space.DefaultConfig();
  for (const auto& [knob, value] : overrides) t.config[knob] = value;
  t.config = space.Clamp(t.config);
  return t;
}

/// Targeted tuples: each curated case exists to make at least one mutation
/// class observable; together they also give the clean model a hard
/// false-positive gauntlet.
std::vector<WorkloadTuple> CuratedTuples() {
  const auto A = spark::ClusterEnv::ClusterA();
  const auto B = spark::ClusterEnv::ClusterB();
  const auto C = spark::ClusterEnv::ClusterC();
  const auto& space = spark::KnobSpace::Spark16();
  std::vector<WorkloadTuple> tuples;
  // Shuffle-heavy run (drop_shuffle canary).
  tuples.push_back(MakeTuple("TS", B, 4.0, {}));
  // Heavy spill without OOM: cramped execution memory (spill_sign_flip).
  tuples.push_back(MakeTuple(
      "PR", A, 4.0,
      {{spark::kExecutorMemory, space.spec(spark::kExecutorMemory).min_value},
       {spark::kMemoryFraction, space.spec(spark::kMemoryFraction).min_value}}));
  // OOM-pressure run (ignore_oom, uncapped_failure): execution memory per
  // task squeezed to ~2MB (1GB heap, min memory fraction, max storage
  // fraction, max cores per executor) while shuffle stages stage
  // 0.5 * maxSizeInFlight = 64MB of in-flight buffers — pressure far above
  // the OOM threshold.
  tuples.push_back(MakeTuple(
      "TS", A, 8.0,
      {{spark::kExecutorMemory, space.spec(spark::kExecutorMemory).min_value},
       {spark::kMemoryFraction, space.spec(spark::kMemoryFraction).min_value},
       {spark::kMemoryStorageFraction,
        space.spec(spark::kMemoryStorageFraction).max_value},
       {spark::kExecutorCores, space.spec(spark::kExecutorCores).max_value},
       {spark::kDefaultParallelism,
        space.spec(spark::kDefaultParallelism).min_value},
       {spark::kReducerMaxSizeInFlight,
        space.spec(spark::kReducerMaxSizeInFlight).max_value}}));
  // Tiny data, maximal partition size -> single-task stages
  // (wave_off_by_one: waves must never exceed tasks).
  tuples.push_back(MakeTuple(
      "WC", A, 0.02,
      {{spark::kFilesMaxPartitionBytes,
        space.spec(spark::kFilesMaxPartitionBytes).max_value},
       {spark::kDefaultParallelism,
        space.spec(spark::kDefaultParallelism).min_value}}));
  // Few executors on the single-node cluster -> instance doubling is
  // uncapped (contention_inverted via the executor-scaling law).
  tuples.push_back(MakeTuple(
      "KM", A, 1.0,
      {{spark::kExecutorInstances,
        space.spec(spark::kExecutorInstances).min_value}}));
  // Iterative applications with frontier decay < 1 (iteration_growth).
  tuples.push_back(MakeTuple("CC", B, 1.0, {}));
  tuples.push_back(MakeTuple("SP", C, 1.0, {}));
  // Plain defaults on every cluster (wave_floor, stateful_noise,
  // determinism and the serialization laws).
  tuples.push_back(MakeTuple("LiR", A, 1.0, {}));
  tuples.push_back(MakeTuple("TC", C, 2.0, {}));
  return tuples;
}

struct MutationResult {
  int mutation = 0;
  size_t violations = 0;
  size_t tuples_tripped = 0;
  std::set<std::string> invariants;
};

MutationResult SweepMutation(int mutation,
                             const std::vector<WorkloadTuple>& curated,
                             size_t random_cases, uint64_t seed) {
  spark::CostModelOptions model;
  model.mutation = mutation;
  SimulatorOracle oracle(model);

  MutationResult result;
  result.mutation = mutation;
  auto absorb = [&](const OracleReport& report) {
    if (!report.ok()) ++result.tuples_tripped;
    result.violations += report.violations.size();
    for (const auto& v : report.violations) result.invariants.insert(v.invariant);
  };

  for (const auto& t : curated) absorb(oracle.Check(t));
  // Random sweep on top of the curated set — same seed for every mutation so
  // a clean-model false positive and a mutant escape are directly comparable.
  TupleGenerator gen(GenOptions{}, seed);
  for (size_t i = 0; i < random_cases; ++i) absorb(oracle.Check(gen.Next()));
  return result;
}

// ---------------------------------------------------------------------------
// Quantized-kernel mutation sweep: every deliberately-buggy kernel variant
// in the qk::QuantMutation catalog must trip the quantization-accuracy
// oracle (DiffQuantizationAccuracy with the shipped int8 error bound), and
// the unmutated kernels must pass it. All three mutations live in the int8
// GEMM, so the sweep scores through the int8 backend.

const char* QuantMutationName(qk::QuantMutation m) {
  switch (m) {
    case qk::QuantMutation::kNone: return "qk_none";
    case qk::QuantMutation::kDropZeroPoint: return "qk_drop_zero_point";
    case qk::QuantMutation::kTransposedTile: return "qk_transposed_tile";
    case qk::QuantMutation::kStaleActScale: return "qk_stale_act_scale";
  }
  return "qk_unknown";
}

// The bound quant_test.cc enforces for int8 (docs/QUANTIZATION.md).
constexpr double kInt8MaxRelError = 0.05;

bool SweepQuantMutations(uint64_t seed) {
  // A tiny trained system: the sweep only needs realistic weight and
  // activation distributions, not model quality.
  spark::SparkRunner runner;
  LiteOptions opts;
  opts.corpus.apps = {"TS", "PR", "KM"};
  opts.corpus.clusters = {spark::ClusterEnv::ClusterA()};
  opts.corpus.configs_per_setting = 2;
  opts.corpus.max_stage_instances_per_run = 5;
  opts.corpus.max_code_tokens = 64;
  opts.necs.emb_dim = 8;
  opts.necs.cnn_widths = {3, 4};
  opts.necs.cnn_kernels = 6;
  opts.necs.code_dim = 12;
  opts.necs.gcn_hidden = 8;
  opts.train.epochs = 1;
  opts.num_candidates = 8;
  opts.ensemble_size = 1;
  LiteSystem system(&runner, opts);
  system.TrainOffline();
  std::vector<const NecsModel*> models;
  for (size_t m = 0; m < system.ensemble_size(); ++m) {
    models.push_back(system.ensemble_member(m));
  }

  GenOptions gopts;
  gopts.apps = {"TS", "PR", "KM"};
  TupleGenerator gen(gopts, seed ^ 0x9717u);
  std::vector<WorkloadTuple> tuples;
  for (int i = 0; i < 3; ++i) tuples.push_back(gen.Next());
  std::vector<spark::Config> pool = {spark::KnobSpace::Spark16().DefaultConfig()};
  for (int i = 0; i < 7; ++i) {
    pool.push_back(spark::KnobSpace::Spark16().RandomConfig(gen.rng()));
  }

  std::printf("\nquantized-kernel mutation sweep: %zu tuples x %zu candidates,"
              " int8 bound %.3g\n\n",
              tuples.size(), pool.size(), kInt8MaxRelError);
  std::printf("  %-20s %-10s %s\n", "mutation", "verdict", "first divergence");

  bool ok = true;
  for (qk::QuantMutation m :
       {qk::QuantMutation::kNone, qk::QuantMutation::kDropZeroPoint,
        qk::QuantMutation::kTransposedTile,
        qk::QuantMutation::kStaleActScale}) {
    qk::SetQuantMutationForTest(m);
    // Drop the quantized twins: encodings cached under the previous mutation
    // must not leak into this pass.
    for (const NecsModel* model : models) model->InvalidateCache();
    bool tripped = false;
    std::string first_message;
    for (const WorkloadTuple& t : tuples) {
      DiffResult r = DiffQuantizationAccuracy(&runner, system.corpus(), models,
                                              t, pool, QuantBackend::kInt8,
                                              kInt8MaxRelError, {1});
      if (!r.ok) {
        tripped = true;
        if (first_message.empty()) first_message = r.message;
        break;
      }
    }
    bool expected_clean = (m == qk::QuantMutation::kNone);
    bool pass = expected_clean ? !tripped : tripped;
    ok = ok && pass;
    std::printf("  %-20s %-10s %s\n", QuantMutationName(m),
                pass ? (expected_clean ? "clean" : "caught") : "ESCAPED",
                first_message.empty() ? "-" : first_message.c_str());
  }
  qk::SetQuantMutationForTest(qk::QuantMutation::kNone);
  for (const NecsModel* model : models) model->InvalidateCache();
  return ok;
}

// ---------------------------------------------------------------------------
// Stage-planner mutation sweep: every deliberately-buggy planner variant in
// the spark::StageTuningMutation catalog must trip the stage-tuning oracle
// invariants (stage_override_dominance / retune_inertness), and the clean
// planner must pass them. The cost model stays unmutated throughout — these
// bugs live in the planner, not the simulator — so only the two planner
// invariants run.

const char* StageMutationName(int m) {
  switch (m) {
    case spark::kStageMutNone: return "sp_none";
    case spark::kStageMutWrongStageIndex: return "sp_wrong_stage_index";
    case spark::kStageMutInvertedDominance: return "sp_inverted_dominance";
    case spark::kStageMutStaleObservations: return "sp_stale_observations";
    case spark::kStageMutUnclampedOverride: return "sp_unclamped_override";
    default: return "sp_unknown";
  }
}

bool SweepStageMutations(const std::vector<WorkloadTuple>& curated,
                         size_t random_cases, uint64_t seed) {
  std::printf("\nstage-planner mutation sweep: %zu curated + %zu random "
              "tuples\n\n",
              curated.size(), random_cases);
  std::printf("  %-22s %-10s %-10s %s\n", "mutation", "violations", "verdict",
              "invariants tripped");

  bool ok = true;
  for (int m = 0; m < spark::kNumStageMutations; ++m) {
    OracleOptions oopts;
    oopts.stage_mutation = m;
    SimulatorOracle oracle(spark::CostModelOptions{}, oopts);

    size_t violations = 0;
    std::set<std::string> invariants;
    auto absorb = [&](const WorkloadTuple& t) {
      OracleReport report;
      oracle.CheckStageOverrideDominance(t, &report);
      oracle.CheckRetuneInertness(t, &report);
      violations += report.violations.size();
      for (const auto& v : report.violations) invariants.insert(v.invariant);
    };
    for (const auto& t : curated) absorb(t);
    TupleGenerator gen(GenOptions{}, seed ^ 0x57a6ed5u);
    for (size_t i = 0; i < random_cases; ++i) absorb(gen.Next());

    bool expected_clean = (m == spark::kStageMutNone);
    bool pass = expected_clean ? violations == 0 : violations > 0;
    ok = ok && pass;

    std::string names;
    for (const auto& name : invariants) {
      if (!names.empty()) names += ", ";
      names += name;
    }
    if (names.empty()) names = "-";
    std::printf("  %-22s %-10zu %-10s %s\n", StageMutationName(m), violations,
                pass ? (expected_clean ? "clean" : "caught") : "ESCAPED",
                names.c_str());
  }
  return ok;
}

int Main() {
  uint64_t seed = SeedFromEnv();
  size_t random_cases = CasesFromEnv("LITE_MUTATION_CASES", 25);
  std::vector<WorkloadTuple> curated = CuratedTuples();

  std::printf("mutation adequacy sweep: %zu curated + %zu random tuples, "
              "LITE_TEST_SEED=%llu\n\n",
              curated.size(), random_cases,
              static_cast<unsigned long long>(seed));
  std::printf("  %-20s %-10s %-10s %s\n", "mutation", "violations",
              "verdict", "invariants tripped");

  bool ok = true;
  int caught = 0;
  for (int m = 0; m < spark::kNumMutations; ++m) {
    MutationResult r = SweepMutation(m, curated, random_cases, seed);
    bool expected_clean = (m == spark::kMutNone);
    bool pass = expected_clean ? r.violations == 0 : r.violations > 0;
    if (!expected_clean && pass) ++caught;
    ok = ok && pass;

    std::string invariants;
    for (const auto& name : r.invariants) {
      if (!invariants.empty()) invariants += ", ";
      invariants += name;
    }
    if (invariants.empty()) invariants = "-";
    std::printf("  %-20s %-10zu %-10s %s\n", MutationName(m), r.violations,
                pass ? (expected_clean ? "clean" : "caught") : "ESCAPED",
                invariants.c_str());
  }

  int mutants = spark::kNumMutations - 1;
  std::printf("\n%s: %d/%d mutants detected, clean model %s\n",
              ok ? "PASS" : "FAIL", caught, mutants,
              ok ? "violation-free" : "see table");

  bool stage_ok = SweepStageMutations(curated, random_cases, seed);
  std::printf("\n%s: stage-planner mutants %s\n", stage_ok ? "PASS" : "FAIL",
              stage_ok ? "all detected, clean planner violation-free"
                       : "see table");

  bool quant_ok = SweepQuantMutations(seed);
  std::printf("\n%s: quantized-kernel mutants %s\n",
              quant_ok ? "PASS" : "FAIL",
              quant_ok ? "all detected, clean kernels violation-free"
                       : "see table");
  return (ok && stage_ok && quant_ok) ? 0 : 1;
}

}  // namespace
}  // namespace lite::testkit

int main() { return lite::testkit::Main(); }
