// obs_report: runs a canned LITE tuning session with full observability on
// — offline training, online recommendation, resilient feedback collection
// under fault injection, an adaptive model update, and a small baseline-
// tuner comparison — then exports and self-verifies the three observability
// artifacts:
//
//   obs_metrics.json   registry snapshot (round-trips ParseMetricsJson),
//   obs_metrics.prom   Prometheus text exposition,
//   obs_trace.json     unified Chrome trace: wall-clock tuning spans (tids
//                      < 1000) next to simulated stage executions (tids >=
//                      1000); load it in chrome://tracing or Perfetto.
//
// Exit status is nonzero when any artifact fails verification, so CTest
// runs this as an end-to-end observability check. Usage:
//   obs_report [output_dir]     (default: current directory)
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lite/lite_system.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sparksim/resilient_runner.h"
#include "sparksim/runner.h"
#include "sparksim/trace.h"
#include "tuning/experiment.h"
#include "tuning/simple_tuners.h"

using namespace lite;

namespace {

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

bool Check(bool ok, const std::string& what, int* failures) {
  std::cout << (ok ? "  [ok]   " : "  [FAIL] ") << what << "\n";
  if (!ok) ++*failures;
  return ok;
}

/// Tiny but complete LITE configuration: two applications, one cluster,
/// seconds of training — enough to light up every instrumented path.
LiteOptions CannedOptions() {
  LiteOptions opts;
  opts.corpus.apps = {"TS", "PR"};
  opts.corpus.clusters = {spark::ClusterEnv::ClusterA()};
  opts.corpus.configs_per_setting = 2;
  opts.corpus.max_stage_instances_per_run = 5;
  opts.corpus.max_code_tokens = 64;
  opts.necs.emb_dim = 8;
  opts.necs.cnn_widths = {3, 4};
  opts.necs.cnn_kernels = 6;
  opts.necs.code_dim = 12;
  opts.necs.gcn_hidden = 8;
  opts.train.epochs = 2;
  opts.num_candidates = 16;
  opts.ensemble_size = 2;
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = argc > 1 ? argv[1] : ".";
  std::filesystem::create_directories(out_dir);

  obs::SetEnabled(true);
  auto& registry = obs::MetricsRegistry::Global();
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();

  std::cout << "Training canned LITE system (2 apps, 1 cluster)...\n";
  spark::SparkRunner runner;
  LiteSystem system(&runner, CannedOptions());
  system.TrainOffline();

  // Record the online phase only: recommendation, resilient feedback with
  // injected faults, the adaptive update, and two baseline tuners.
  recorder.Start();
  recorder.SetThreadName(obs::CurrentThreadTid(), "tuning");

  const auto* app = spark::AppCatalog::Find("TS");
  spark::DataSpec data = app->MakeData(app->test_size_mb);
  const spark::ClusterEnv env = spark::ClusterEnv::ClusterA();

  LiteSystem::Recommendation rec = system.Recommend(*app, data, env);
  std::cout << "Recommendation: predicted "
            << rec.predicted_seconds << " s over " << rec.candidates_evaluated
            << " candidates\n";

  spark::ResilientRunner harness(
      &runner, spark::FaultPlan(spark::FaultOptions::Moderate(0xca11ab1e)));
  for (int i = 0; i < 3; ++i) {
    system.CollectFeedback(*app, data, env, rec.config, &harness);
  }
  UpdateStats update = system.ForceAdaptiveUpdate();
  std::cout << "Adaptive update: domain accuracy "
            << update.final_domain_accuracy << ", " << update.censored_targets
            << " censored target(s)\n";

  DefaultTuner default_tuner(&runner);
  ManualTuner manual_tuner(&runner);
  TuningTask task{app, data, env};
  CompareTuners({&default_tuner, &manual_tuner}, task, 7200.0);

  recorder.Stop();

  // Export the three artifacts.
  std::string metrics_json = registry.ToJson();
  std::string metrics_prom = registry.ToPrometheusText();
  std::string trace_json = recorder.ToChromeTrace();
  std::string json_path = out_dir + "/obs_metrics.json";
  std::string prom_path = out_dir + "/obs_metrics.prom";
  std::string trace_path = out_dir + "/obs_trace.json";

  int failures = 0;
  std::cout << "\nVerifying artifacts:\n";
  Check(WriteFile(json_path, metrics_json), "wrote " + json_path, &failures);
  Check(WriteFile(prom_path, metrics_prom), "wrote " + prom_path, &failures);
  Check(WriteFile(trace_path, trace_json), "wrote " + trace_path, &failures);

  // The JSON export must round-trip and agree with the live registry.
  obs::MetricsSnapshot parsed;
  if (Check(obs::ParseMetricsJson(metrics_json, &parsed),
            "obs_metrics.json round-trips ParseMetricsJson", &failures)) {
    obs::MetricsSnapshot live = registry.Snapshot();
    Check(parsed.counters == live.counters,
          "parsed counters match the live registry", &failures);
    Check(parsed.gauges == live.gauges, "parsed gauges match the live registry",
          &failures);
    Check(parsed.histograms.size() == live.histograms.size(),
          "parsed histogram set matches the live registry", &failures);
  }

  // Core series of every instrumented layer must be present and live.
  for (const char* name :
       {"lite_recommendations_total", "lite_candidates_scored_total",
        "necs_encoder_cache_lookups_total", "threadpool_tasks_executed_total",
        "resilient_submissions_total", "tuning_trials_total"}) {
    Check(registry.GetCounter(name)->Value() > 0,
          std::string(name) + " > 0", &failures);
  }
  Check(metrics_prom.find("# TYPE lite_recommend_seconds histogram") !=
            std::string::npos,
        "Prometheus export types the recommend latency histogram", &failures);
  Check(metrics_prom.find("tuning_recommendations_total{method=\"manual\"} 1") !=
            std::string::npos,
        "Prometheus export carries per-method tuner series", &failures);

  // The trace must parse back through the simulator-side parser and hold
  // both wall-clock tuning spans and simulated stage events.
  spark::ParsedChromeTrace trace;
  if (Check(spark::ParseChromeTrace(trace_json, &trace),
            "obs_trace.json round-trips ParseChromeTrace", &failures)) {
    size_t wall = 0, sim = 0;
    for (const auto& span : trace.spans) {
      (span.tid >= obs::kSimulatedTidBase ? sim : wall) += 1;
    }
    Check(wall > 0, "trace holds wall-clock tuning spans (" +
                        std::to_string(wall) + ")", &failures);
    Check(sim > 0, "trace holds simulated stage events (" +
                       std::to_string(sim) + ")", &failures);
    Check(trace.spans.size() == recorder.event_count(),
          "every recorded event survived the export", &failures);
  }

  std::cout << "\n=== Metrics (Prometheus exposition) ===\n"
            << metrics_prom << "\n";
  std::cout << (failures == 0 ? "obs_report: PASS"
                              : "obs_report: FAIL (" +
                                    std::to_string(failures) + " check(s))")
            << "\n";
  return failures == 0 ? 0 : 1;
}
