// Figure 8 reproduction: tuning-overhead case study on DecisionTree (DT)
// and LinearRegression (LiR). BO and DDPG are warm-started (like LITE, they
// see the small-data training instances) and then iterate on the large job,
// paying each trial's execution time; LITE recommends once after offline
// training. The plot is emitted as (timestamp, best-so-far) series.
#include <iostream>

#include "bench/bench_common.h"
#include "tuning/bo_tuner.h"
#include "tuning/ddpg.h"
#include "tuning/model_tuners.h"

using namespace lite;
using namespace lite::bench;

int main() {
  ScaleProfile profile = GetScaleProfile();
  spark::SparkRunner runner;
  std::cout << "Figure 8 — tuning overhead case study (scale=" << profile.name
            << ")\n";

  LiteOptions lopts;
  lopts.corpus = MakeCorpusOptions(profile, {}, spark::ClusterEnv::AllClusters());
  ApplyLiteProfile(profile, &lopts);
  LiteSystem lite_system(&runner, lopts);
  lite_system.TrainOffline();

  for (const char* name : {"DT", "LiR"}) {
    const auto* app = spark::AppCatalog::Find(name);
    TuningTask task;
    task.app = app;
    task.data = app->MakeData(app->test_size_mb);
    task.env = spark::ClusterEnv::ClusterC();

    BoTuner bo(&runner, &lite_system.corpus());
    DdpgTuner ddpg(&runner, false);
    LiteTuner lite(&runner, &lite_system);

    TuningResult r_bo = bo.Tune(task, profile.tuning_budget_seconds);
    TuningResult r_ddpg = ddpg.Tune(task, profile.tuning_budget_seconds);
    TuningResult r_lite = lite.Tune(task, profile.tuning_budget_seconds);

    std::cout << "\n== " << app->name << " ==\n";
    auto print_trace = [&](const char* method, const TuningTrace& trace) {
      std::cout << method << " (t_overhead_s : best_exec_time_s):";
      for (size_t i = 0; i < trace.timestamps.size(); ++i) {
        std::cout << "  " << TablePrinter::Fmt(trace.timestamps[i], 0) << ":"
                  << TablePrinter::Fmt(trace.best_so_far[i], 0);
      }
      std::cout << "\n";
    };
    print_trace("BO  ", r_bo.trace);
    print_trace("DDPG", r_ddpg.trace);
    std::cout << "LITE recommends at t=" << TablePrinter::Fmt(r_lite.overhead_seconds, 2)
              << "s with actual execution time "
              << TablePrinter::Fmt(r_lite.best_seconds, 1) << "s\n";
    std::cout << "best-ever by BO within budget:   "
              << TablePrinter::Fmt(r_bo.best_seconds, 1) << "s after "
              << TablePrinter::Fmt(r_bo.overhead_seconds, 0) << "s of tuning\n";
    std::cout << "best-ever by DDPG within budget: "
              << TablePrinter::Fmt(r_ddpg.best_seconds, 1) << "s after "
              << TablePrinter::Fmt(r_ddpg.overhead_seconds, 0) << "s of tuning\n";
    double near_optimal =
        r_lite.best_seconds / std::min(r_bo.best_seconds, r_ddpg.best_seconds);
    std::cout << "LITE/best-iterative ratio: " << TablePrinter::Fmt(near_optimal, 2)
              << " (paper shape: LITE is near-optimal at a tiny fraction of "
                 "the overhead)\n";
  }
  return 0;
}
