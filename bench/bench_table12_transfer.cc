// Table XII reproduction — environment transfer: NECS trained on cluster
// A+B instances (NECS_AB), on cluster C only (NECS_C), and on all clusters
// (NECS_all); all evaluated on cluster C validation ranking.
#include <iostream>

#include "bench/bench_common.h"

using namespace lite;
using namespace lite::bench;

int main() {
  ScaleProfile profile = GetScaleProfile();
  spark::SparkRunner runner;
  CorpusBuilder builder(&runner);
  spark::ClusterEnv target = spark::ClusterEnv::ClusterC();
  std::cout << "Table XII — transfer across computing environments (scale="
            << profile.name << ")\n";

  struct Variant {
    std::string name;
    std::vector<spark::ClusterEnv> clusters;
  };
  std::vector<Variant> variants{
      {"NECS_AB", {spark::ClusterEnv::ClusterA(), spark::ClusterEnv::ClusterB()}},
      {"NECS_C", {spark::ClusterEnv::ClusterC()}},
      {"NECS_all", {spark::ClusterEnv::ClusterA(), spark::ClusterEnv::ClusterB(),
                    spark::ClusterEnv::ClusterC()}},
  };

  TablePrinter table({"Model", "HR@5", "NDCG@5"});
  std::map<std::string, RankingScores> scores;
  size_t runs = std::max<size_t>(profile.runs, 2);
  for (const auto& v : variants) {
    std::vector<double> hrs, ndcgs;
    for (size_t run = 0; run < runs; ++run) {
      Corpus corpus = builder.Build(
          MakeCorpusOptions(profile, {}, v.clusters, 17 + run));
      std::vector<RankingCase> cases = builder.BuildRankingCases(
          corpus, {}, target, &ValidationSize, profile.ranking_candidates,
          777 + run);
      std::unique_ptr<NecsModel> necs = TrainNecs(corpus, profile, 41 + 13 * run);
      RankingScores sc = EvalRanking(
          ScorerFor(static_cast<const StageEstimator*>(necs.get())), cases);
      hrs.push_back(sc.hr_at_5);
      ndcgs.push_back(sc.ndcg_at_5);
    }
    RankingScores sc{Mean(hrs), Mean(ndcgs)};
    scores[v.name] = sc;
    table.AddRow({v.name, TablePrinter::Fmt(sc.hr_at_5, 4),
                  TablePrinter::Fmt(sc.ndcg_at_5, 4)});
  }
  table.Print(std::cout, "Table XII: ranking on cluster C validation data");
  std::cout << "\nPaper-shape check: NECS_all >= NECS_C on NDCG@5 (environment "
               "variety transfers: paper 0.5834 vs 0.5702), and NECS_AB (no "
               "target-cluster data) trails both.\n";
  return 0;
}
