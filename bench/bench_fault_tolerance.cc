// Fault-tolerance extension — tuning under an unreliable cluster. A seeded
// FaultPlan injects transient submission errors, fetch failures, stragglers
// and executor loss into the simulated cluster; every condition replays the
// exact same fault sequence. Conditions:
//
//   Default / LITE, faults off   — the clean protocol (reference);
//   LITE, faults + resilient     — submissions retried with capped backoff,
//                                  capped runs fed back as right-censored;
//   LITE, faults + naive         — no retries, failed runs fed back with
//                                  the failure-cap sentinel as real labels.
//
// Reported regret is the experienced time of the recommended configuration
// (including retry waste; the cap when the submission ultimately failed)
// normalized by the clean default-config time. The naive protocol both
// loses measurements to transient faults and poisons the Adaptive Model
// Update with sentinel labels, so its regret must be strictly worse than
// the censoring-aware harness — the acceptance check printed at the end,
// together with the harness recovery rate (>= 90% of transient-failure
// submissions) and the never-retry-deterministic-failures invariant.
#include <iostream>

#include "bench/bench_common.h"
#include "sparksim/resilient_runner.h"

using namespace lite;
using namespace lite::bench;

namespace {

struct Task {
  const spark::ApplicationSpec* app;
  spark::DataSpec data;
};

struct ConditionResult {
  std::string label;
  double mean_experienced_ratio = 0.0;  ///< experienced / clean default.
  double mean_clean_rec_ratio = 0.0;    ///< clean(recommended) / clean default.
  size_t failed_submissions = 0;
  spark::FaultStats stats;
};

std::vector<Task> MakeTasks(const ScaleProfile& profile) {
  std::vector<Task> tasks;
  for (const auto& app : spark::AppCatalog::All()) {
    tasks.push_back({&app, app.MakeData(app.validation_size_mb)});
    if (profile.name != "smoke") {
      tasks.push_back({&app, app.MakeData(app.test_size_mb)});
    }
  }
  return tasks;
}

/// One full online sequence of LITE under the given fault condition. The
/// model is trained from scratch with identical seeds, so every condition
/// starts from bit-identical weights; only the execution environment and
/// the feedback protocol differ.
ConditionResult RunLiteCondition(const std::string& label,
                                 const ScaleProfile& profile,
                                 const spark::SparkRunner& runner,
                                 const std::vector<Task>& tasks,
                                 bool faults_on, bool censored_feedback,
                                 int max_attempts, uint64_t fault_seed) {
  LiteOptions opts;
  opts.corpus = MakeCorpusOptions(profile, {}, {spark::ClusterEnv::ClusterA()});
  ApplyLiteProfile(profile, &opts);
  opts.censored_feedback = censored_feedback;
  opts.update.epochs = 3;
  opts.update_batch = 40;
  LiteSystem system(&runner, opts);
  system.TrainOffline();

  spark::FaultPlan plan =
      faults_on ? spark::FaultPlan(spark::FaultOptions::Moderate(fault_seed))
                : spark::FaultPlan{};
  spark::RetryPolicy policy;
  policy.max_attempts = max_attempts;
  spark::ResilientRunner harness(&runner, plan, policy);

  const spark::ClusterEnv env = spark::ClusterEnv::ClusterA();
  const auto& space = spark::KnobSpace::Spark16();
  spark::Config def = space.DefaultConfig();
  Rng explore_rng(909);  // identical exploration stream in every condition.

  ConditionResult res;
  res.label = label;
  for (const auto& task : tasks) {
    double t_default = runner.Measure(*task.app, task.data, env, def);
    LiteSystem::Recommendation rec =
        system.Recommend(*task.app, task.data, env);
    spark::MeasureOutcome m =
        harness.MeasureDetailed(*task.app, task.data, env, rec.config);
    if (m.failed) ++res.failed_submissions;
    res.mean_experienced_ratio += m.charge_seconds() / t_default;
    res.mean_clean_rec_ratio +=
        runner.Measure(*task.app, task.data, env, rec.config) / t_default;

    // Online feedback: the recommended run plus two exploration probes per
    // task (Fig. 2's loop). Under faults it flows through the harness so
    // retries and censoring shape what the model update sees.
    if (faults_on) {
      system.CollectFeedback(*task.app, task.data, env, rec.config, &harness);
      for (int k = 0; k < 2; ++k) {
        system.CollectFeedback(*task.app, task.data, env,
                               space.RandomConfig(&explore_rng), &harness);
      }
    } else {
      system.CollectFeedback(*task.app, task.data, env, rec.config);
      for (int k = 0; k < 2; ++k) {
        system.CollectFeedback(*task.app, task.data, env,
                               space.RandomConfig(&explore_rng));
      }
    }
  }
  res.mean_experienced_ratio /= static_cast<double>(tasks.size());
  res.mean_clean_rec_ratio /= static_cast<double>(tasks.size());
  res.stats = harness.stats();
  return res;
}

/// The Default baseline just submits the factory configuration.
ConditionResult RunDefaultCondition(const std::string& label,
                                    const spark::SparkRunner& runner,
                                    const std::vector<Task>& tasks,
                                    bool faults_on, uint64_t fault_seed) {
  spark::FaultPlan plan =
      faults_on ? spark::FaultPlan(spark::FaultOptions::Moderate(fault_seed))
                : spark::FaultPlan{};
  spark::ResilientRunner harness(&runner, plan);
  const spark::ClusterEnv env = spark::ClusterEnv::ClusterA();
  spark::Config def = spark::KnobSpace::Spark16().DefaultConfig();

  ConditionResult res;
  res.label = label;
  for (const auto& task : tasks) {
    double t_default = runner.Measure(*task.app, task.data, env, def);
    spark::MeasureOutcome m =
        harness.MeasureDetailed(*task.app, task.data, env, def);
    if (m.failed) ++res.failed_submissions;
    res.mean_experienced_ratio += m.charge_seconds() / t_default;
    res.mean_clean_rec_ratio += 1.0;
  }
  res.mean_experienced_ratio /= static_cast<double>(tasks.size());
  res.mean_clean_rec_ratio /= static_cast<double>(tasks.size());
  res.stats = harness.stats();
  return res;
}

bool AttemptAccountingHolds(const spark::FaultStats& s) {
  // Every retried transient failure adds one attempt; deterministic
  // failures and exhausted submissions never do — so this identity holds
  // exactly iff no deterministic failure was ever retried.
  return s.attempts == s.submissions + s.transient_failures - s.retries_exhausted;
}

}  // namespace

int main() {
  ScaleProfile profile = GetScaleProfile();
  spark::SparkRunner runner;
  const uint64_t kFaultSeed = 2024;
  std::cout << "Fault tolerance — tuning on an unreliable cluster (scale="
            << profile.name << ", fault seed " << kFaultSeed << ")\n\n";

  std::vector<Task> tasks = MakeTasks(profile);

  std::vector<ConditionResult> rows;
  rows.push_back(RunDefaultCondition("Default, faults off", runner, tasks,
                                     /*faults_on=*/false, kFaultSeed));
  rows.push_back(RunDefaultCondition("Default, faults on (resilient)", runner,
                                     tasks, /*faults_on=*/true, kFaultSeed));
  rows.push_back(RunLiteCondition("LITE, faults off", profile, runner, tasks,
                                  /*faults_on=*/false, /*censored=*/true,
                                  /*max_attempts=*/4, kFaultSeed));
  ConditionResult resilient = RunLiteCondition(
      "LITE, faults on, resilient+censored", profile, runner, tasks,
      /*faults_on=*/true, /*censored=*/true, /*max_attempts=*/4, kFaultSeed);
  rows.push_back(resilient);
  ConditionResult naive = RunLiteCondition(
      "LITE, faults on, naive (no retry, sentinel labels)", profile, runner,
      tasks, /*faults_on=*/true, /*censored=*/false, /*max_attempts=*/1,
      kFaultSeed);
  rows.push_back(naive);

  TablePrinter table({"Condition", "t/t_def (experienced)", "t/t_def (clean rec)",
                      "failed", "recovery", "wasted (s)"});
  for (const auto& r : rows) {
    table.AddRow({r.label, TablePrinter::Fmt(r.mean_experienced_ratio, 3),
                  TablePrinter::Fmt(r.mean_clean_rec_ratio, 3),
                  std::to_string(r.failed_submissions),
                  TablePrinter::Fmt(r.stats.RecoveryRate(), 3),
                  TablePrinter::Fmt(r.stats.wasted_seconds, 0)});
  }
  table.Print(std::cout, "Mean regret vs clean default over " +
                             std::to_string(tasks.size()) + " tasks");

  const spark::FaultStats& s = resilient.stats;
  std::cout << "\nResilient harness counters: " << s.submissions
            << " submissions, " << s.attempts << " attempts, "
            << s.transient_failures << " transient failures, " << s.recovered
            << " recovered, " << s.retries_exhausted << " exhausted, "
            << s.deterministic_failures << " deterministic (OOM-class), "
            << TablePrinter::Fmt(s.wasted_seconds, 0) << " s wasted\n\n";

  bool recovery_ok = s.RecoveryRate() >= 0.9 && s.transient_failures > 0;
  std::cout << "CHECK recovery >= 90% of transient-failure submissions: "
            << TablePrinter::Fmt(s.RecoveryRate() * 100.0, 1) << "% — "
            << (recovery_ok ? "PASS" : "FAIL") << "\n";

  bool no_det_retry =
      AttemptAccountingHolds(s) && AttemptAccountingHolds(naive.stats);
  std::cout << "CHECK deterministic failures never retried (attempt "
               "accounting): "
            << (no_det_retry ? "PASS" : "FAIL") << " ("
            << s.deterministic_failures << " observed)\n";

  bool censoring_better =
      resilient.mean_experienced_ratio < naive.mean_experienced_ratio;
  std::cout << "CHECK censored handling strictly better than naive under "
               "faults: "
            << TablePrinter::Fmt(resilient.mean_experienced_ratio, 3) << " vs "
            << TablePrinter::Fmt(naive.mean_experienced_ratio, 3) << " — "
            << (censoring_better ? "PASS" : "FAIL") << "\n";

  return (recovery_ok && no_det_retry && censoring_better) ? 0 : 1;
}
