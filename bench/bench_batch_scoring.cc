// Candidate-scoring throughput: the legacy scalar loop (per-candidate
// featurization + per-stage autodiff towers) against the batched path
// (featurize once, cached encoders, one matrix-matrix tower pass per
// candidate) single-threaded and sharded across the thread pool. Both
// systems train with identical seeds, so the score vectors must match bit
// for bit — the harness verifies that before it reports any timing.
//
// Acceptance (printed at the end): at the 1000-candidate pool the batched
// multi-threaded path is >= 5x the scalar loop with an identical argmin.
#include <chrono>
#include <iostream>
#include <thread>

#include "bench/bench_common.h"

using namespace lite;
using namespace lite::bench;

namespace {

double TimeSeconds(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

LiteOptions ScoringOptions(const ScaleProfile& profile, bool batched) {
  LiteOptions opts;
  opts.corpus = MakeCorpusOptions(profile, {"TS", "PR", "KM"},
                                  {spark::ClusterEnv::ClusterA()});
  opts.necs = profile.necs;
  opts.train.epochs = profile.name == "smoke" ? 3 : 8;
  opts.ensemble_size = 1;  // throughput comparison; ensembles scale both paths.
  opts.batched_scoring = batched;
  opts.scoring_threads = batched ? 0 : 1;
  return opts;
}

}  // namespace

int main() {
  ScaleProfile profile = GetScaleProfile();
  const size_t cores = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "Batched candidate scoring bench (scale=" << profile.name
            << ", cores=" << cores << ")\n";

  spark::SparkRunner runner;
  // Identical seeds -> bit-identical weights; only the scoring path differs.
  LiteSystem batched(&runner, ScoringOptions(profile, true));
  batched.TrainOffline();
  LiteSystem scalar(&runner, ScoringOptions(profile, false));
  scalar.TrainOffline();

  const auto* app = spark::AppCatalog::Find("PR");
  spark::DataSpec data = app->MakeData(app->test_size_mb);
  const spark::ClusterEnv env = spark::ClusterEnv::ClusterC();
  std::vector<const NecsModel*> models{batched.model()};

  std::vector<size_t> pools = profile.name == "smoke"
                                  ? std::vector<size_t>{50, 200}
                                  : std::vector<size_t>{100, 1000, 10000};

  TablePrinter table({"Pool", "Scalar (s)", "Batched 1T (s)",
                      "Batched MT (s)", "Speedup MT/scalar", "Identical"});
  bool all_identical = true;
  double speedup_at_1k = 0.0;
  std::vector<BenchJsonField> json_fields{
      {"cores", BenchJsonNum(static_cast<double>(cores))}};

  for (size_t pool : pools) {
    const auto& space = spark::KnobSpace::Spark16();
    Rng rng(1234 + pool);
    std::vector<spark::Config> candidates;
    candidates.reserve(pool);
    for (size_t i = 0; i < pool; ++i) {
      candidates.push_back(space.RandomConfig(&rng));
    }

    std::vector<double> s_scores, b1_scores, bm_scores;
    double t_scalar = TimeSeconds(
        [&] { s_scores = scalar.ScoreCandidates(*app, data, env, candidates); });
    batched.model()->InvalidateCache();
    double t_b1 = TimeSeconds([&] {
      b1_scores = ScoreCandidatesWithEnsemble(&runner, batched.corpus(), models,
                                              *app, data, env, candidates, 1);
    });
    batched.model()->InvalidateCache();
    double t_bm = TimeSeconds([&] {
      bm_scores = ScoreCandidatesWithEnsemble(&runner, batched.corpus(), models,
                                              *app, data, env, candidates, 0);
    });

    bool identical = s_scores == b1_scores && b1_scores == bm_scores;
    all_identical = all_identical && identical;
    double speedup = t_bm > 0 ? t_scalar / t_bm : 0.0;
    if (pool == 1000) speedup_at_1k = speedup;
    table.AddRow({TablePrinter::Fmt(static_cast<int64_t>(pool)),
                  TablePrinter::Fmt(t_scalar), TablePrinter::Fmt(t_b1),
                  TablePrinter::Fmt(t_bm), TablePrinter::Fmt(speedup, 2),
                  identical ? "yes" : "NO"});
    std::string prefix = "pool_" + std::to_string(pool);
    json_fields.push_back({prefix + "_scalar_s", BenchJsonNum(t_scalar)});
    json_fields.push_back({prefix + "_batched_1t_s", BenchJsonNum(t_b1)});
    json_fields.push_back({prefix + "_batched_mt_s", BenchJsonNum(t_bm)});
    json_fields.push_back({prefix + "_speedup", BenchJsonNum(speedup)});
    json_fields.push_back({prefix + "_identical", BenchJsonBool(identical)});
  }

  table.Print(std::cout, "Scalar vs batched candidate scoring");
  std::cout << "\nBit-identical scores across all paths: "
            << (all_identical ? "yes" : "NO") << "\n";
  if (speedup_at_1k > 0.0) {
    std::cout << "Acceptance (>=5x at 1000 candidates, identical ranking): "
              << (all_identical && speedup_at_1k >= 5.0 ? "PASS" : "FAIL")
              << " (" << TablePrinter::Fmt(speedup_at_1k, 2) << "x on " << cores
              << " cores)\n";
  }

  json_fields.push_back({"speedup_at_1k", BenchJsonNum(speedup_at_1k)});
  json_fields.push_back({"all_identical", BenchJsonBool(all_identical)});
  WriteBenchJson("BENCH_scoring.json", "bench_batch_scoring", profile,
                 json_fields);
  return all_identical ? 0 : 1;
}
