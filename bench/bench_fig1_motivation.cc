// Figure 1 reproduction: execution time of PageRank and TriangleCount on
// 160MB input data under (a) an executor.cores sweep and (b) an
// executor.cores x executor.memory grid, on cluster A. The paper's point:
// the optimal setting must be tailored per application, and multi-knob
// combinations matter.
#include <iostream>

#include "bench/bench_common.h"
#include "sparksim/runner.h"

using namespace lite;
using namespace lite::spark;

int main() {
  SparkRunner runner;
  const KnobSpace& space = KnobSpace::Spark16();
  ClusterEnv env = ClusterEnv::ClusterA();

  std::cout << "Figure 1 — motivation: per-application knob response "
               "(160MB input, cluster A)\n";

  for (const char* name : {"PageRank", "TriangleCount"}) {
    const ApplicationSpec* app = AppCatalog::Find(name);
    DataSpec data = app->MakeData(160);
    TablePrinter table({"executor.cores", "exec time (s)"});
    int best_cores = 0;
    double best_t = 1e18;
    for (int cores = 1; cores <= 8; ++cores) {
      Config c = space.DefaultConfig();
      c[kExecutorCores] = cores;
      c[kExecutorMemory] = 4;
      c[kExecutorInstances] = 2;
      double t = runner.Measure(*app, data, env, c);
      table.AddRow({std::to_string(cores), TablePrinter::Fmt(t, 1)});
      if (t < best_t) {
        best_t = t;
        best_cores = cores;
      }
    }
    table.Print(std::cout, std::string(name) + ": executor.cores sweep");
    std::cout << "optimal executor.cores for " << name << " = " << best_cores
              << "\n";
  }

  // Multi-knob grid (paper highlights cores=4, memory=3 as the sweet spot
  // for its cluster; the phenomenon is the joint optimum, not the values).
  const ApplicationSpec* pr = AppCatalog::Find("PageRank");
  DataSpec data = pr->MakeData(160);
  std::vector<std::string> header{"cores\\mem(GB)"};
  for (int m = 1; m <= 6; ++m) header.push_back(std::to_string(m));
  TablePrinter grid(header);
  int best_c = 0, best_m = 0;
  double best_t = 1e18;
  for (int cores = 1; cores <= 8; ++cores) {
    std::vector<std::string> row{std::to_string(cores)};
    for (int m = 1; m <= 6; ++m) {
      Config c = space.DefaultConfig();
      c[kExecutorCores] = cores;
      c[kExecutorMemory] = m;
      c[kExecutorInstances] = 4;
      double t = runner.Measure(*pr, data, env, c);
      row.push_back(TablePrinter::Fmt(t, 0));
      if (t < best_t) {
        best_t = t;
        best_c = cores;
        best_m = m;
      }
    }
    grid.AddRow(row);
  }
  grid.Print(std::cout, "PageRank: executor.cores x executor.memory grid (s)");
  std::cout << "joint optimum: cores=" << best_c << ", memory=" << best_m
            << "GB (" << TablePrinter::Fmt(best_t, 1) << "s)\n"
            << "\nPaper-shape check: optima are interior/app-specific, and the\n"
               "joint (cores, memory) optimum beats single-knob tuning.\n";
  return 0;
}
