// Oracle throughput harness: how many random workload tuples per second the
// full simulator invariant catalog sustains, per invariant family. The
// nightly workflow budgets its LITE_PROPERTY_CASES from these numbers
// (10k cases must fit comfortably in a CI slot), and a step change in
// cases/sec flags an accidentally quadratic invariant.
//
// Honours LITE_BENCH_SCALE (smoke: 200 tuples, quick: 2000, paper: 10000)
// and LITE_TEST_SEED for the tuple stream.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "testkit/gen.h"
#include "testkit/oracle.h"
#include "util/table_printer.h"

using namespace lite;

namespace {

size_t CasesForScale() {
  const char* scale = std::getenv("LITE_BENCH_SCALE");
  std::string s = scale ? scale : "quick";
  if (s == "smoke") return 200;
  if (s == "paper") return 10000;
  return 2000;
}

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

int main() {
  size_t cases = CasesForScale();
  uint64_t seed = testkit::SeedFromEnv();
  testkit::SimulatorOracle oracle;

  struct Family {
    const char* label;
    std::function<void(const testkit::WorkloadTuple&, testkit::OracleReport*)>
        check;
  };
  std::vector<Family> families = {
      {"sanity+totals",
       [&](const testkit::WorkloadTuple& t, testkit::OracleReport* r) {
         oracle.CheckStageSanity(t, r);
         oracle.CheckTotalConsistency(t, r);
       }},
      {"serialization",
       [&](const testkit::WorkloadTuple& t, testkit::OracleReport* r) {
         oracle.CheckEventLogConsistency(t, r);
         oracle.CheckTraceConsistency(t, r);
       }},
      {"monotonicity",
       [&](const testkit::WorkloadTuple& t, testkit::OracleReport* r) {
         oracle.CheckDataMonotonicity(t, r);
         oracle.CheckExecutorScaling(t, r);
         oracle.CheckEnvMonotonicity(t, r);
         oracle.CheckShuffleBufferSensitivity(t, r);
       }},
      {"fault+harness",
       [&](const testkit::WorkloadTuple& t, testkit::OracleReport* r) {
         oracle.CheckFaultReplay(t, r);
         oracle.CheckResilientTransparency(t, r);
       }},
  };

  std::cout << "oracle throughput, " << cases << " tuples, LITE_TEST_SEED="
            << seed << "\n\n";
  TablePrinter table({"family", "tuples/s", "violations"});
  size_t total_violations = 0;
  for (const auto& family : families) {
    testkit::TupleGenerator gen(testkit::GenOptions{}, seed);
    testkit::OracleReport report;
    auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < cases; ++i) {
      testkit::WorkloadTuple t = gen.Next();
      family.check(t, &report);
    }
    double secs = Seconds(start, std::chrono::steady_clock::now());
    total_violations += report.violations.size();
    table.AddRow({family.label,
                  std::to_string(static_cast<long>(cases / std::max(secs, 1e-9))),
                  std::to_string(report.violations.size())});
  }
  // Full catalog end to end (what the nightly sweep actually pays).
  {
    testkit::TupleGenerator gen(testkit::GenOptions{}, seed);
    size_t violations = 0;
    auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < cases; ++i) {
      violations += oracle.Check(gen.Next()).violations.size();
    }
    double secs = Seconds(start, std::chrono::steady_clock::now());
    total_violations += violations;
    table.AddRow({"full catalog",
                  std::to_string(static_cast<long>(cases / std::max(secs, 1e-9))),
                  std::to_string(violations)});
  }
  table.Print(std::cout);

  if (total_violations != 0) {
    std::cout << "\nFAIL: clean model produced " << total_violations
              << " violations\n";
    return 1;
  }
  std::cout << "\nPASS: clean model violation-free at this scale\n";
  return 0;
}
