// Table VI + Figure 7 reproduction: end-to-end tuning performance on large
// testing jobs (cluster C). Competitors: Default, Manual (expert recipes),
// MLP (no code features), BO(2h, OtterTune-style warm start), DDPG(2h),
// DDPG-C(2h, code-aware), LITE.
//
// Paper-shape targets: LITE attains the least (or near-least) execution
// time on most applications with ~zero tuning overhead, while BO/DDPG burn
// a 2-hour budget per application; the MLP baseline degrades on apps where
// code structure matters.
#include <iostream>
#include <memory>

#include "bench/bench_common.h"
#include "tuning/bo_tuner.h"
#include "tuning/ddpg.h"
#include "tuning/experiment.h"
#include "tuning/model_tuners.h"
#include "tuning/simple_tuners.h"

using namespace lite;
using namespace lite::bench;

int main() {
  ScaleProfile profile = GetScaleProfile();
  spark::SparkRunner runner;
  std::cout << "Table VI / Figure 7 — tuning performance comparison (scale="
            << profile.name << ")\n";

  // ----- Offline phase shared by LITE and MLP (training on small datasets).
  LiteOptions lopts;
  lopts.corpus = MakeCorpusOptions(profile, {}, spark::ClusterEnv::AllClusters());
  ApplyLiteProfile(profile, &lopts);
  LiteSystem lite_system(&runner, lopts);
  lite_system.TrainOffline();
  std::cout << "offline corpus: " << lite_system.corpus().instances.size()
            << " stage instances from " << lite_system.corpus().num_app_instances
            << " application runs\n";

  DefaultTuner def(&runner);
  ManualTuner manual(&runner);
  MlpTuner mlp(&runner, &lite_system.corpus(), profile.lite_candidates,
               TrainOptions{.epochs = profile.train_epochs, .lr = profile.train_lr},
               97);
  mlp.Fit();
  BoTuner bo(&runner, &lite_system.corpus());
  DdpgOptions dopts;
  DdpgTuner ddpg(&runner, /*use_code_features=*/false, dopts);
  DdpgTuner ddpg_c(&runner, /*use_code_features=*/true, dopts);
  LiteTuner lite(&runner, &lite_system);
  std::vector<Tuner*> tuners{&def, &manual, &mlp, &bo, &ddpg, &ddpg_c, &lite};

  std::vector<TaskComparison> rows;
  for (const auto& app : spark::AppCatalog::All()) {
    TuningTask task;
    task.app = &app;
    task.data = app.MakeData(app.test_size_mb);
    task.env = spark::ClusterEnv::ClusterC();
    rows.push_back(CompareTuners(tuners, task, profile.tuning_budget_seconds));
  }

  // ----- Table VI: actual execution time t (s) of each method's best.
  std::vector<std::string> header{"App"};
  for (Tuner* t : tuners) header.push_back(t->name());
  TablePrinter t6(header);
  for (const auto& row : rows) {
    std::vector<std::string> cells{row.app_abbrev};
    for (const auto& o : row.outcomes) cells.push_back(TablePrinter::Fmt(o.seconds, 1));
    t6.AddRow(cells);
  }
  std::vector<std::string> mean_row{"MEAN"};
  auto mean_sec = MeanSecondsByMethod(rows);
  for (Tuner* t : tuners) mean_row.push_back(TablePrinter::Fmt(mean_sec.at(t->name()), 1));
  t6.AddRow(mean_row);
  t6.Print(std::cout, "Table VI: execution time t (s) of tuned configurations");
  t6.WriteCsv(CsvDir(), "table6_seconds");

  // ----- Figure 7: per-application ETR.
  TablePrinter f7(header);
  size_t lite_best_count = 0;
  for (const auto& row : rows) {
    std::vector<std::string> cells{row.app_abbrev};
    for (const auto& o : row.outcomes) {
      cells.push_back(TablePrinter::Fmt(o.etr, 2));
      if (o.method == "LITE" && o.etr >= 0.999) ++lite_best_count;
    }
    f7.AddRow(cells);
  }
  std::vector<std::string> etr_mean{"MEAN"};
  auto mean_etr = MeanEtrByMethod(rows);
  for (Tuner* t : tuners) etr_mean.push_back(TablePrinter::Fmt(mean_etr.at(t->name()), 2));
  f7.AddRow(etr_mean);
  f7.Print(std::cout, "Figure 7: execution time reduction (ETR) per application");
  f7.WriteCsv(CsvDir(), "fig7_etr");

  // ----- Tuning overhead summary.
  TablePrinter ov({"Method", "mean tuning overhead (simulated s)", "mean trials"});
  for (size_t m = 0; m < tuners.size(); ++m) {
    double sum_ov = 0, sum_tr = 0;
    for (const auto& row : rows) {
      sum_ov += row.outcomes[m].overhead;
      sum_tr += static_cast<double>(row.outcomes[m].trials);
    }
    ov.AddRow({tuners[m]->name(),
               TablePrinter::Fmt(sum_ov / rows.size(), 1),
               TablePrinter::Fmt(sum_tr / rows.size(), 1)});
  }
  ov.Print(std::cout, "Tuning overhead");

  std::cout << "\nPaper-shape check: LITE mean ETR " << mean_etr.at("LITE")
            << " (paper ~0.99); LITE achieved ETR=1 on " << lite_best_count
            << "/15 apps (paper: 13/15); LITE overhead is seconds vs the "
               "2h budgets of BO/DDPG.\n";
  return 0;
}
