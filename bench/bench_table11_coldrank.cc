// Table XI reproduction — ranking quality under warm-start vs cold-start,
// NECS vs SCG+LightGBM, plus the oov-token ablation (Cold-UNK: unseen DAG
// operations are mapped to an arbitrary known operation instead of the
// dedicated out-of-vocabulary column).
#include <iostream>

#include "bench/bench_common.h"

using namespace lite;
using namespace lite::bench;

namespace {

/// The Cold-UNK ablation: rewrite every oov DAG label to label 0.
std::vector<RankingCase> StripOov(std::vector<RankingCase> cases,
                                  size_t op_vocab_size) {
  for (auto& rc : cases) {
    for (auto& cand : rc.candidates) {
      for (auto& inst : cand.stage_instances) {
        for (int& id : inst.dag_node_ids) {
          if (id >= static_cast<int>(op_vocab_size)) id = 0;
        }
      }
    }
  }
  return cases;
}

}  // namespace

int main() {
  ScaleProfile profile = GetScaleProfile();
  spark::SparkRunner runner;
  CorpusBuilder builder(&runner);
  // Cluster B: the flat baselines are competent warm-started there, so the
  // cold-start degradation the paper reports is actually measurable. (On
  // cluster C the flat models are weak even warm-started; see Table VII.)
  spark::ClusterEnv env = spark::ClusterEnv::ClusterB();
  std::cout << "Table XI — warm vs cold-start ranking (scale=" << profile.name
            << ")\n";

  // ----- Warm start: all apps trained, validation ranking on cluster C.
  Corpus warm_corpus = builder.Build(MakeCorpusOptions(profile, {}, {env}, 17));
  std::vector<RankingCase> warm_cases = builder.BuildRankingCases(
      warm_corpus, {}, env, &ValidationSize, profile.ranking_candidates, 321);

  std::unique_ptr<NecsModel> warm_necs = TrainNecs(warm_corpus, profile);
  RankingScores necs_warm = EvalRanking(
      ScorerFor(static_cast<const StageEstimator*>(warm_necs.get())), warm_cases);
  Rng rng(3);
  FlatGbdtEstimator warm_gbdt(FeatureSet::kSCG, spark::AppCatalog::Count());
  warm_gbdt.Fit(warm_corpus.instances, &rng);
  RankingScores gbdt_warm = EvalRanking(ScorerFor(&warm_gbdt), warm_cases);

  // ----- Cold start: leave-one-app-out over a rotating subset; evaluate the
  // held-out app's validation ranking with the reduced-vocabulary model.
  std::vector<std::string> all = AllAppNames();
  size_t holdouts = profile.name == "paper" ? all.size()
                    : profile.name == "quick" ? 6
                                              : 3;
  std::vector<double> necs_cold_hr, necs_cold_ndcg, necs_unk_hr, necs_unk_ndcg;
  std::vector<double> gbdt_cold_hr, gbdt_cold_ndcg;
  for (size_t h = 0; h < holdouts; ++h) {
    const std::string& held = all[(h * 2 + 1) % all.size()];  // odd stride: distinct apps incl. SCC.
    std::vector<std::string> train_apps;
    for (const auto& a : all) {
      if (a != held) train_apps.push_back(a);
    }
    Corpus corpus = builder.Build(MakeCorpusOptions(profile, train_apps, {env}, 17));
    std::vector<RankingCase> cases = builder.BuildRankingCases(
        corpus, {held}, env, &ValidationSize, profile.ranking_candidates, 321);
    std::vector<RankingCase> cases_unk = StripOov(cases, corpus.op_vocab->size());

    std::unique_ptr<NecsModel> necs = TrainNecs(corpus, profile);
    RankingScores cold = EvalRanking(
        ScorerFor(static_cast<const StageEstimator*>(necs.get())), cases);
    necs->InvalidateCache();
    RankingScores unk = EvalRanking(
        ScorerFor(static_cast<const StageEstimator*>(necs.get())), cases_unk);

    Rng rng2(5);
    FlatGbdtEstimator gbdt(FeatureSet::kSCG, spark::AppCatalog::Count());
    gbdt.Fit(corpus.instances, &rng2);
    RankingScores gcold = EvalRanking(ScorerFor(&gbdt), cases);

    necs_cold_hr.push_back(cold.hr_at_5);
    necs_cold_ndcg.push_back(cold.ndcg_at_5);
    necs_unk_hr.push_back(unk.hr_at_5);
    necs_unk_ndcg.push_back(unk.ndcg_at_5);
    gbdt_cold_hr.push_back(gcold.hr_at_5);
    gbdt_cold_ndcg.push_back(gcold.ndcg_at_5);
  }

  TablePrinter table({"Model", "setting", "HR@5", "NDCG@5"});
  table.AddRow({"NECS", "warm-start", TablePrinter::Fmt(necs_warm.hr_at_5, 4),
                TablePrinter::Fmt(necs_warm.ndcg_at_5, 4)});
  table.AddRow({"NECS", "cold-start", TablePrinter::Fmt(Mean(necs_cold_hr), 4),
                TablePrinter::Fmt(Mean(necs_cold_ndcg), 4)});
  table.AddRow({"NECS", "cold, no oov (UNK)",
                TablePrinter::Fmt(Mean(necs_unk_hr), 4),
                TablePrinter::Fmt(Mean(necs_unk_ndcg), 4)});
  table.AddRow({"SCG+LightGBM", "warm-start", TablePrinter::Fmt(gbdt_warm.hr_at_5, 4),
                TablePrinter::Fmt(gbdt_warm.ndcg_at_5, 4)});
  table.AddRow({"SCG+LightGBM", "cold-start",
                TablePrinter::Fmt(Mean(gbdt_cold_hr), 4),
                TablePrinter::Fmt(Mean(gbdt_cold_ndcg), 4)});
  table.Print(std::cout, "Table XI: warm vs cold ranking with oov ablation");

  double gbdt_drop = gbdt_warm.ndcg_at_5 - Mean(gbdt_cold_ndcg);
  double necs_drop = necs_warm.ndcg_at_5 - Mean(necs_cold_ndcg);
  std::cout << "\nPaper-shape check: SCG+LightGBM degrades under cold start "
               "(NDCG drop "
            << TablePrinter::Fmt(gbdt_drop, 3) << ") more than NECS (drop "
            << TablePrinter::Fmt(necs_drop, 3)
            << "); removing the oov token hurts cold-start NECS.\n";
  return 0;
}
