// Figure 10 reproduction — performance stability for never-seen
// applications: train NECS on 15-n randomly chosen applications, evaluate
// ranking on the n held-out ones, sweeping x = n/15. Reference lines: the
// best and the average warm-start competitor from the Table VII pool.
#include <iostream>

#include "bench/bench_common.h"

using namespace lite;
using namespace lite::bench;

int main() {
  ScaleProfile profile = GetScaleProfile();
  spark::SparkRunner runner;
  CorpusBuilder builder(&runner);
  spark::ClusterEnv env = spark::ClusterEnv::ClusterC();
  std::cout << "Figure 10 — ranking vs fraction of never-seen applications "
               "(scale=" << profile.name << ")\n";

  // ----- Warm-start reference lines from flat competitors.
  Corpus warm = builder.Build(MakeCorpusOptions(profile, {}, {env}, 17));
  std::vector<RankingCase> warm_cases = builder.BuildRankingCases(
      warm, {}, env, &ValidationSize, profile.ranking_candidates, 555);
  std::vector<double> warm_hr, warm_ndcg;
  {
    Rng rng(9);
    for (FeatureSet fs : {FeatureSet::kW, FeatureSet::kWC, FeatureSet::kS,
                          FeatureSet::kSC, FeatureSet::kSCG}) {
      FlatGbdtEstimator gbdt(fs, spark::AppCatalog::Count());
      gbdt.Fit(warm.instances, &rng);
      RankingScores sc = EvalRanking(ScorerFor(&gbdt), warm_cases);
      warm_hr.push_back(sc.hr_at_5);
      warm_ndcg.push_back(sc.ndcg_at_5);
    }
  }
  double best_warm_hr = *std::max_element(warm_hr.begin(), warm_hr.end());
  double avg_warm_hr = Mean(warm_hr);
  double best_warm_ndcg = *std::max_element(warm_ndcg.begin(), warm_ndcg.end());
  double avg_warm_ndcg = Mean(warm_ndcg);

  // ----- Sweep over the held-out fraction.
  std::vector<size_t> ns;
  if (profile.name == "paper") {
    for (size_t n = 1; n <= 14; ++n) ns.push_back(n);
  } else if (profile.name == "quick") {
    ns = {3, 6, 9, 12};
  } else {
    ns = {3, 9};
  }

  TablePrinter table({"x = n/15", "HR@5", "NDCG@5"});
  std::vector<std::string> all = AllAppNames();
  double hr_low_x = -1.0;
  for (size_t n : ns) {
    std::vector<double> hrs, ndcgs;
    for (size_t run = 0; run < profile.runs; ++run) {
      Rng rng(1000 + n * 10 + run);
      std::vector<std::string> shuffled = all;
      rng.Shuffle(&shuffled);
      std::vector<std::string> train_apps(shuffled.begin(),
                                          shuffled.end() - static_cast<long>(n));
      std::vector<std::string> test_apps(shuffled.end() - static_cast<long>(n),
                                         shuffled.end());
      Corpus corpus = builder.Build(MakeCorpusOptions(profile, train_apps, {env},
                                                      17 + run));
      std::vector<RankingCase> cases = builder.BuildRankingCases(
          corpus, test_apps, env, &ValidationSize, profile.ranking_candidates,
          555 + run);
      std::unique_ptr<NecsModel> necs = TrainNecs(corpus, profile, 41 + run);
      RankingScores sc = EvalRanking(
          ScorerFor(static_cast<const StageEstimator*>(necs.get())), cases);
      hrs.push_back(sc.hr_at_5);
      ndcgs.push_back(sc.ndcg_at_5);
    }
    double x = static_cast<double>(n) / 15.0;
    if (hr_low_x < 0) hr_low_x = Mean(hrs);
    table.AddRow({TablePrinter::Fmt(x, 2), TablePrinter::Fmt(Mean(hrs), 4),
                  TablePrinter::Fmt(Mean(ndcgs), 4)});
  }
  table.Print(std::cout, "Figure 10: NECS cold-start ranking vs x");
  std::cout << "reference lines — Best warm: HR@5 "
            << TablePrinter::Fmt(best_warm_hr, 4) << ", NDCG@5 "
            << TablePrinter::Fmt(best_warm_ndcg, 4) << "; Avg warm: HR@5 "
            << TablePrinter::Fmt(avg_warm_hr, 4) << ", NDCG@5 "
            << TablePrinter::Fmt(avg_warm_ndcg, 4) << "\n";
  std::cout << "\nPaper-shape check: performance declines smoothly with x; at "
               "small x NECS stays competitive with the warm references.\n";
  return 0;
}
