// Observability overhead: candidate scoring with the obs subsystem fully
// disabled (LITE_OBS=0 semantics via SetEnabled) versus fully enabled, and
// versus enabled with a live trace recording. The harness first proves the
// score vectors are bit-identical in every mode — instrumentation may only
// observe the computation — and only then reports timings.
//
// Acceptance (printed at the end): on the 1000-candidate pool, metrics-
// enabled scoring costs < 2% over disabled scoring (min over repetitions,
// so scheduler noise does not masquerade as overhead). Timing is hardware-
// dependent, so the exit code reflects only the bit-identity requirement;
// the overhead verdict is recorded in BENCH_obs.json for CI trending.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <thread>

#include "bench/bench_common.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace lite;
using namespace lite::bench;

namespace {

double TimeSeconds(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  ScaleProfile profile = GetScaleProfile();
  const size_t cores = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "Observability overhead bench (scale=" << profile.name
            << ", cores=" << cores << ")\n";

  LiteOptions opts;
  opts.corpus = MakeCorpusOptions(profile, {"TS", "PR", "KM"},
                                  {spark::ClusterEnv::ClusterA()});
  opts.necs = profile.necs;
  opts.train.epochs = profile.name == "smoke" ? 3 : 8;
  opts.ensemble_size = 1;

  spark::SparkRunner runner;
  LiteSystem system(&runner, opts);
  system.TrainOffline();
  std::vector<const NecsModel*> models{system.model()};

  const auto* app = spark::AppCatalog::Find("PR");
  spark::DataSpec data = app->MakeData(app->test_size_mb);
  const spark::ClusterEnv env = spark::ClusterEnv::ClusterC();

  const size_t pool = profile.name == "smoke" ? 200 : 1000;
  const int reps = profile.name == "smoke" ? 3 : 5;
  const auto& space = spark::KnobSpace::Spark16();
  Rng rng(4242);
  std::vector<spark::Config> candidates;
  candidates.reserve(pool);
  for (size_t i = 0; i < pool; ++i) {
    candidates.push_back(space.RandomConfig(&rng));
  }

  auto score_once = [&] {
    system.model()->InvalidateCache();
    return ScoreCandidatesWithEnsemble(&runner, system.corpus(), models, *app,
                                       data, env, candidates, 0);
  };

  const bool saved_enabled = obs::Enabled();
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();

  // Warm up both modes once (thread pool spin-up, metric registration) so
  // one-time costs don't land in either timed side.
  obs::SetEnabled(true);
  std::vector<double> ref_enabled = score_once();
  obs::SetEnabled(false);
  std::vector<double> ref_disabled = score_once();

  double t_disabled = 1e100, t_enabled = 1e100, t_tracing = 1e100;
  bool identical = ref_enabled == ref_disabled;
  for (int r = 0; r < reps; ++r) {
    obs::SetEnabled(false);
    std::vector<double> off;
    t_disabled = std::min(t_disabled, TimeSeconds([&] { off = score_once(); }));
    obs::SetEnabled(true);
    std::vector<double> on;
    t_enabled = std::min(t_enabled, TimeSeconds([&] { on = score_once(); }));
    recorder.Start();
    std::vector<double> traced;
    t_tracing =
        std::min(t_tracing, TimeSeconds([&] { traced = score_once(); }));
    recorder.Stop();
    identical = identical && off == ref_disabled && on == ref_disabled &&
                traced == ref_disabled;
  }
  obs::SetEnabled(saved_enabled);

  double overhead_pct =
      t_disabled > 0 ? (t_enabled / t_disabled - 1.0) * 100.0 : 0.0;
  double tracing_pct =
      t_disabled > 0 ? (t_tracing / t_disabled - 1.0) * 100.0 : 0.0;
  bool overhead_ok = overhead_pct < 2.0;

  TablePrinter table({"Mode", "Best (s)", "Overhead"});
  table.AddRow({"obs disabled", TablePrinter::Fmt(t_disabled), "-"});
  table.AddRow({"obs enabled", TablePrinter::Fmt(t_enabled),
                TablePrinter::Fmt(overhead_pct, 2) + "%"});
  table.AddRow({"enabled + tracing", TablePrinter::Fmt(t_tracing),
                TablePrinter::Fmt(tracing_pct, 2) + "%"});
  table.Print(std::cout, "Scoring wall time, " + std::to_string(pool) +
                             " candidates (min of " + std::to_string(reps) +
                             " reps)");

  std::cout << "\nBit-identical scores across all modes: "
            << (identical ? "yes" : "NO") << "\n";
  std::cout << "Acceptance (< 2% metrics overhead): "
            << (overhead_ok ? "PASS" : "FAIL") << " ("
            << TablePrinter::Fmt(overhead_pct, 2) << "%)\n";

  WriteBenchJson(
      "BENCH_obs.json", "bench_observability", profile,
      {{"pool", BenchJsonNum(static_cast<double>(pool))},
       {"reps", BenchJsonNum(reps)},
       {"cores", BenchJsonNum(static_cast<double>(cores))},
       {"t_disabled_s", BenchJsonNum(t_disabled)},
       {"t_enabled_s", BenchJsonNum(t_enabled)},
       {"t_tracing_s", BenchJsonNum(t_tracing)},
       {"overhead_pct", BenchJsonNum(overhead_pct)},
       {"tracing_overhead_pct", BenchJsonNum(tracing_pct)},
       {"bit_identical", BenchJsonBool(identical)},
       {"overhead_under_2pct", BenchJsonBool(overhead_ok)}});

  return identical ? 0 : 1;
}
