// Table X reproduction — cold-start tuning. For each application, train
// LITE with every instance of that application removed (leave-one-app-out,
// which also removes its tokens/ops from the vocabularies), then recommend
// a configuration for its large testing job on cluster C and report ETR.
#include <iostream>

#include "bench/bench_common.h"
#include "tuning/tuner.h"

using namespace lite;
using namespace lite::bench;

int main() {
  ScaleProfile profile = GetScaleProfile();
  spark::SparkRunner runner;
  std::cout << "Table X — never-seen applications, cold-start ETR (scale="
            << profile.name << ")\n";
  spark::ClusterEnv env = spark::ClusterEnv::ClusterC();

  TablePrinter table({"App", "t default (s)", "t LITE cold (s)", "ETR"});
  double etr_sum = 0.0;
  size_t above_95 = 0;
  std::vector<std::string> all = AllAppNames();

  for (const auto& held_out : all) {
    std::vector<std::string> train_apps;
    for (const auto& a : all) {
      if (a != held_out) train_apps.push_back(a);
    }
    LiteOptions lopts;
    lopts.corpus = MakeCorpusOptions(profile, train_apps,
                                     spark::ClusterEnv::AllClusters());
    lopts.necs = profile.necs;
    lopts.train.epochs = profile.train_epochs;
    lopts.train.lr = profile.train_lr;
    lopts.num_candidates = profile.lite_candidates;
    LiteSystem lite(&runner, lopts);
    lite.TrainOffline();

    const auto* app = spark::AppCatalog::Find(held_out);
    spark::DataSpec data = app->MakeData(app->test_size_mb);
    double t_default = runner.Measure(
        *app, data, env, spark::KnobSpace::Spark16().DefaultConfig());
    LiteSystem::Recommendation rec = lite.Recommend(*app, data, env);
    double t_lite = runner.Measure(*app, data, env, rec.config);
    // t_min proxy: the best of a broad random sweep (stable gold standard).
    Rng rng(9);
    double t_min = std::min(t_lite, t_default);
    for (int i = 0; i < 200; ++i) {
      t_min = std::min(t_min, runner.Measure(*app, data, env,
                                             spark::KnobSpace::Spark16().RandomConfig(&rng)));
    }
    double etr = ExecutionTimeReduction(t_default, t_lite, t_min);
    etr_sum += etr;
    if (etr > 0.95) ++above_95;
    table.AddRow({held_out, TablePrinter::Fmt(t_default, 1),
                  TablePrinter::Fmt(t_lite, 1), TablePrinter::Fmt(etr, 2)});
  }
  table.AddRow({"MEAN", "", "", TablePrinter::Fmt(etr_sum / all.size(), 2)});
  table.Print(std::cout, "Table X: cold-start ETR per never-seen application");
  std::cout << "\nPaper-shape check: mean cold-start ETR "
            << TablePrinter::Fmt(etr_sum / all.size(), 2)
            << " (paper 0.95 with " << above_95
            << "/15 apps above 0.95; paper 11/15) — near-optimal tuning for "
               "never-seen applications.\n";
  return 0;
}
