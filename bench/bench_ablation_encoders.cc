// Encoder ablation (DESIGN.md): how much of NECS's cold-start ranking
// quality comes from the code CNN vs the scheduler GCN? Four variants are
// trained identically and evaluated on held-out applications (where code
// understanding must generalize, not memorize):
//   full       CNN + GCN (the paper's NECS)
//   code-only  CNN, zeroed DAG representation
//   dag-only   GCN, zeroed code representation
//   neither    both zeroed — knobs/data/env only (an MLP in disguise)
#include <iostream>

#include "bench/bench_common.h"

using namespace lite;
using namespace lite::bench;

int main() {
  ScaleProfile profile = GetScaleProfile();
  spark::SparkRunner runner;
  CorpusBuilder builder(&runner);
  spark::ClusterEnv env = spark::ClusterEnv::ClusterC();
  std::cout << "Ablation — NECS encoder contributions under cold start "
               "(scale=" << profile.name << ")\n";

  struct Variant {
    std::string name;
    bool code, dag;
  };
  std::vector<Variant> variants{{"full (CNN+GCN)", true, true},
                                {"code-only (CNN)", true, false},
                                {"dag-only (GCN)", false, true},
                                {"neither", false, false}};

  std::vector<std::string> all = AllAppNames();
  size_t holdouts = profile.name == "paper" ? 10 : profile.name == "quick" ? 5 : 2;

  TablePrinter table({"Variant", "HR@5", "NDCG@5"});
  for (const auto& v : variants) {
    std::vector<double> hrs, ndcgs;
    for (size_t h = 0; h < holdouts; ++h) {
      const std::string& held = all[(h * 3 + 2) % all.size()];
      std::vector<std::string> train_apps;
      for (const auto& a : all) {
        if (a != held) train_apps.push_back(a);
      }
      Corpus corpus = builder.Build(MakeCorpusOptions(profile, train_apps, {env}, 17));
      std::vector<RankingCase> cases = builder.BuildRankingCases(
          corpus, {held}, env, &ValidationSize, profile.ranking_candidates, 99);

      NecsConfig cfg = profile.necs;
      cfg.use_code_encoder = v.code;
      cfg.use_dag_encoder = v.dag;
      NecsModel model(corpus.vocab->size(), corpus.op_vocab->size(), cfg, 41);
      NecsTrainer trainer;
      TrainOptions topts;
      topts.epochs = profile.train_epochs;
      topts.lr = profile.train_lr;
      trainer.Train(&model, corpus.instances, topts);

      RankingScores sc = EvalRanking(
          ScorerFor(static_cast<const StageEstimator*>(&model)), cases);
      hrs.push_back(sc.hr_at_5);
      ndcgs.push_back(sc.ndcg_at_5);
    }
    table.AddRow({v.name, TablePrinter::Fmt(Mean(hrs), 4),
                  TablePrinter::Fmt(Mean(ndcgs), 4)});
  }
  table.Print(std::cout, "Cold-start ranking by encoder variant");
  std::cout << "\nExpected shape: full >= code-only/dag-only > neither — both "
               "encoders contribute, and dropping all program understanding "
               "costs the most on never-seen applications.\n";
  return 0;
}
