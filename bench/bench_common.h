// Shared infrastructure for the table/figure reproduction harnesses.
//
// Every harness honours LITE_BENCH_SCALE:
//   smoke — seconds-long sanity runs (CI),
//   quick — minutes-long runs with reduced sizes (default),
//   paper — the paper's instance counts (slow).
// Output shape (rows/columns) is identical across scales; only statistical
// tightness changes.
#ifndef LITE_BENCH_BENCH_COMMON_H_
#define LITE_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lite/baseline_models.h"
#include "lite/lite_system.h"
#include "util/ranking_metrics.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace lite::bench {

struct ScaleProfile {
  std::string name = "quick";
  // Corpus collection.
  size_t configs_per_setting = 5;
  size_t max_stage_instances_per_run = 10;
  size_t max_code_tokens = 128;
  // NECS / deep models.
  NecsConfig necs;
  size_t train_epochs = 20;
  float train_lr = 1.5e-3f;
  size_t seq_max_steps = 48;
  size_t seq_epochs = 6;
  /// Cap on instances used to train deep models (subsampled uniformly).
  size_t deep_train_cap = 1500;
  // Ranking evaluation.
  size_t ranking_candidates = 40;
  // Tuning comparison.
  double tuning_budget_seconds = 7200.0;
  size_t lite_candidates = 60;
  // Repetitions for averaged experiments.
  size_t runs = 2;
};

/// Reads LITE_BENCH_SCALE (smoke|quick|paper); defaults to quick.
inline ScaleProfile GetScaleProfile() {
  ScaleProfile p;
  const char* env = std::getenv("LITE_BENCH_SCALE");
  std::string scale = env ? env : "quick";
  p.name = scale;
  if (scale == "smoke") {
    p.configs_per_setting = 2;
    p.max_stage_instances_per_run = 5;
    p.max_code_tokens = 64;
    p.necs = NecsConfig{.emb_dim = 8, .cnn_widths = {3, 4}, .cnn_kernels = 6,
                        .code_dim = 12, .gcn_hidden = 8};
    p.train_epochs = 6;
    p.seq_max_steps = 24;
    p.seq_epochs = 2;
    p.ranking_candidates = 12;
    p.lite_candidates = 20;
    p.runs = 1;
    p.deep_train_cap = 250;
  } else if (scale == "paper") {
    p.configs_per_setting = 12;
    p.max_stage_instances_per_run = 16;
    p.max_code_tokens = 400;
    p.necs = NecsConfig{};  // full defaults.
    p.train_epochs = 40;
    p.seq_max_steps = 96;
    p.seq_epochs = 10;
    p.ranking_candidates = 100;
    p.lite_candidates = 256;
    p.runs = 4;
    p.deep_train_cap = 5000;
  } else {
    p.necs = NecsConfig{.emb_dim = 16, .cnn_widths = {3, 4, 5},
                        .cnn_kernels = 16, .code_dim = 32, .gcn_hidden = 20};
    p.train_epochs = 28;
    p.lite_candidates = 160;
  }
  return p;
}

/// LITE options tuned per scale: the benches sharpen the ACG top-fraction
/// to 0.25 (paper: 0.4) and use a 2-model ensemble; both deviations are
/// recorded in EXPERIMENTS.md.
inline void ApplyLiteProfile(const ScaleProfile& p, LiteOptions* opts) {
  opts->necs = p.necs;
  opts->train.epochs = p.train_epochs;
  opts->train.lr = p.train_lr;
  opts->num_candidates = p.lite_candidates;
  opts->acg.top_fraction = 0.25;
  opts->ensemble_size = p.name == "smoke" ? 1 : 2;
}

inline CorpusOptions MakeCorpusOptions(const ScaleProfile& p,
                                       std::vector<std::string> apps,
                                       std::vector<spark::ClusterEnv> clusters,
                                       uint64_t seed = 17) {
  CorpusOptions opts;
  opts.apps = std::move(apps);
  opts.clusters = std::move(clusters);
  opts.configs_per_setting = p.configs_per_setting;
  opts.max_stage_instances_per_run = p.max_stage_instances_per_run;
  opts.max_code_tokens = p.max_code_tokens;
  opts.seed = seed;
  return opts;
}

inline std::unique_ptr<NecsModel> TrainNecs(const Corpus& corpus,
                                            const ScaleProfile& p,
                                            uint64_t seed = 41) {
  auto model = std::make_unique<NecsModel>(corpus.vocab->size(),
                                           corpus.op_vocab->size(), p.necs, seed);
  NecsTrainer trainer;
  TrainOptions topts;
  topts.epochs = p.train_epochs;
  topts.lr = p.train_lr;
  topts.seed = seed + 1;
  trainer.Train(model.get(), corpus.instances, topts);
  return model;
}

/// Uniform candidate scorer: predicted application seconds (lower better).
using AppScorer = std::function<double(const CandidateEval&)>;

inline AppScorer ScorerFor(const StageEstimator* est) {
  return [est](const CandidateEval& c) { return est->PredictAppSeconds(c); };
}
inline AppScorer ScorerFor(const FlatGbdtEstimator* est) {
  return [est](const CandidateEval& c) { return est->PredictAppSecondsOverride(c); };
}
inline AppScorer ScorerFor(const FlatMlpEstimator* est) {
  return [est](const CandidateEval& c) { return est->PredictAppSecondsOverride(c); };
}

struct RankingScores {
  double hr_at_5 = 0.0;
  double ndcg_at_5 = 0.0;
};

/// Mean HR@5 / NDCG@5 of a scorer over ranking cases.
inline RankingScores EvalRanking(const AppScorer& scorer,
                                 const std::vector<RankingCase>& cases) {
  std::vector<double> hrs, ndcgs;
  for (const auto& rc : cases) {
    std::vector<double> pred, truth;
    for (const auto& cand : rc.candidates) {
      pred.push_back(scorer(cand));
      truth.push_back(cand.true_seconds);
    }
    hrs.push_back(HitRatioAtK(pred, truth, 5));
    ndcgs.push_back(NdcgAtK(pred, truth, 5));
  }
  return {Mean(hrs), Mean(ndcgs)};
}

/// Uniform subsample of instances for deep-model training.
inline std::vector<StageInstance> CapInstances(
    const std::vector<StageInstance>& instances, size_t cap) {
  if (instances.size() <= cap) return instances;
  std::vector<StageInstance> out;
  out.reserve(cap);
  double stride = static_cast<double>(instances.size()) / static_cast<double>(cap);
  for (size_t i = 0; i < cap; ++i) {
    out.push_back(instances[static_cast<size_t>(i * stride)]);
  }
  return out;
}

/// Optional CSV sink directory (LITE_BENCH_CSV_DIR; empty = disabled).
inline std::string CsvDir() {
  const char* env = std::getenv("LITE_BENCH_CSV_DIR");
  return env ? env : "";
}

/// One field of a machine-readable bench result: the value is pre-rendered
/// JSON (use BenchJsonNum / BenchJsonStr / BenchJsonBool).
using BenchJsonField = std::pair<std::string, std::string>;

inline std::string BenchJsonNum(double v) {
  std::ostringstream os;
  os.precision(9);
  os << v;
  return os.str();
}
inline std::string BenchJsonStr(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out + "\"";
}
inline std::string BenchJsonBool(bool b) { return b ? "true" : "false"; }

/// Writes a flat machine-readable result object ({"bench": ..., "scale":
/// ..., fields...}, one field per line) so CI can upload and diff bench
/// outcomes. `path` is relative to the working directory; CI runs benches
/// from the repo root, so results land as /BENCH_*.json artifacts.
inline bool WriteBenchJson(const std::string& path, const std::string& bench,
                           const ScaleProfile& profile,
                           const std::vector<BenchJsonField>& fields) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n";
  out << "\"bench\": " << BenchJsonStr(bench) << ",\n";
  out << "\"scale\": " << BenchJsonStr(profile.name);
  for (const auto& [key, value] : fields) {
    out << ",\n\"" << key << "\": " << value;
  }
  out << "\n}\n";
  return static_cast<bool>(out);
}

inline std::vector<std::string> AllAppNames() {
  std::vector<std::string> names;
  for (const auto& a : spark::AppCatalog::All()) names.push_back(a.abbrev);
  return names;
}

inline double ValidationSize(const spark::ApplicationSpec& a) {
  return a.validation_size_mb;
}
inline double TestSize(const spark::ApplicationSpec& a) { return a.test_size_mb; }

}  // namespace lite::bench

#endif  // LITE_BENCH_BENCH_COMMON_H_
