// Extension — PPMI-pretrained token embeddings vs random initialization.
// The paper trains NECS's token embeddings end-to-end; this ablation asks
// whether count-based pretraining on the instrumented stage code (see
// lite/embedding_pretrain.h) buys faster convergence or better cold-start
// ranking on a small corpus.
#include <iostream>

#include "bench/bench_common.h"
#include "lite/embedding_pretrain.h"

using namespace lite;
using namespace lite::bench;

int main() {
  ScaleProfile profile = GetScaleProfile();
  spark::SparkRunner runner;
  CorpusBuilder builder(&runner);
  spark::ClusterEnv env = spark::ClusterEnv::ClusterC();
  std::cout << "Extension — pretrained vs random token embeddings (scale="
            << profile.name << ")\n";

  // Cold-start setting: hold out one application; pretrain on the rest.
  std::vector<std::string> all = AllAppNames();
  const std::string held = "TC";
  std::vector<std::string> train_apps;
  for (const auto& a : all) {
    if (a != held) train_apps.push_back(a);
  }
  Corpus corpus = builder.Build(MakeCorpusOptions(profile, train_apps, {env}, 17));
  std::vector<RankingCase> cases = builder.BuildRankingCases(
      corpus, {held}, env, &ValidationSize, profile.ranking_candidates, 99);

  std::vector<std::vector<std::string>> streams;
  for (const auto* app : corpus.apps) {
    spark::AppArtifacts art = runner.instrumenter().Instrument(*app);
    streams.push_back(art.app_code_tokens);
    for (const auto& s : art.stages) streams.push_back(s.code_tokens);
  }
  EmbeddingPretrainer pretrainer(PretrainOptions{.dim = profile.necs.emb_dim});
  Tensor pretrained = pretrainer.Fit(*corpus.vocab, streams);

  TablePrinter table({"Init", "loss@1 epoch", "final loss", "HR@5", "NDCG@5"});
  for (bool use_pretrained : {false, true}) {
    NecsModel model(corpus.vocab->size(), corpus.op_vocab->size(), profile.necs,
                    41);
    if (use_pretrained) model.SetTokenEmbeddings(pretrained);
    NecsTrainer trainer;
    TrainOptions topts;
    topts.epochs = profile.train_epochs;
    topts.lr = profile.train_lr;
    std::vector<double> losses = trainer.Train(&model, corpus.instances, topts);
    RankingScores sc = EvalRanking(
        ScorerFor(static_cast<const StageEstimator*>(&model)), cases);
    table.AddRow({use_pretrained ? "PPMI-pretrained" : "random",
                  TablePrinter::Fmt(losses.front(), 4),
                  TablePrinter::Fmt(losses.back(), 4),
                  TablePrinter::Fmt(sc.hr_at_5, 4),
                  TablePrinter::Fmt(sc.ndcg_at_5, 4)});
  }
  table.Print(std::cout, "Cold-start (" + held + " held out)");
  std::cout << "\nReading: pretraining mainly helps the first epochs; with "
               "enough training both initializations converge — consistent "
               "with the paper training embeddings end-to-end.\n";
  return 0;
}
