// Table IX reproduction — Adaptive Model Update. Per cluster: train NECS on
// the cluster's small-data corpus; randomly split the validation
// applications into two folds; collect feedback on one fold's validation
// runs and adversarially fine-tune; compare HR@5/NDCG@5 on the other fold
// before (NECS) and after (NECS_u), over several runs; Wilcoxon signed-rank
// p-values of the improvement.
#include <iostream>

#include "bench/bench_common.h"
#include "lite/model_update.h"

using namespace lite;
using namespace lite::bench;

namespace {

/// Target-domain instances from running `apps` at validation size on `env`
/// with a few sampled configurations.
std::vector<StageInstance> CollectFeedback(
    const spark::SparkRunner& runner, const Corpus& corpus,
    const std::vector<const spark::ApplicationSpec*>& apps,
    const spark::ClusterEnv& env, size_t configs_per_app, uint64_t seed) {
  FeatureExtractor extractor(corpus.vocab.get(), corpus.op_vocab.get(),
                             corpus.max_code_tokens, corpus.bow_dims);
  const auto& space = spark::KnobSpace::Spark16();
  Rng rng(seed);
  std::vector<StageInstance> out;
  for (const auto* app : apps) {
    spark::DataSpec data = app->MakeData(app->validation_size_mb);
    spark::AppArtifacts art = runner.instrumenter().Instrument(*app);
    for (size_t k = 0; k < configs_per_app; ++k) {
      spark::Config config = space.RandomConfig(&rng);
      spark::AppRunResult run = runner.cost_model().Run(*app, data, env, config);
      if (run.failed) continue;
      std::vector<spark::StageRunResult> kept(
          run.stage_runs.begin(),
          run.stage_runs.begin() + std::min<size_t>(8, run.stage_runs.size()));
      auto insts = extractor.ExtractRun(*app, art, data, env, config, kept,
                                        run.total_seconds, -2, -1);
      out.insert(out.end(), insts.begin(), insts.end());
    }
  }
  return out;
}

}  // namespace

int main() {
  ScaleProfile profile = GetScaleProfile();
  spark::SparkRunner runner;
  CorpusBuilder builder(&runner);
  std::cout << "Table IX — Adaptive Model Update (scale=" << profile.name
            << ")\n";

  TablePrinter table({"Cluster", "HR@5 NECS", "HR@5 NECS_u", "p-value",
                      "NDCG@5 NECS", "NDCG@5 NECS_u", "p-value"});
  size_t runs = std::max<size_t>(profile.runs, 2);

  for (const auto& env : spark::ClusterEnv::AllClusters()) {
    Corpus corpus = builder.Build(MakeCorpusOptions(profile, {}, {env}, 17));
    std::vector<double> hr_before, hr_after, ndcg_before, ndcg_after;

    for (size_t run = 0; run < runs; ++run) {
      // Random 2-fold split of the applications.
      std::vector<std::string> names = AllAppNames();
      Rng rng(100 + run);
      rng.Shuffle(&names);
      std::vector<std::string> fold_update(names.begin(), names.begin() + names.size() / 3);
      std::vector<std::string> fold_eval(names.begin() + names.size() / 3, names.end());

      std::unique_ptr<NecsModel> model = TrainNecs(corpus, profile, 41 + run);
      std::vector<RankingCase> eval_cases = builder.BuildRankingCases(
          corpus, fold_eval, env, &ValidationSize, profile.ranking_candidates,
          500 + run);

      RankingScores before = EvalRanking(
          ScorerFor(static_cast<const StageEstimator*>(model.get())), eval_cases);

      std::vector<const spark::ApplicationSpec*> update_apps;
      for (const auto& n : fold_update) {
        update_apps.push_back(spark::AppCatalog::Find(n));
      }
      std::vector<StageInstance> feedback = CollectFeedback(
          runner, corpus, update_apps, env, /*configs_per_app=*/4, 700 + run);
      AdaptiveModelUpdater updater(UpdateOptions{
          .epochs = 3, .lr = 2e-4f, .lambda = 0.3f, .source_per_target = 4.0});
      updater.Update(model.get(), corpus.instances, feedback);
      model->InvalidateCache();

      RankingScores after = EvalRanking(
          ScorerFor(static_cast<const StageEstimator*>(model.get())), eval_cases);

      hr_before.push_back(before.hr_at_5);
      hr_after.push_back(after.hr_at_5);
      ndcg_before.push_back(before.ndcg_at_5);
      ndcg_after.push_back(after.ndcg_at_5);
    }

    WilcoxonResult w_hr = WilcoxonSignedRank(hr_before, hr_after);
    WilcoxonResult w_ndcg = WilcoxonSignedRank(ndcg_before, ndcg_after);
    table.AddRow({env.name, TablePrinter::Fmt(Mean(hr_before), 4),
                  TablePrinter::Fmt(Mean(hr_after), 4),
                  TablePrinter::Fmt(w_hr.p_value, 4),
                  TablePrinter::Fmt(Mean(ndcg_before), 4),
                  TablePrinter::Fmt(Mean(ndcg_after), 4),
                  TablePrinter::Fmt(w_ndcg.p_value, 4)});
  }
  table.Print(std::cout, "Table IX: ranking with and without Adaptive Model Update");
  std::cout << "\nPaper-shape check: NECS_u >= NECS on every cluster "
               "(paper p-values < 0.05 with 4 runs x many apps; small run "
               "counts weaken the test at quick scale).\n";
  return 0;
}
