// Microbenchmarks (google-benchmark): the hot paths behind LITE's
// "recommendation in under 2 seconds" claim — cost-model evaluation,
// feature extraction, NECS inference (cached and uncached), plus the
// tensor kernels they sit on.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "sparksim/eventlog.h"
#include "sparksim/runner.h"
#include "tensor/autodiff.h"

namespace {

using namespace lite;

spark::SparkRunner& Runner() {
  static spark::SparkRunner* runner = new spark::SparkRunner();
  return *runner;
}

Corpus& SmallCorpus() {
  static Corpus* corpus = [] {
    CorpusBuilder builder(&Runner());
    CorpusOptions opts;
    opts.apps = {"TS", "PR", "KM"};
    opts.clusters = {spark::ClusterEnv::ClusterA()};
    opts.configs_per_setting = 2;
    opts.max_stage_instances_per_run = 6;
    opts.max_code_tokens = 128;
    return new Corpus(builder.Build(opts));
  }();
  return *corpus;
}

NecsModel& Model() {
  static NecsModel* model = [] {
    NecsConfig cfg;
    return new NecsModel(SmallCorpus().vocab->size(),
                         SmallCorpus().op_vocab->size(), cfg, 1);
  }();
  return *model;
}

void BM_MatMul(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng, 1.0f);
  Tensor b = Tensor::Randn({n, n}, &rng, 1.0f);
  Tensor c(n, n);
  for (auto _ : state) {
    MatMul(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(128);

void BM_Conv1DForward(benchmark::State& state) {
  Rng rng(2);
  VarPtr x = Input(Tensor::Randn({16, static_cast<size_t>(state.range(0))}, &rng, 1.0f));
  VarPtr w = Param(Tensor::Randn({16, 16 * 4}, &rng, 0.1f));
  VarPtr b = Param(Tensor::Zeros({16}));
  for (auto _ : state) {
    VarPtr out = ops::Conv1D(x, w, b, 4);
    benchmark::DoNotOptimize(out->value.data());
  }
}
BENCHMARK(BM_Conv1DForward)->Arg(128)->Arg(400)->Arg(1000);

void BM_CostModelRun(benchmark::State& state) {
  const auto* app = spark::AppCatalog::Find("SCC");  // 91 stage executions.
  spark::DataSpec data = app->MakeData(app->test_size_mb);
  spark::Config config = spark::KnobSpace::Spark16().DefaultConfig();
  for (auto _ : state) {
    auto r = Runner().cost_model().Run(*app, data, spark::ClusterEnv::ClusterC(),
                                       config);
    benchmark::DoNotOptimize(r.total_seconds);
  }
}
BENCHMARK(BM_CostModelRun);

void BM_EventLogRoundtrip(benchmark::State& state) {
  const auto* app = spark::AppCatalog::Find("PR");
  spark::DataSpec data = app->MakeData(100);
  auto sub = Runner().Submit(*app, data, spark::ClusterEnv::ClusterA(),
                             spark::KnobSpace::Spark16().DefaultConfig());
  for (auto _ : state) {
    spark::ParsedEventLog parsed;
    bool ok = spark::ParseEventLog(sub.event_log, &parsed);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_EventLogRoundtrip);

void BM_FeatureExtraction(benchmark::State& state) {
  const Corpus& corpus = SmallCorpus();
  CorpusBuilder builder(&Runner());
  const auto* app = spark::AppCatalog::Find("PR");
  spark::DataSpec data = app->MakeData(app->test_size_mb);
  spark::Config config = spark::KnobSpace::Spark16().DefaultConfig();
  for (auto _ : state) {
    CandidateEval ce = builder.FeaturizeCandidate(
        corpus, *app, data, spark::ClusterEnv::ClusterC(), config);
    benchmark::DoNotOptimize(ce.stage_instances.size());
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_NecsForwardFull(benchmark::State& state) {
  const StageInstance& inst = SmallCorpus().instances[0];
  for (auto _ : state) {
    auto fwd = Model().Forward(inst);
    benchmark::DoNotOptimize(fwd.pred->value[0]);
  }
}
BENCHMARK(BM_NecsForwardFull);

void BM_NecsPredictCached(benchmark::State& state) {
  const StageInstance& inst = SmallCorpus().instances[0];
  Model().PredictTarget(inst);  // warm the cache.
  for (auto _ : state) {
    double p = Model().PredictTarget(inst);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_NecsPredictCached);

void BM_NecsPredictBatch(benchmark::State& state) {
  const auto& insts = SmallCorpus().instances;
  Model().WarmEncoderCache(insts);
  for (auto _ : state) {
    std::vector<double> p = Model().PredictBatch(insts);
    benchmark::DoNotOptimize(p.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(insts.size()));
}
BENCHMARK(BM_NecsPredictBatch);

void BM_TrainStep(benchmark::State& state) {
  // One Adam minibatch step over 8 instances.
  NecsTrainer trainer;
  TrainOptions opts;
  opts.epochs = 1;
  opts.batch_size = 8;
  std::vector<StageInstance> batch(SmallCorpus().instances.begin(),
                                   SmallCorpus().instances.begin() + 8);
  for (auto _ : state) {
    trainer.Train(&Model(), batch, opts);
  }
}
BENCHMARK(BM_TrainStep);

void BM_EndToEndRecommend(benchmark::State& state) {
  static LiteSystem* lite = [] {
    LiteOptions opts;
    opts.corpus.apps = {"TS", "PR", "KM"};
    opts.corpus.clusters = {spark::ClusterEnv::ClusterA()};
    opts.corpus.configs_per_setting = 2;
    opts.corpus.max_stage_instances_per_run = 5;
    opts.train.epochs = 3;
    opts.num_candidates = 60;
    auto* s = new LiteSystem(&Runner(), opts);
    s->TrainOffline();
    return s;
  }();
  const auto* app = spark::AppCatalog::Find("PR");
  spark::DataSpec data = app->MakeData(app->test_size_mb);
  for (auto _ : state) {
    auto rec = lite->Recommend(*app, data, spark::ClusterEnv::ClusterC());
    benchmark::DoNotOptimize(rec.predicted_seconds);
  }
}
BENCHMARK(BM_EndToEndRecommend)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
