// Table VIII reproduction — Adaptive Candidate Generation.
// (a) RFR point prediction vs LITE (region + NECS ranking): mean ETR and
//     actual execution time on large jobs (cluster C).
// (b) Sampling strategies inside the tuning pipeline: uniform random vs
//     Latin hypercube vs ACG regions — ranking quality of NECS over each
//     candidate pool and the true quality of the pool itself.
#include <iostream>

#include "bench/bench_common.h"
#include "ml/sampling.h"
#include "tuning/tuner.h"

using namespace lite;
using namespace lite::bench;

int main() {
  ScaleProfile profile = GetScaleProfile();
  spark::SparkRunner runner;
  std::cout << "Table VIII — Adaptive Candidate Generation (scale="
            << profile.name << ")\n";

  LiteOptions lopts;
  lopts.corpus = MakeCorpusOptions(profile, {}, spark::ClusterEnv::AllClusters());
  ApplyLiteProfile(profile, &lopts);
  LiteSystem lite(&runner, lopts);
  lite.TrainOffline();
  const CandidateGenerator& acg = lite.candidate_generator();
  spark::ClusterEnv env = spark::ClusterEnv::ClusterC();

  // ---------------------------------------------------------- Part (a)
  {
    TablePrinter table({"App", "t RFR (s)", "t LITE (s)", "ETR RFR", "ETR LITE"});
    double sum_rfr = 0, sum_lite = 0, sum_etr_rfr = 0, sum_etr_lite = 0;
    for (const auto& app : spark::AppCatalog::All()) {
      spark::DataSpec data = app.MakeData(app.test_size_mb);
      double t_default = runner.Measure(
          app, data, env, spark::KnobSpace::Spark16().DefaultConfig());
      spark::Config rfr_cfg = acg.PointPrediction(app, data, env);
      double t_rfr = runner.Measure(app, data, env, rfr_cfg);
      LiteSystem::Recommendation rec = lite.Recommend(app, data, env);
      double t_lite = runner.Measure(app, data, env, rec.config);
      double t_min = std::min({t_rfr, t_lite, t_default});
      double etr_rfr = ExecutionTimeReduction(t_default, t_rfr, t_min);
      double etr_lite = ExecutionTimeReduction(t_default, t_lite, t_min);
      sum_rfr += t_rfr;
      sum_lite += t_lite;
      sum_etr_rfr += etr_rfr;
      sum_etr_lite += etr_lite;
      table.AddRow({app.abbrev, TablePrinter::Fmt(t_rfr, 1),
                    TablePrinter::Fmt(t_lite, 1), TablePrinter::Fmt(etr_rfr, 2),
                    TablePrinter::Fmt(etr_lite, 2)});
    }
    double n = static_cast<double>(spark::AppCatalog::Count());
    table.AddRow({"MEAN", TablePrinter::Fmt(sum_rfr / n, 1),
                  TablePrinter::Fmt(sum_lite / n, 1),
                  TablePrinter::Fmt(sum_etr_rfr / n, 2),
                  TablePrinter::Fmt(sum_etr_lite / n, 2)});
    table.Print(std::cout,
                "Table VIII(a): RFR point prediction vs LITE on large jobs");
  }

  // ---------------------------------------------------------- Part (b)
  {
    const auto& space = spark::KnobSpace::Spark16();
    struct Agg {
      std::vector<double> hr, ndcg, best;
    };
    std::map<std::string, Agg> agg;
    Rng rng(77);
    const NecsModel* model = lite.model();
    CorpusBuilder builder(&runner);

    for (const auto& app : spark::AppCatalog::All()) {
      spark::DataSpec data = app.MakeData(app.validation_size_mb);
      std::map<std::string, std::vector<spark::Config>> pools;
      size_t n = profile.ranking_candidates;
      for (const auto& u : RandomSample(n, space.size(), &rng)) {
        pools["Random"].push_back(space.Denormalize(u));
      }
      for (const auto& u : LatinHypercubeSample(n, space.size(), &rng)) {
        pools["LHS"].push_back(space.Denormalize(u));
      }
      pools["ACG"] = acg.SampleCandidates(app, data, env, n, &rng);

      for (auto& [name, pool] : pools) {
        std::vector<double> pred, truth;
        for (const auto& config : pool) {
          CandidateEval ce = builder.FeaturizeCandidate(lite.corpus(), app,
                                                        data, env, config);
          pred.push_back(model->PredictAppSeconds(ce));
          truth.push_back(runner.Measure(app, data, env, config));
        }
        agg[name].hr.push_back(HitRatioAtK(pred, truth, 5));
        agg[name].ndcg.push_back(NdcgAtK(pred, truth, 5));
        agg[name].best.push_back(*std::min_element(truth.begin(), truth.end()));
      }
    }

    TablePrinter table({"Sampling", "HR@5", "NDCG@5", "mean best t (s)"});
    for (const char* name : {"Random", "LHS", "ACG"}) {
      const Agg& a = agg[name];
      table.AddRow({name, TablePrinter::Fmt(Mean(a.hr), 4),
                    TablePrinter::Fmt(Mean(a.ndcg), 4),
                    TablePrinter::Fmt(Mean(a.best), 1)});
    }
    table.Print(std::cout,
                "Table VIII(b): sampling strategies (validation, cluster C)");
    std::cout << "\nPaper-shape check: LITE beats the raw RFR point (a region "
                 "beats a risky point), and ACG pools contain better "
                 "configurations than Random/LHS.\n";
  }
  return 0;
}
