// Quantized candidate-scoring throughput: the exact fp32 batched path
// against the int8 and fp16 quantized backends (scoring-plan fast path,
// thread-local arenas, SIMD GEMM when available), single-threaded so the
// comparison isolates kernel speed. The harness records relative-error
// percentiles against the exact scores and the arena allocation counters
// (docs/OBSERVABILITY.md) alongside the timings.
//
// Acceptance (printed at the end): at the 1000-candidate pool the int8
// backend is >= 3x the exact batched path with every candidate's relative
// error inside the shipped bound (docs/QUANTIZATION.md).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>

#include "bench/bench_common.h"
#include "obs/metrics.h"
#include "tensor/qkernels.h"

using namespace lite;
using namespace lite::bench;

namespace {

constexpr double kInt8MaxRelError = 0.05;
constexpr double kFp16MaxRelError = 5e-3;

double TimeSeconds(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct ErrorStats {
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

ErrorStats RelErrors(const std::vector<double>& exact,
                     const std::vector<double>& quant) {
  std::vector<double> errs;
  errs.reserve(exact.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    errs.push_back(std::fabs(quant[i] - exact[i]) /
                   std::max(std::fabs(exact[i]), 1e-9));
  }
  std::sort(errs.begin(), errs.end());
  ErrorStats s;
  if (errs.empty()) return s;
  s.p50 = errs[errs.size() / 2];
  s.p95 = errs[(errs.size() * 95) / 100];
  s.max = errs.back();
  return s;
}

size_t Argmin(const std::vector<double>& v) {
  return static_cast<size_t>(std::min_element(v.begin(), v.end()) -
                             v.begin());
}

}  // namespace

int main() {
  ScaleProfile profile = GetScaleProfile();
  std::cout << "Quantized scoring bench (scale=" << profile.name
            << ", avx2=" << (qk::Avx2KernelAvailable() ? "yes" : "no")
            << ")\n";

  spark::SparkRunner runner;
  LiteOptions opts;
  opts.corpus = MakeCorpusOptions(profile, {"TS", "PR", "KM"},
                                  {spark::ClusterEnv::ClusterA()});
  opts.necs = profile.necs;
  opts.train.epochs = profile.name == "smoke" ? 3 : 8;
  opts.ensemble_size = 1;
  LiteSystem system(&runner, opts);
  system.TrainOffline();
  std::vector<const NecsModel*> models{system.model()};

  const auto* app = spark::AppCatalog::Find("PR");
  spark::DataSpec data = app->MakeData(app->test_size_mb);
  const spark::ClusterEnv env = spark::ClusterEnv::ClusterC();

  std::vector<size_t> pools = profile.name == "smoke"
                                  ? std::vector<size_t>{50, 200}
                                  : std::vector<size_t>{100, 1000};

  obs::SetEnabled(true);
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter* arena_allocs = reg.GetCounter("qk_arena_allocs_total");
  obs::Counter* arena_bytes = reg.GetCounter("qk_arena_bytes_total");

  TablePrinter table({"Pool", "Backend", "Time (s)", "Speedup", "Err p50",
                      "Err p95", "Err max", "Top-1"});
  std::vector<BenchJsonField> json_fields{
      {"avx2", BenchJsonBool(qk::Avx2KernelAvailable())}};
  bool errors_in_bound = true;
  double int8_speedup_at_1k = 0.0;

  for (size_t pool : pools) {
    const auto& space = spark::KnobSpace::Spark16();
    Rng rng(4321 + pool);
    std::vector<spark::Config> candidates;
    candidates.reserve(pool);
    for (size_t i = 0; i < pool; ++i) {
      candidates.push_back(space.RandomConfig(&rng));
    }
    std::string prefix = "pool_" + std::to_string(pool);

    system.model()->InvalidateCache();
    std::vector<double> exact;
    double t_exact = TimeSeconds([&] {
      exact = ScoreCandidatesWithEnsemble(&runner, system.corpus(), models,
                                          *app, data, env, candidates, 1);
    });
    table.AddRow({TablePrinter::Fmt(static_cast<int64_t>(pool)), "exact",
                  TablePrinter::Fmt(t_exact), "1.00", "-", "-", "-", "-"});
    json_fields.push_back({prefix + "_exact_s", BenchJsonNum(t_exact)});

    for (auto [backend, bound] :
         {std::pair{QuantBackend::kInt8, kInt8MaxRelError},
          std::pair{QuantBackend::kFp16, kFp16MaxRelError}}) {
      const std::string name = QuantBackendName(backend);
      system.model()->InvalidateCache();
      const uint64_t allocs_before = arena_allocs->Value();
      const uint64_t bytes_before = arena_bytes->Value();
      std::vector<double> quant;
      double t_quant = TimeSeconds([&] {
        quant = ScoreCandidatesWithEnsembleQuantized(
            &runner, system.corpus(), models, *app, data, env, candidates,
            backend, 1);
      });
      const uint64_t allocs = arena_allocs->Value() - allocs_before;
      const uint64_t bytes = arena_bytes->Value() - bytes_before;
      ErrorStats err = RelErrors(exact, quant);
      bool in_bound = err.max <= bound;
      errors_in_bound = errors_in_bound && in_bound;
      bool top1 = Argmin(exact) == Argmin(quant);
      double speedup = t_quant > 0 ? t_exact / t_quant : 0.0;
      if (pool == 1000 && backend == QuantBackend::kInt8) {
        int8_speedup_at_1k = speedup;
      }
      table.AddRow({TablePrinter::Fmt(static_cast<int64_t>(pool)), name,
                    TablePrinter::Fmt(t_quant),
                    TablePrinter::Fmt(speedup, 2),
                    TablePrinter::Fmt(err.p50, 5),
                    TablePrinter::Fmt(err.p95, 5),
                    TablePrinter::Fmt(err.max, 5), top1 ? "same" : "moved"});
      json_fields.push_back({prefix + "_" + name + "_s",
                             BenchJsonNum(t_quant)});
      json_fields.push_back({prefix + "_" + name + "_speedup",
                             BenchJsonNum(speedup)});
      json_fields.push_back({prefix + "_" + name + "_err_p50",
                             BenchJsonNum(err.p50)});
      json_fields.push_back({prefix + "_" + name + "_err_p95",
                             BenchJsonNum(err.p95)});
      json_fields.push_back({prefix + "_" + name + "_err_max",
                             BenchJsonNum(err.max)});
      json_fields.push_back({prefix + "_" + name + "_err_in_bound",
                             BenchJsonBool(in_bound)});
      json_fields.push_back({prefix + "_" + name + "_top1_same",
                             BenchJsonBool(top1)});
      json_fields.push_back({prefix + "_" + name + "_arena_allocs",
                             BenchJsonNum(static_cast<double>(allocs))});
      json_fields.push_back({prefix + "_" + name + "_arena_bytes",
                             BenchJsonNum(static_cast<double>(bytes))});
    }
  }

  table.Print(std::cout, "Exact fp32 vs quantized candidate scoring");
  std::cout << "\nAll relative errors inside the shipped bounds: "
            << (errors_in_bound ? "yes" : "NO") << "\n";
  if (int8_speedup_at_1k > 0.0) {
    std::cout << "Acceptance (int8 >= 3x exact at 1000 candidates, errors in "
              << "bound): "
              << (errors_in_bound && int8_speedup_at_1k >= 3.0 ? "PASS"
                                                               : "FAIL")
              << " (" << TablePrinter::Fmt(int8_speedup_at_1k, 2) << "x)\n";
  }

  json_fields.push_back({"int8_speedup_at_1k",
                         BenchJsonNum(int8_speedup_at_1k)});
  json_fields.push_back({"errors_in_bound", BenchJsonBool(errors_in_bound)});
  WriteBenchJson("BENCH_quant.json", "bench_quant_scoring", profile,
                 json_fields);
  return errors_in_bound ? 0 : 1;
}
