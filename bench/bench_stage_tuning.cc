// Per-stage tuning benchmark: what fine-grained overrides buy, what the
// AQE-style re-tune costs, and whether the idle feature is truly free.
//
// Three questions, answered in one run and exported to
// BENCH_stage_tuning.json:
//   1. Quality — per-stage planning must never lose to the app-level
//      config under its own evaluator. Gated twice: with the *simulator*
//      evaluator the staged config must win on the quiet simulator itself
//      (the bench-side mirror of the `stage_override_dominance` oracle
//      invariant), and with the *NECS stage head* the planned total must
//      never exceed the head's baseline. The head-planned config's true
//      simulator outcome is reported un-gated — that delta measures model
//      quality, not planner correctness.
//   2. Re-tune overhead — shipping the re-tune machinery must add < 5% to
//      the plain serving path when idle (p50 over interleaved calls), and
//      a mid-job Retune's p50 latency vs a from-scratch RecommendStaged
//      is reported.
//   3. Inert-path parity — with stage tuning enabled but unused, plain
//      Recommend must be bit-identical to the disabled service (config,
//      predicted seconds, candidates evaluated).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "lite/snapshot.h"
#include "serve/tuning_service.h"
#include "sparksim/eventlog.h"
#include "sparksim/stage_planner.h"

using namespace lite;
using namespace lite::bench;

namespace {

double TimeSeconds(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t i = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[i];
}

struct Query {
  const spark::ApplicationSpec* app;
  spark::DataSpec data;
  spark::ClusterEnv env;
};

}  // namespace

int main() {
  ScaleProfile profile = GetScaleProfile();
  const int reps = profile.name == "smoke" ? 6
                   : profile.name == "paper" ? 24
                                             : 12;
  std::cout << "Stage-tuning bench (scale=" << profile.name << ", " << reps
            << " reps/query)\n";

  spark::SparkRunner runner;
  LiteOptions opts;
  opts.corpus = MakeCorpusOptions(profile, {"TS", "PR", "KM"},
                                  {spark::ClusterEnv::ClusterA()});
  ApplyLiteProfile(profile, &opts);
  opts.stage_tuning = true;
  LiteSystem system(&runner, opts);
  system.TrainOffline();

  std::string snap_dir =
      std::filesystem::temp_directory_path() / "bench_stage_tuning_snapshot";
  std::filesystem::create_directories(snap_dir);
  if (!SaveSnapshot(system, snap_dir)) {
    std::cerr << "failed to save snapshot\n";
    return 1;
  }

  std::vector<Query> queries;
  for (const char* name : {"TS", "PR", "KM"}) {
    const auto* app = spark::AppCatalog::Find(name);
    queries.push_back({app, app->MakeData(app->test_size_mb),
                       spark::ClusterEnv::ClusterA()});
  }

  serve::ServiceOptions off_opts;
  off_opts.scoring.threads = 1;
  off_opts.update_batch = 0;
  serve::TuningService off(&runner, off_opts);
  if (!off.LoadSnapshot(snap_dir)) return 1;
  int off_session = off.OpenSession("bench");

  serve::ServiceOptions on_opts = off_opts;
  on_opts.stage_tuning.enabled = true;
  serve::TuningService on(&runner, on_opts);
  if (!on.LoadSnapshot(snap_dir)) return 1;
  int on_session = on.OpenSession("bench");

  // Warm the encoder caches on both services so the timed loops compare
  // machinery, not cache luck.
  for (const Query& q : queries) {
    (void)off.Recommend(off_session, *q.app, q.data, q.env);
    (void)on.Recommend(on_session, *q.app, q.data, q.env);
  }

  std::vector<BenchJsonField> json_fields{
      {"reps_per_query", BenchJsonNum(reps)}};

  // --- 3 (first, while the caches are untouched by staged requests):
  // inert-path bit-parity + idle overhead. ---------------------------------
  bool bit_parity = true;
  std::vector<double> off_walls, on_walls;
  for (const Query& q : queries) {
    for (int r = 0; r < reps * 3; ++r) {
      serve::TuningService::Response a, b;
      off_walls.push_back(TimeSeconds(
          [&] { a = off.Recommend(off_session, *q.app, q.data, q.env); }));
      on_walls.push_back(TimeSeconds(
          [&] { b = on.Recommend(on_session, *q.app, q.data, q.env); }));
      bit_parity = bit_parity && a.ok && b.ok && a.rec.config == b.rec.config &&
                   a.rec.predicted_seconds == b.rec.predicted_seconds &&
                   a.rec.candidates_evaluated == b.rec.candidates_evaluated;
    }
  }
  // Min-of-samples strips scheduler noise: the two paths run identical
  // code when the feature is idle, so their best-case walls must agree.
  const double off_best = *std::min_element(off_walls.begin(), off_walls.end());
  const double on_best = *std::min_element(on_walls.begin(), on_walls.end());
  const double idle_overhead_pct =
      off_best > 0.0 ? (on_best - off_best) / off_best * 100.0 : 0.0;
  std::cout << "Inert path: bit parity " << (bit_parity ? "yes" : "NO")
            << ", idle overhead "
            << TablePrinter::Fmt(idle_overhead_pct, 2) << "%\n";
  json_fields.push_back({"inert_bit_parity", BenchJsonBool(bit_parity)});
  json_fields.push_back(
      {"idle_overhead_pct", BenchJsonNum(idle_overhead_pct)});

  // --- 1a. Quality with the simulator evaluator: plan against the quiet
  // model itself, so the evaluator is truthful and dominance must be won
  // on the simulator — the bench-side mirror of the oracle invariant. ------
  spark::CostModelOptions quiet_opts;
  quiet_opts.noise_sigma = 0.0;
  spark::CostModel quiet(quiet_opts);
  bool sim_never_loses = true;
  double sim_improvement_sum = 0.0;
  for (const Query& q : queries) {
    spark::StagePlanner planner;
    spark::StageEvalFactory factory = spark::MakeSimulatorStageEvalFactory(
        &quiet, q.app, q.data, &q.env);
    const spark::Config base_config =
        spark::KnobSpace::Spark16().DefaultConfig();
    spark::StagePlan plan =
        planner.Plan(*q.app, spark::ResolveIterations(*q.app, q.data),
                     base_config, factory(1.0));
    spark::AppRunResult base = quiet.Run(*q.app, q.data, q.env, base_config);
    spark::AppRunResult staged =
        quiet.RunStaged(*q.app, q.data, q.env, plan.staged);
    if (base.failed) continue;
    sim_never_loses = sim_never_loses && plan.ok && !staged.failed &&
                      staged.total_seconds <=
                          base.total_seconds * (1.0 + 1e-9);
    if (!staged.failed) {
      sim_improvement_sum +=
          (base.total_seconds - staged.total_seconds) / base.total_seconds;
    }
    std::cout << "  " << q.app->name << " (simulator evaluator): "
              << TablePrinter::Fmt(base.total_seconds, 2) << " s -> "
              << TablePrinter::Fmt(staged.total_seconds, 2) << " s ("
              << plan.staged.overrides.size() << " overrides)\n";
  }
  const double sim_improvement_pct =
      sim_improvement_sum / static_cast<double>(queries.size()) * 100.0;
  std::cout << "Quality (simulator evaluator): never loses "
            << (sim_never_loses ? "yes" : "NO") << ", mean improvement "
            << TablePrinter::Fmt(sim_improvement_pct, 2) << "%\n";
  json_fields.push_back(
      {"sim_staged_never_loses", BenchJsonBool(sim_never_loses)});
  json_fields.push_back(
      {"sim_mean_improvement_pct", BenchJsonNum(sim_improvement_pct)});

  // --- 1b. Quality with the NECS stage head (the serving path): planned
  // total never exceeds the head's own baseline; the true-simulator delta
  // of the head's plan is reported un-gated (it measures head accuracy). --
  bool head_never_loses = true;
  double head_sim_delta_sum = 0.0;
  size_t planned_queries = 0;
  std::vector<serve::TuningService::StagedResponse> staged_responses;
  for (const Query& q : queries) {
    serve::TuningService::StagedResponse sr =
        on.RecommendStaged(on_session, *q.app, q.data, q.env);
    staged_responses.push_back(sr);
    if (!sr.base.ok || !sr.stage_tuned) continue;
    ++planned_queries;
    head_never_loses =
        head_never_loses && sr.planned_seconds <= sr.baseline_seconds;
    spark::AppRunResult base =
        quiet.Run(*q.app, q.data, q.env, sr.base.rec.config);
    spark::AppRunResult staged =
        quiet.RunStaged(*q.app, q.data, q.env, sr.staged);
    if (!base.failed && !staged.failed) {
      head_sim_delta_sum +=
          (base.total_seconds - staged.total_seconds) / base.total_seconds;
    }
  }
  const bool all_planned = planned_queries == queries.size();
  const double head_sim_delta_pct =
      planned_queries > 0
          ? head_sim_delta_sum / static_cast<double>(planned_queries) * 100.0
          : 0.0;
  std::cout << "Quality (stage head): planned <= baseline "
            << (head_never_loses ? "yes" : "NO")
            << ", true-simulator delta of the head's plan "
            << TablePrinter::Fmt(head_sim_delta_pct, 2)
            << "% (reported, not gated)\n";
  json_fields.push_back(
      {"head_planned_never_loses", BenchJsonBool(head_never_loses)});
  json_fields.push_back({"all_queries_planned", BenchJsonBool(all_planned)});
  json_fields.push_back(
      {"head_sim_delta_pct", BenchJsonNum(head_sim_delta_pct)});

  // --- 2. Re-tune overhead vs a from-scratch RecommendStaged. -------------
  std::vector<double> recommend_walls, retune_walls;
  bool retunes_ok = true;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const Query& q = queries[qi];
    const serve::TuningService::StagedResponse& sr = staged_responses[qi];
    if (!sr.stage_tuned) continue;
    // Observed prefix: the event log of a real (noisy) run of the staged
    // config — exactly what a driver would hand back mid-job.
    spark::AppRunResult run =
        runner.cost_model().RunStaged(*q.app, q.data, q.env, sr.staged);
    const std::string event_log = spark::WriteEventLog(*q.app, run);
    for (int r = 0; r < reps; ++r) {
      recommend_walls.push_back(TimeSeconds([&] {
        (void)on.RecommendStaged(on_session, *q.app, q.data, q.env);
      }));
      serve::TuningService::RetuneResponse rr;
      retune_walls.push_back(TimeSeconds([&] {
        rr = on.Retune(on_session, *q.app, q.data, q.env, sr.staged,
                       event_log);
      }));
      retunes_ok = retunes_ok && rr.ok;
    }
  }
  const double recommend_p50 = Percentile(recommend_walls, 0.5);
  const double retune_p50 = Percentile(retune_walls, 0.5);
  const double retune_overhead_pct =
      recommend_p50 > 0.0 ? retune_p50 / recommend_p50 * 100.0 : 0.0;
  std::cout << "Re-tune: p50 " << TablePrinter::Fmt(retune_p50 * 1e3, 3)
            << " ms vs RecommendStaged p50 "
            << TablePrinter::Fmt(recommend_p50 * 1e3, 3) << " ms ("
            << TablePrinter::Fmt(retune_overhead_pct, 2) << "%)\n";
  json_fields.push_back({"recommend_staged_p50_ms",
                         BenchJsonNum(recommend_p50 * 1e3)});
  json_fields.push_back({"retune_p50_ms", BenchJsonNum(retune_p50 * 1e3)});
  json_fields.push_back(
      {"retune_overhead_pct", BenchJsonNum(retune_overhead_pct)});

  const bool pass = bit_parity && idle_overhead_pct < 5.0 &&
                    sim_never_loses && head_never_loses && all_planned &&
                    retunes_ok;
  std::cout << "\nAcceptance (inert bit parity, idle overhead < 5%, staged "
               "never loses under its evaluator): "
            << (pass ? "PASS" : "FAIL") << "\n";
  json_fields.push_back({"pass", BenchJsonBool(pass)});
  WriteBenchJson("BENCH_stage_tuning.json", "stage_tuning", profile,
                 json_fields);
  std::filesystem::remove_all(snap_dir);
  return pass ? 0 : 1;
}
