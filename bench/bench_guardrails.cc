// Guardrail scenario benchmark: the serve::Guardrail safety layer under
// realistic traffic shapes, exported to BENCH_guardrails.json.
//
// Four scenarios, three asserted gates:
//   1. Recurring jobs (happy path) — a healthy tenant re-submitting the
//      same applications. Gate: guardrail-enabled serving adds < 5% over
//      the guardrail-disabled service (the breaker is CLOSED, budgets are
//      transparent, so the only cost is the Admit/Observe bookkeeping).
//   2. SLA tenants — a tenant with a finite predicted-runtime deadline;
//      every served recommendation must meet it (the pipeline filters
//      candidates before argmin), while an unconstrained tenant on the
//      same service is untouched.
//   3. Flash crowd — a burst of concurrent clients across many tenants.
//      All requests must complete (no failures, no rejects at this
//      admission bound) with the guardrail engaged on every one.
//   4. Model-regression spike — failed/censored resilient-runner outcomes
//      trip the breaker. Gates: ZERO regressed-model recommendations reach
//      the quarantined tenant (every response is the incumbent verbatim),
//      and the tenant recovers through half-open probing (trip count 1,
//      recovery count 1, transition log ends CLOSED).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <iostream>
#include <limits>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "lite/snapshot.h"
#include "obs/metrics.h"
#include "serve/tuning_service.h"

using namespace lite;
using namespace lite::bench;

namespace {

double TimeSeconds(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->Value();
}

struct Query {
  const spark::ApplicationSpec* app;
  spark::DataSpec data;
  spark::ClusterEnv env;
};

serve::ServiceOptions GuardedOptions() {
  serve::ServiceOptions opts;
  opts.max_pending = 512;
  opts.scoring.threads = 1;
  opts.update_batch = 0;  // keep the model frozen across scenarios.
  opts.guardrail.enabled = true;
  opts.guardrail.window = 8;
  opts.guardrail.min_observations = 4;
  opts.guardrail.failure_rate_threshold = 0.5;
  opts.guardrail.quarantine_cooldown = 3;
  opts.guardrail.probe_interval = 2;
  opts.guardrail.probes_to_close = 2;
  return opts;
}

int Gate(bool ok, const std::string& what) {
  std::cout << (ok ? "[gate ok]   " : "[gate FAIL] ") << what << "\n";
  return ok ? 0 : 1;
}

}  // namespace

int main() {
  ScaleProfile profile = GetScaleProfile();
  const int reps = profile.name == "smoke" ? 6
                   : profile.name == "paper" ? 40
                                             : 16;
  std::cout << "Guardrail bench (scale=" << profile.name << ", " << reps
            << " requests/scenario-client)\n";

  spark::SparkRunner runner;
  LiteOptions opts;
  opts.corpus = MakeCorpusOptions(profile, {"TS", "PR", "KM"},
                                  {spark::ClusterEnv::ClusterA()});
  ApplyLiteProfile(profile, &opts);
  LiteSystem system(&runner, opts);
  system.TrainOffline();

  std::string snap_dir =
      std::filesystem::temp_directory_path() / "bench_guardrails_snapshot";
  std::filesystem::create_directories(snap_dir);
  if (!SaveSnapshot(system, snap_dir)) {
    std::cerr << "failed to save snapshot\n";
    return 1;
  }

  std::vector<Query> queries;
  for (const char* name : {"TS", "PR", "KM"}) {
    const auto* app = spark::AppCatalog::Find(name);
    queries.push_back({app, app->MakeData(app->test_size_mb),
                       spark::ClusterEnv::ClusterA()});
  }

  int gate_failures = 0;
  std::vector<BenchJsonField> json_fields{
      {"requests_per_client", BenchJsonNum(reps)}};

  // --- 1. Recurring jobs: happy-path overhead of the guardrail. ---------
  serve::ServiceOptions plain_opts;
  plain_opts.scoring.threads = 1;
  plain_opts.update_batch = 0;
  serve::TuningService plain(&runner, plain_opts);
  serve::TuningService guarded_hp(&runner, GuardedOptions());
  if (!plain.LoadSnapshot(snap_dir) || !guarded_hp.LoadSnapshot(snap_dir)) {
    return 1;
  }
  int plain_sess = plain.OpenSession("recurring");
  int guarded_sess = guarded_hp.OpenSession("recurring");
  // Warm both paths over every query so the timed loops compare guardrail
  // bookkeeping, not encoder-cache luck.
  for (const Query& q : queries) {
    (void)plain.Recommend(plain_sess, *q.app, q.data, q.env);
    (void)guarded_hp.Recommend(guarded_sess, *q.app, q.data, q.env);
  }
  // Block timing, best of alternating rounds: requests here are a few
  // hundred microseconds, so per-request timestamps drown the guardrail's
  // bookkeeping in scheduler noise. Timing whole round-robin blocks and
  // taking each path's fastest round is the standard de-noising estimator —
  // the minimum is the run with the least interference, which is exactly
  // the steady-state cost the overhead gate is about.
  const int hp_rounds = 5;
  const int hp_block = reps * static_cast<int>(queries.size());
  double t_plain = std::numeric_limits<double>::infinity();
  double t_guarded = std::numeric_limits<double>::infinity();
  for (int round = 0; round < hp_rounds; ++round) {
    t_plain = std::min(t_plain, TimeSeconds([&] {
      for (int r = 0; r < hp_block; ++r) {
        const Query& q = queries[static_cast<size_t>(r) % queries.size()];
        (void)plain.Recommend(plain_sess, *q.app, q.data, q.env);
      }
    }));
    t_guarded = std::min(t_guarded, TimeSeconds([&] {
      for (int r = 0; r < hp_block; ++r) {
        const Query& q = queries[static_cast<size_t>(r) % queries.size()];
        (void)guarded_hp.Recommend(guarded_sess, *q.app, q.data, q.env);
      }
    }));
  }
  const int hp_reps = hp_block;
  const double overhead_pct =
      t_plain > 0 ? (t_guarded - t_plain) / t_plain * 100.0 : 0.0;
  std::cout << "Happy path: plain " << t_plain / hp_reps * 1e3
            << " ms/req, guarded " << t_guarded / hp_reps * 1e3
            << " ms/req, overhead " << overhead_pct << "%\n";
  json_fields.push_back({"happy_plain_s", BenchJsonNum(t_plain)});
  json_fields.push_back({"happy_guarded_s", BenchJsonNum(t_guarded)});
  json_fields.push_back({"happy_overhead_pct", BenchJsonNum(overhead_pct)});
  gate_failures += Gate(overhead_pct < 5.0,
                        "guardrail happy-path overhead < 5%");

  // --- 2. SLA tenants: deadline-respecting argmin. ----------------------
  serve::TuningService sla_svc(&runner, GuardedOptions());
  if (!sla_svc.LoadSnapshot(snap_dir)) return 1;
  int free_sess = sla_svc.OpenSession("no-sla");
  int sla_sess = sla_svc.OpenSession("sla-tenant");
  const Query& sq = queries[0];
  // Calibrate the deadline off the unconstrained recommendation: anything
  // slightly above it is feasible, so the SLA tenant's responses must land
  // at or under it while still completing every request.
  serve::TuningService::Response free_r =
      sla_svc.Recommend(free_sess, *sq.app, sq.data, sq.env);
  if (!free_r.ok) return 1;
  const double deadline = free_r.rec.predicted_seconds * 1.05;
  serve::TenantPolicy sla_policy;
  sla_policy.sla_deadline_seconds = deadline;
  sla_svc.SetTenantPolicy("sla-tenant", sla_policy);
  const uint64_t sla_filtered_before =
      CounterValue("lite_sla_filtered_candidates_total");
  int sla_ok = 0, sla_met = 0;
  for (int r = 0; r < reps; ++r) {
    serve::TuningService::Response resp =
        sla_svc.Recommend(sla_sess, *sq.app, sq.data, sq.env);
    if (resp.ok) ++sla_ok;
    if (resp.ok && resp.rec.predicted_seconds <= deadline) ++sla_met;
  }
  const uint64_t sla_filtered =
      CounterValue("lite_sla_filtered_candidates_total") - sla_filtered_before;
  std::cout << "SLA tenant: " << sla_met << "/" << reps
            << " recommendations within the " << deadline
            << " s deadline (candidates filtered: " << sla_filtered << ")\n";
  json_fields.push_back({"sla_deadline_s", BenchJsonNum(deadline)});
  json_fields.push_back(
      {"sla_met", BenchJsonNum(static_cast<double>(sla_met))});
  json_fields.push_back(
      {"sla_filtered_candidates", BenchJsonNum(static_cast<double>(sla_filtered))});
  gate_failures +=
      Gate(sla_ok == reps && sla_met == reps,
           "every SLA-tenant recommendation met its deadline");

  // --- 3. Flash crowd: concurrent burst across many tenants. ------------
  serve::TuningService crowd(&runner, GuardedOptions());
  if (!crowd.LoadSnapshot(snap_dir)) return 1;
  const int crowd_clients = 8;
  std::vector<int> crowd_sess;
  for (int c = 0; c < crowd_clients; ++c) {
    crowd_sess.push_back(crowd.OpenSession("crowd-" + std::to_string(c)));
  }
  std::atomic<int> crowd_failed{0};
  std::atomic<int> crowd_rejected{0};
  double crowd_elapsed = TimeSeconds([&] {
    std::vector<std::thread> threads;
    for (int c = 0; c < crowd_clients; ++c) {
      threads.emplace_back([&, c] {
        std::vector<std::future<serve::TuningService::Response>> futs;
        for (int r = 0; r < reps; ++r) {
          const Query& q = queries[static_cast<size_t>(c + r) % queries.size()];
          futs.push_back(crowd.SubmitRecommend(crowd_sess[c], *q.app, q.data,
                                               q.env));
        }
        for (auto& f : futs) {
          serve::TuningService::Response resp = f.get();
          if (resp.rejected) {
            ++crowd_rejected;
          } else if (!resp.ok) {
            ++crowd_failed;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
  });
  crowd.Drain();
  const double crowd_total = static_cast<double>(crowd_clients) * reps;
  const double crowd_rps =
      crowd_elapsed > 0 ? crowd_total / crowd_elapsed : 0.0;
  const uint64_t crowd_admitted = crowd.guardrail()->stats().admitted;
  std::cout << "Flash crowd: " << crowd_clients << " clients, " << crowd_rps
            << " req/s, " << crowd_failed.load() << " failed, "
            << crowd_rejected.load() << " rejected, guardrail admitted "
            << crowd_admitted << "\n";
  json_fields.push_back({"crowd_clients", BenchJsonNum(crowd_clients)});
  json_fields.push_back({"crowd_rps", BenchJsonNum(crowd_rps)});
  json_fields.push_back(
      {"crowd_failed", BenchJsonNum(static_cast<double>(crowd_failed.load()))});
  json_fields.push_back(
      {"crowd_rejected",
       BenchJsonNum(static_cast<double>(crowd_rejected.load()))});
  gate_failures += Gate(
      crowd_failed.load() == 0 && crowd_rejected.load() == 0 &&
          crowd_admitted == static_cast<uint64_t>(crowd_total),
      "flash crowd fully served with the guardrail on every request");

  // --- 4. Model-regression spike: quarantine, fallback, recovery. -------
  serve::TuningService spike(&runner, GuardedOptions());
  if (!spike.LoadSnapshot(snap_dir)) return 1;
  serve::Guardrail* guard = spike.guardrail();
  int spike_sess = spike.OpenSession("spiky");
  const Query& gq = queries[0];
  spark::Config incumbent = spark::KnobSpace::Spark16().DefaultConfig();
  spark::MeasureOutcome healthy;
  healthy.seconds = 12.0;
  healthy.result = runner.cost_model().Run(*gq.app, gq.data, gq.env, incumbent);
  spike.SubmitFeedback(spike_sess, *gq.app, gq.data, gq.env, incumbent,
                       healthy);

  // The spike: model-chosen configs come back failed/censored at the cap.
  spark::MeasureOutcome stormy;
  stormy.seconds = 600.0;
  stormy.failed = true;
  stormy.censored = true;
  spark::Config regressed(spark::kNumKnobs, 0.9);
  for (int i = 0; i < 4; ++i) {
    spike.SubmitFeedback(spike_sess, *gq.app, gq.data, gq.env, regressed,
                         stormy);
  }
  const bool tripped =
      guard->StateOf("spiky") == serve::BreakerState::kQuarantined;

  // While quarantined, count any response that is NOT the incumbent
  // verbatim — the "zero regressed-model recommendations" gate. The
  // cooldown is 3, so exactly the first 3 requests are quarantine serves.
  int model_leaks = 0, quarantine_serves = 0;
  for (int i = 0; i < 3; ++i) {
    serve::TuningService::Response resp =
        spike.Recommend(spike_sess, *gq.app, gq.data, gq.env);
    if (resp.ok && resp.from_incumbent && resp.rec.config == incumbent &&
        resp.rec.candidates_evaluated == 0) {
      ++quarantine_serves;
    } else {
      ++model_leaks;
    }
  }
  const bool half_open =
      guard->StateOf("spiky") == serve::BreakerState::kProbing;

  // Recovery: keep requesting; feed every probe a healthy measurement
  // until the breaker closes. Count requests from trip to recovery.
  int recovery_requests = 0, recovery_probes = 0;
  while (guard->StateOf("spiky") != serve::BreakerState::kClosed &&
         recovery_requests < 64) {
    serve::TuningService::Response resp =
        spike.Recommend(spike_sess, *gq.app, gq.data, gq.env);
    ++recovery_requests;
    if (resp.ok && resp.probe) {
      ++recovery_probes;
      spark::MeasureOutcome probe_ok;
      probe_ok.seconds = 11.5;
      probe_ok.result =
          runner.cost_model().Run(*gq.app, gq.data, gq.env, resp.rec.config);
      spike.SubmitFeedback(spike_sess, *gq.app, gq.data, gq.env,
                           resp.rec.config, probe_ok);
    }
  }
  serve::Guardrail::Stats gstats = guard->stats();
  const bool recovered =
      guard->StateOf("spiky") == serve::BreakerState::kClosed &&
      gstats.trips == 1 && gstats.recoveries == 1 &&
      !guard->TransitionLog().empty() &&
      guard->TransitionLog().back().to == serve::BreakerState::kClosed;
  std::cout << "Regression spike: tripped=" << tripped
            << ", quarantine serves=" << quarantine_serves
            << ", model leaks=" << model_leaks
            << ", recovery in " << recovery_requests << " requests ("
            << recovery_probes << " probes)\n";
  json_fields.push_back(
      {"spike_tripped", BenchJsonBool(tripped)});
  json_fields.push_back(
      {"spike_model_leaks", BenchJsonNum(static_cast<double>(model_leaks))});
  json_fields.push_back(
      {"spike_recovery_requests",
       BenchJsonNum(static_cast<double>(recovery_requests))});
  json_fields.push_back(
      {"spike_recovery_probes",
       BenchJsonNum(static_cast<double>(recovery_probes))});
  json_fields.push_back(
      {"guardrail_trips", BenchJsonNum(static_cast<double>(gstats.trips))});
  json_fields.push_back(
      {"guardrail_recoveries",
       BenchJsonNum(static_cast<double>(gstats.recoveries))});
  gate_failures += Gate(tripped && model_leaks == 0,
                        "zero regressed-model recommendations while "
                        "quarantined (incumbent served verbatim)");
  gate_failures += Gate(half_open && recovered && recovery_probes >= 2,
                        "recovery via half-open probing (trip=1, recovery=1)");

  const bool pass = gate_failures == 0;
  json_fields.push_back({"pass", BenchJsonBool(pass)});
  if (!WriteBenchJson("BENCH_guardrails.json", "guardrails", profile,
                      json_fields)) {
    std::cerr << "failed to write BENCH_guardrails.json\n";
    return 1;
  }
  std::cout << (pass ? "\nbench_guardrails: PASS\n"
                     : "\nbench_guardrails: FAIL\n");
  return pass ? 0 : 1;
}
