// Table VII reproduction: configuration-ranking quality (HR@5, NDCG@5) of
// every estimator family on validation (mid-size) data per cluster plus
// large jobs:
//
//   LightGBM / MLP  x  {W, WC, S, SC, SCG}   (flat feature sets)
//   LSTM+GCN, Transformer+GCN, NECS(CNN+GCN) (deep code+DAG models)
//
// Paper-shape targets: code features beat no-code features (WC > W, SC > S);
// stage-level code beats application-level code (SC > WC); NECS is the
// strongest and holds up on large jobs.
#include <iostream>
#include <memory>

#include "bench/bench_common.h"

using namespace lite;
using namespace lite::bench;

namespace {

struct Setting {
  std::string label;
  spark::ClusterEnv env;
  double (*size_of)(const spark::ApplicationSpec&);
};

struct ModelScores {
  std::string name;
  std::vector<RankingScores> per_setting;
};

}  // namespace

int main() {
  ScaleProfile profile = GetScaleProfile();
  spark::SparkRunner runner;
  CorpusBuilder builder(&runner);
  std::cout << "Table VII — ranking performance by estimator (scale="
            << profile.name << ")\n";

  std::vector<Setting> settings{
      {"ClusterA", spark::ClusterEnv::ClusterA(), &ValidationSize},
      {"ClusterB", spark::ClusterEnv::ClusterB(), &ValidationSize},
      {"ClusterC", spark::ClusterEnv::ClusterC(), &ValidationSize},
      {"Large", spark::ClusterEnv::ClusterC(), &TestSize},
  };

  std::vector<ModelScores> results;
  auto ensure = [&](const std::string& name) -> ModelScores& {
    for (auto& m : results) {
      if (m.name == name) return m;
    }
    results.push_back({name, {}});
    return results.back();
  };

  size_t num_apps = spark::AppCatalog::Count();
  for (const auto& setting : settings) {
    // Training corpus: this setting's cluster (Large trains on cluster C's
    // small datasets — the paper's point is small-to-large migration).
    Corpus corpus = builder.Build(
        MakeCorpusOptions(profile, {}, {setting.env}, 17));
    std::vector<RankingCase> cases = builder.BuildRankingCases(
        corpus, {}, setting.env, setting.size_of, profile.ranking_candidates,
        1234);
    std::vector<StageInstance> deep_train =
        CapInstances(corpus.instances, profile.deep_train_cap);

    Rng rng(7);
    TrainOptions flat_train{.epochs = profile.train_epochs,
                            .lr = profile.train_lr};
    // ----- Flat models.
    for (FeatureSet fs : {FeatureSet::kW, FeatureSet::kWC, FeatureSet::kS,
                          FeatureSet::kSC, FeatureSet::kSCG}) {
      FlatGbdtEstimator gbdt(fs, num_apps);
      gbdt.Fit(corpus.instances, &rng);
      ensure(gbdt.name()).per_setting.push_back(
          EvalRanking(ScorerFor(&gbdt), cases));

      FlatMlpEstimator mlp(fs, num_apps, 31);
      mlp.Fit(corpus.instances, flat_train);
      ensure(mlp.name()).per_setting.push_back(
          EvalRanking(ScorerFor(&mlp), cases));
    }

    // ----- Deep sequence ablations.
    TrainOptions seq_train{.epochs = profile.seq_epochs, .lr = profile.train_lr};
    for (auto kind : {SeqEstimator::Kind::kLstm, SeqEstimator::Kind::kTransformer}) {
      SeqEstimator seq(kind, corpus.vocab->size(), corpus.op_vocab->size(),
                       profile.necs, profile.seq_max_steps, 53);
      seq.Train(deep_train, seq_train);
      ensure(seq.name()).per_setting.push_back(
          EvalRanking(ScorerFor(static_cast<const StageEstimator*>(&seq)), cases));
    }

    // ----- NECS.
    std::unique_ptr<NecsModel> necs = TrainNecs(corpus, profile);
    ensure("NECS").per_setting.push_back(EvalRanking(
        ScorerFor(static_cast<const StageEstimator*>(necs.get())), cases));

    std::cout << "[" << setting.label << "] corpus="
              << corpus.instances.size() << " instances, "
              << cases.size() << " ranking cases x "
              << profile.ranking_candidates << " candidates\n";
  }

  for (const char* metric : {"HR@5", "NDCG@5"}) {
    std::vector<std::string> header{"Model"};
    for (const auto& s : settings) header.push_back(s.label);
    TablePrinter table(header);
    for (const auto& m : results) {
      std::vector<std::string> row{m.name};
      for (const auto& sc : m.per_setting) {
        row.push_back(TablePrinter::Fmt(
            std::string(metric) == "HR@5" ? sc.hr_at_5 : sc.ndcg_at_5, 4));
      }
      table.AddRow(row);
    }
    table.Print(std::cout, std::string("Table VII: ") + metric);
  }

  // Paper-shape summary on the Large column.
  auto large_of = [&](const std::string& name) {
    for (const auto& m : results) {
      if (m.name == name) return m.per_setting.back();
    }
    return RankingScores{};
  };
  std::cout << "\nPaper-shape check (Large jobs): NECS HR@5="
            << TablePrinter::Fmt(large_of("NECS").hr_at_5, 4)
            << " (paper 0.4175), NDCG@5="
            << TablePrinter::Fmt(large_of("NECS").ndcg_at_5, 4)
            << " (paper 0.5669). Expected orderings: WC>W, SC>S, NECS "
               "strongest on average.\n";
  return 0;
}
