// Knob sensitivity analysis (characterization, not a paper table): for one
// representative application per class, sweep each knob one-at-a-time
// around the default configuration and report the max/min runtime ratio.
// This is the "how hard is this tuning problem" map — knobs with ratio ~1
// are noise; knobs with big ratios are what tuners must get right, and the
// set differs per application class (the paper's C1 in miniature).
#include <algorithm>
#include <iostream>

#include "bench/bench_common.h"
#include "sparksim/runner.h"

using namespace lite;
using namespace lite::spark;

int main() {
  SparkRunner runner;
  const KnobSpace& space = KnobSpace::Spark16();
  ClusterEnv env = ClusterEnv::ClusterC();
  std::cout << "Knob sensitivity map (one-at-a-time around defaults, "
               "validation sizes, cluster C)\n";

  std::vector<const ApplicationSpec*> apps = {
      AppCatalog::Find("TS"),   // MapReduce / shuffle-heavy.
      AppCatalog::Find("KM"),   // ML / memory + cache heavy.
      AppCatalog::Find("PR"),   // Graph / iterative + shuffle.
  };

  std::vector<std::string> header{"Knob"};
  for (const auto* app : apps) header.push_back(app->abbrev + " max/min");
  TablePrinter table(header);

  for (size_t d = 0; d < space.size(); ++d) {
    const KnobSpec& spec = space.spec(d);
    std::vector<std::string> row{spec.name};
    for (const auto* app : apps) {
      DataSpec data = app->MakeData(app->validation_size_mb);
      double lo = 1e18, hi = 0.0;
      int steps = spec.type == KnobType::kBool ? 2 : 7;
      for (int i = 0; i < steps; ++i) {
        double v = spec.min_value + (spec.max_value - spec.min_value) *
                                        static_cast<double>(i) /
                                        std::max(steps - 1, 1);
        Config c = space.DefaultConfig();
        c[d] = v;
        c = space.Clamp(c);
        double t = runner.Measure(*app, data, env, c);
        lo = std::min(lo, t);
        hi = std::max(hi, t);
      }
      row.push_back(TablePrinter::Fmt(hi / lo, 2));
    }
    table.AddRow(row);
  }
  table.Print(std::cout, "max/min runtime ratio per knob (higher = more critical)");
  std::cout << "\nReading: resource knobs (cores/memory/instances/parallelism)\n"
               "dominate, with different orderings per application class —\n"
               "no single static recipe covers all three columns.\n";
  return 0;
}
