// Retrieval-cache benchmark: the cost and payoff of zero-execution warm
// start in the serving layer.
//
// Three questions, answered in one run and exported to BENCH_retrieval.json:
//   1. Cold overhead — what does an enabled-but-cold cache (empty index,
//      memoization off) add to a single sequential client over the
//      cache-disabled service? Acceptance: < 5%.
//   2. Warm serving under a Zipf workload — real tuning traffic repeats
//      itself; with requests drawn Zipf(s=1.1) over a catalog of distinct
//      workloads, the memo should serve > 70% of requests with zero model
//      evaluations, and the p50 memo-hit latency should be >= 5x faster
//      than the p50 full-pipeline latency.
//   3. Invalidation under a swap + quarantine storm — concurrent clients,
//      a hot-swap storm and a regression storm against one tenant: zero
//      stale-generation hits (every hit's entry generation matches the
//      live generation) and zero cached responses to the quarantined
//      tenant after its flush.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <iostream>
#include <limits>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "lite/snapshot.h"
#include "serve/retrieval_cache.h"
#include "serve/tuning_service.h"
#include "util/rng.h"

using namespace lite;
using namespace lite::bench;

namespace {

double TimeSeconds(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct Query {
  const spark::ApplicationSpec* app;
  spark::DataSpec data;
  spark::ClusterEnv env;
};

/// Zipf(s) sampler over ranks [0, n): rank r is drawn with probability
/// proportional to 1/(r+1)^s, via inversion of the normalized CDF.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cdf_(n) {
    double total = 0.0;
    for (size_t r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cdf_[r] = total;
    }
    for (double& v : cdf_) v /= total;
  }
  size_t Draw(Rng* rng) const {
    const double u = rng->Uniform();
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t i = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[i];
}

}  // namespace

int main() {
  ScaleProfile profile = GetScaleProfile();
  const int reps = profile.name == "smoke" ? 6
                   : profile.name == "paper" ? 40
                                             : 16;
  std::cout << "Retrieval bench (scale=" << profile.name << ", " << reps
            << " requests/client)\n";

  spark::SparkRunner runner;
  LiteOptions opts;
  opts.corpus = MakeCorpusOptions(profile, {"TS", "PR", "KM"},
                                  {spark::ClusterEnv::ClusterA()});
  ApplyLiteProfile(profile, &opts);
  LiteSystem system(&runner, opts);
  system.TrainOffline();

  std::string snap_dir =
      std::filesystem::temp_directory_path() / "bench_retrieval_snapshot";
  std::filesystem::create_directories(snap_dir);
  if (!SaveSnapshot(system, snap_dir)) {
    std::cerr << "failed to save snapshot\n";
    return 1;
  }

  std::vector<Query> queries;
  for (const char* name : {"TS", "PR", "KM"}) {
    const auto* app = spark::AppCatalog::Find(name);
    queries.push_back({app, app->MakeData(app->test_size_mb),
                       spark::ClusterEnv::ClusterA()});
  }

  std::vector<BenchJsonField> json_fields{
      {"requests_per_client", BenchJsonNum(reps)}};

  // --- 1. Cold overhead: disabled vs enabled-but-cold. --------------------
  // Memoization off and an empty index: every request pays the cache's full
  // bookkeeping (fingerprint, embedding lookup, empty retrieval) and still
  // runs the whole pipeline — the worst case for the cache, the gate for
  // "inert when it cannot help".
  serve::ServiceOptions off_opts;
  off_opts.scoring.threads = 1;
  off_opts.update_batch = 0;
  serve::TuningService off(&runner, off_opts);
  if (!off.LoadSnapshot(snap_dir)) return 1;
  int off_session = off.OpenSession("bench");

  serve::ServiceOptions cold_opts = off_opts;
  cold_opts.retrieval.enabled = true;
  cold_opts.retrieval.memoize = false;
  serve::TuningService cold(&runner, cold_opts);
  if (!cold.LoadSnapshot(snap_dir)) return 1;
  int cold_session = cold.OpenSession("bench");

  // Warm both paths (encoder caches, embedding cache, metric lookups), so
  // the timed loops compare cache bookkeeping, not cache luck.
  for (const Query& q : queries) {
    (void)off.Recommend(off_session, *q.app, q.data, q.env);
    (void)cold.Recommend(cold_session, *q.app, q.data, q.env);
  }

  // Block timing, best of alternating rounds (the bench_serving convention:
  // per-request timestamps at smoke scale drown the delta in scheduler
  // noise; each path's fastest round is its least-interfered steady state).
  const int overhead_rounds = 7;
  const int overhead_block = reps * static_cast<int>(queries.size());
  double t_off = std::numeric_limits<double>::infinity();
  double t_cold = std::numeric_limits<double>::infinity();
  for (int round = 0; round < overhead_rounds; ++round) {
    t_off = std::min(t_off, TimeSeconds([&] {
      for (int r = 0; r < overhead_block; ++r) {
        const Query& q = queries[static_cast<size_t>(r) % queries.size()];
        (void)off.Recommend(off_session, *q.app, q.data, q.env);
      }
    }));
    t_cold = std::min(t_cold, TimeSeconds([&] {
      for (int r = 0; r < overhead_block; ++r) {
        const Query& q = queries[static_cast<size_t>(r) % queries.size()];
        (void)cold.Recommend(cold_session, *q.app, q.data, q.env);
      }
    }));
  }
  double cold_overhead_pct = t_off > 0 ? (t_cold - t_off) / t_off * 100.0 : 0.0;
  TablePrinter cold_table({"Path", "Total (s)", "Per-request (ms)"});
  cold_table.AddRow({"cache disabled", TablePrinter::Fmt(t_off),
                     TablePrinter::Fmt(t_off / overhead_block * 1e3, 3)});
  cold_table.AddRow({"enabled, cold", TablePrinter::Fmt(t_cold),
                     TablePrinter::Fmt(t_cold / overhead_block * 1e3, 3)});
  cold_table.Print(std::cout, "Cold-cache overhead");
  std::cout << "Cold overhead: " << TablePrinter::Fmt(cold_overhead_pct, 2)
            << "% (acceptance < 5%)\n\n";
  json_fields.push_back({"disabled_s", BenchJsonNum(t_off)});
  json_fields.push_back({"cold_s", BenchJsonNum(t_cold)});
  json_fields.push_back({"cold_overhead_pct", BenchJsonNum(cold_overhead_pct)});

  // --- 2. Warm serving under Zipf(s=1.1) traffic. -------------------------
  const size_t catalog_size = 24;
  const int warm_requests = profile.name == "smoke" ? 400 : 1200;
  std::vector<Query> catalog;
  for (size_t i = 0; i < catalog_size; ++i) {
    const auto* app = queries[i % queries.size()].app;
    // Distinct data sizes => distinct workload embeddings.
    catalog.push_back({app,
                       app->MakeData(app->test_size_mb *
                                     (0.5 + 0.125 * static_cast<double>(i))),
                       spark::ClusterEnv::ClusterA()});
  }

  serve::ServiceOptions warm_opts;
  warm_opts.scoring.threads = 1;
  warm_opts.update_batch = 0;
  warm_opts.retrieval.enabled = true;
  serve::TuningService warm(&runner, warm_opts);
  if (!warm.LoadSnapshot(snap_dir)) return 1;
  int warm_session = warm.OpenSession("zipf-tenant");

  ZipfSampler zipf(catalog_size, 1.1);
  Rng rng(0x21bf);
  size_t hits = 0;
  std::vector<double> hit_ms, miss_ms;
  for (int r = 0; r < warm_requests; ++r) {
    const Query& q = catalog[zipf.Draw(&rng)];
    serve::TuningService::Response resp;
    const double ms = TimeSeconds([&] {
      resp = warm.Recommend(warm_session, *q.app, q.data, q.env);
    }) * 1e3;
    if (!resp.ok) {
      std::cerr << "warm request failed: " << resp.error << "\n";
      return 1;
    }
    if (resp.from_cache) {
      ++hits;
      hit_ms.push_back(ms);
    } else {
      miss_ms.push_back(ms);
    }
  }
  const double hit_rate =
      static_cast<double>(hits) / static_cast<double>(warm_requests);
  const double p50_hit = Percentile(hit_ms, 0.5);
  const double p50_miss = Percentile(miss_ms, 0.5);
  const double speedup = p50_hit > 0 ? p50_miss / p50_hit : 0.0;
  TablePrinter warm_table({"Path", "Count", "p50 (ms)", "p99 (ms)"});
  warm_table.AddRow({"memo hit", TablePrinter::Fmt(static_cast<int64_t>(hits)),
                     TablePrinter::Fmt(p50_hit, 4),
                     TablePrinter::Fmt(Percentile(hit_ms, 0.99), 4)});
  warm_table.AddRow(
      {"full pipeline",
       TablePrinter::Fmt(static_cast<int64_t>(miss_ms.size())),
       TablePrinter::Fmt(p50_miss, 4),
       TablePrinter::Fmt(Percentile(miss_ms, 0.99), 4)});
  warm_table.Print(std::cout, "Zipf(s=1.1) warm serving");
  std::cout << "Hit rate: " << TablePrinter::Fmt(hit_rate * 100.0, 1)
            << "% (acceptance > 70%); p50 speedup: "
            << TablePrinter::Fmt(speedup, 1) << "x (acceptance >= 5x)\n\n";
  json_fields.push_back({"zipf_catalog", BenchJsonNum(catalog_size)});
  json_fields.push_back({"zipf_requests", BenchJsonNum(warm_requests)});
  json_fields.push_back({"warm_hit_rate", BenchJsonNum(hit_rate)});
  json_fields.push_back({"p50_hit_ms", BenchJsonNum(p50_hit)});
  json_fields.push_back({"p50_miss_ms", BenchJsonNum(p50_miss)});
  json_fields.push_back({"warm_speedup", BenchJsonNum(speedup)});

  // --- 3. Swap + quarantine storm: invalidation under concurrency. --------
  serve::ServiceOptions storm_opts;
  storm_opts.max_pending = 512;
  storm_opts.scoring.threads = 1;
  storm_opts.update_batch = 0;
  storm_opts.retrieval.enabled = true;
  storm_opts.guardrail.enabled = true;
  storm_opts.guardrail.window = 8;
  storm_opts.guardrail.min_observations = 4;
  storm_opts.guardrail.failure_rate_threshold = 0.5;
  storm_opts.guardrail.quarantine_cooldown = 1000000;  // stay quarantined.
  serve::TuningService storm(&runner, storm_opts);
  if (!storm.LoadSnapshot(snap_dir)) return 1;
  const int storm_clients = 4;
  std::vector<int> storm_sess;
  for (int c = 0; c < storm_clients; ++c) {
    storm_sess.push_back(storm.OpenSession("tenant-" + std::to_string(c)));
  }
  int victim = storm.OpenSession("victim");
  // The victim needs an incumbent before the regression storm, so its
  // quarantined serves have a baseline to fall back to.
  {
    const Query& q = queries[0];
    spark::MeasureOutcome good;
    good.seconds = 12.0;
    good.result = runner.cost_model().Run(*q.app, q.data, q.env,
                                          spark::KnobSpace::Spark16()
                                              .DefaultConfig());
    storm.SubmitFeedback(victim, *q.app, q.data, q.env,
                         spark::KnobSpace::Spark16().DefaultConfig(), good);
    // Warm the victim's memo so the quarantine flush has entries to kill.
    (void)storm.Recommend(victim, *q.app, q.data, q.env);
    (void)storm.Recommend(victim, *q.app, q.data, q.env);
  }

  std::atomic<int> storm_failed{0};
  std::atomic<int> swaps_done{0};
  double storm_elapsed = TimeSeconds([&] {
    std::atomic<bool> stop{false};
    std::thread swapper([&] {
      while (!stop.load()) {
        if (storm.LoadSnapshot(snap_dir)) ++swaps_done;
      }
    });
    std::thread regressor([&] {
      // Failed feedback trips the victim's breaker mid-storm; its memo
      // entries must be flushed and never served again.
      spark::MeasureOutcome bad;
      bad.seconds = 600.0;
      bad.failed = true;
      const Query& q = queries[0];
      for (int i = 0; i < 6 && !stop.load(); ++i) {
        storm.SubmitFeedback(victim, *q.app, q.data, q.env,
                             spark::Config(spark::kNumKnobs, 1.0), bad);
      }
      // Keep requesting as the quarantined tenant: every response must be
      // the incumbent, never a cached model recommendation.
      while (!stop.load()) {
        auto resp = storm.Recommend(victim, queries[0].app[0], queries[0].data,
                                    queries[0].env);
        if (!resp.ok) ++storm_failed;
      }
    });
    std::vector<std::thread> threads;
    for (int c = 0; c < storm_clients; ++c) {
      threads.emplace_back([&, c] {
        for (int r = 0; r < reps * 3; ++r) {
          const Query& q = queries[static_cast<size_t>(c + r) % queries.size()];
          auto resp = storm.Recommend(storm_sess[c], *q.app, q.data, q.env);
          if (!resp.ok) ++storm_failed;
        }
      });
    }
    for (auto& t : threads) t.join();
    stop.store(true);
    swapper.join();
    regressor.join();
  });

  // Scan the witness log: a hit whose entry generation differs from the
  // live generation is a stale-generation hit; a hit for the victim after
  // its quarantine flush is a guardrail bypass. Both must be zero.
  serve::RetrievalCache* cache = storm.retrieval();
  uint64_t stale_hits = 0, quarantine_leaks = 0, total_hits = 0;
  uint64_t victim_flush_seq = 0;
  std::vector<serve::CacheEvent> log = cache->EventLog();
  for (const serve::CacheEvent& e : log) {
    if (e.type == serve::CacheEventType::kInvalidateTenant &&
        e.tenant == "victim") {
      victim_flush_seq = e.seq;
    }
  }
  for (const serve::CacheEvent& e : log) {
    if (e.type != serve::CacheEventType::kHit) continue;
    ++total_hits;
    if (e.generation != e.live_generation) ++stale_hits;
    if (e.tenant == "victim" && victim_flush_seq != 0 &&
        e.seq > victim_flush_seq) {
      ++quarantine_leaks;
    }
  }
  const bool victim_quarantined = victim_flush_seq != 0;
  std::cout << "Swap+quarantine storm: " << swaps_done.load()
            << " swaps over " << TablePrinter::Fmt(storm_elapsed, 2)
            << " s, " << total_hits << " cache hits — " << stale_hits
            << " stale-generation, " << quarantine_leaks
            << " quarantine leaks, " << storm_failed.load() << " failed"
            << (victim_quarantined ? "" : " (victim never quarantined!)")
            << "\n";
  json_fields.push_back(
      {"storm_swaps", BenchJsonNum(static_cast<double>(swaps_done.load()))});
  json_fields.push_back(
      {"storm_hits", BenchJsonNum(static_cast<double>(total_hits))});
  json_fields.push_back(
      {"stale_generation_hits", BenchJsonNum(static_cast<double>(stale_hits))});
  json_fields.push_back({"quarantine_leaks",
                         BenchJsonNum(static_cast<double>(quarantine_leaks))});
  json_fields.push_back(
      {"storm_failed", BenchJsonNum(static_cast<double>(storm_failed.load()))});

  const bool pass = cold_overhead_pct < 5.0 && hit_rate > 0.70 &&
                    speedup >= 5.0 && stale_hits == 0 &&
                    quarantine_leaks == 0 && victim_quarantined &&
                    swaps_done.load() > 0 && storm_failed.load() == 0;
  std::cout << "\nAcceptance (cold overhead < 5%, hit rate > 70%, p50 "
               "speedup >= 5x, zero stale/leaked hits under storm): "
            << (pass ? "PASS" : "FAIL") << "\n";
  json_fields.push_back({"pass", BenchJsonBool(pass)});
  WriteBenchJson("BENCH_retrieval.json", "retrieval", profile, json_fields);
  std::filesystem::remove_all(snap_dir);
  return pass ? 0 : 1;
}
