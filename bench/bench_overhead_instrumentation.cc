// Section V-I reproduction — cold-start tuning overhead: a never-seen
// application must be executed once on the smallest dataset with
// instrumentation before LITE can recommend. This bench reports that
// simulated instrumentation-run cost next to LITE's recommendation latency,
// and compares both against the cost of a single large-job trial (what one
// BO/DDPG probe would burn).
#include <chrono>
#include <iostream>

#include "bench/bench_common.h"

using namespace lite;
using namespace lite::bench;

int main() {
  ScaleProfile profile = GetScaleProfile();
  spark::SparkRunner runner;
  std::cout << "Section V-I — cold-start instrumentation overhead (scale="
            << profile.name << ")\n";

  LiteOptions lopts;
  lopts.corpus = MakeCorpusOptions(profile, {}, {spark::ClusterEnv::ClusterA()});
  ApplyLiteProfile(profile, &lopts);
  LiteSystem lite(&runner, lopts);
  lite.TrainOffline();

  spark::ClusterEnv env = spark::ClusterEnv::ClusterC();
  const auto& space = spark::KnobSpace::Spark16();
  TablePrinter table({"App", "instrument run (sim s)", "recommend (wall s)",
                      "one large trial (sim s)", "overhead ratio"});
  double ratio_sum = 0;
  for (const auto& app : spark::AppCatalog::All()) {
    // Cold-start step 1: run the app once on the smallest dataset with the
    // instrumentation agent attached (simulated cost = that run's time).
    spark::DataSpec smallest = app.MakeData(app.train_sizes_mb.front());
    double instrument_cost =
        runner.Measure(app, smallest, spark::ClusterEnv::ClusterA(),
                       space.DefaultConfig());
    (void)runner.instrumenter().Instrument(app);  // artifact extraction.

    spark::DataSpec data = app.MakeData(app.test_size_mb);
    auto t0 = std::chrono::steady_clock::now();
    LiteSystem::Recommendation rec = lite.Recommend(app, data, env);
    auto t1 = std::chrono::steady_clock::now();
    double rec_wall = std::chrono::duration<double>(t1 - t0).count();

    double one_trial = runner.Measure(app, data, env, space.DefaultConfig());
    double ratio = (instrument_cost + rec_wall) / one_trial;
    ratio_sum += ratio;
    table.AddRow({app.abbrev, TablePrinter::Fmt(instrument_cost, 1),
                  TablePrinter::Fmt(rec_wall, 2),
                  TablePrinter::Fmt(one_trial, 1),
                  TablePrinter::Fmt(ratio, 3)});
  }
  table.Print(std::cout, "Cold-start overhead per application");
  std::cout << "\nPaper-shape check: instrumentation runs on ~minute-scale "
               "smallest datasets, so the total cold-start overhead is a "
               "small fraction (mean "
            << TablePrinter::Fmt(ratio_sum / spark::AppCatalog::Count(), 3)
            << ") of even one large-job trial by an iterative tuner.\n";
  return 0;
}
