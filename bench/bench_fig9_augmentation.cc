// Figure 9 reproduction: the data-augmentation effect of Stage-based Code
// Organization — number of training instances and code-token counts before
// (application level) vs after (stage level) instrumentation, per app.
#include <iostream>

#include "bench/bench_common.h"  // CsvDir
#include "sparksim/instrumentation.h"

using namespace lite;
using namespace lite::spark;

int main() {
  Instrumenter instr;
  std::cout << "Figure 9 — Stage-based Code Organization augmentation\n";
  TablePrinter table({"App", "instances before", "instances after", "factor",
                      "app tokens", "mean stage tokens", "token growth"});
  double min_factor = 1e18, max_factor = 0.0, token_growth_sum = 0.0;
  for (const auto& app : AppCatalog::All()) {
    AugmentationStats s = instr.ComputeAugmentation(app, 0);
    double factor = static_cast<double>(s.stage_instances) /
                    static_cast<double>(s.app_instances);
    double growth = s.mean_stage_tokens / s.app_tokens;
    min_factor = std::min(min_factor, factor);
    max_factor = std::max(max_factor, factor);
    token_growth_sum += growth;
    table.AddRow({app.abbrev, std::to_string(s.app_instances),
                  std::to_string(s.stage_instances), TablePrinter::Fmt(factor, 0) + "x",
                  TablePrinter::Fmt(s.app_tokens, 0),
                  TablePrinter::Fmt(s.mean_stage_tokens, 0),
                  TablePrinter::Fmt(growth, 1) + "x"});
  }
  table.Print(std::cout, "Instances and tokens per application run");
  table.WriteCsv(lite::bench::CsvDir(), "fig9_augmentation");
  std::cout << "\nPaper-shape check: instance blow-up ranges "
            << TablePrinter::Fmt(min_factor, 0) << "x to "
            << TablePrinter::Fmt(max_factor, 0)
            << "x (paper: 4x TS to 427x SCC); code length grows ~"
            << TablePrinter::Fmt(token_growth_sum / AppCatalog::Count(), 1)
            << "x on average (paper: ~3x).\n";
  return 0;
}
