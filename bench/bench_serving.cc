// Serving-layer benchmark: throughput and latency of serve::TuningService
// against the direct LoadedLiteModel::Recommend baseline.
//
// Three questions, answered in one run and exported to BENCH_serving.json:
//   1. Overhead — how much does the service layer (session lookup,
//      admission control, stats, RCU snapshot load) add to a single
//      sequential client? Acceptance: < 5% over the direct call.
//   2. Scaling — requests/second as concurrent clients grow (1, 2, 4, 8);
//      requests are stateless (per-request RNG), so throughput should rise
//      until the shared pool saturates the cores.
//   3. Hot-swap under load — a snapshot reload storm concurrent with client
//      traffic must complete every request (zero failed, zero torn: every
//      response bit-matches the single-snapshot reference).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <iostream>
#include <limits>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "lite/snapshot.h"
#include "serve/tuning_service.h"

using namespace lite;
using namespace lite::bench;

namespace {

double TimeSeconds(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct Query {
  const spark::ApplicationSpec* app;
  spark::DataSpec data;
  spark::ClusterEnv env;
};

}  // namespace

int main() {
  ScaleProfile profile = GetScaleProfile();
  const size_t cores = std::max(1u, std::thread::hardware_concurrency());
  const int reps = profile.name == "smoke" ? 6
                   : profile.name == "paper" ? 40
                                             : 16;
  std::cout << "Serving bench (scale=" << profile.name << ", cores=" << cores
            << ", " << reps << " requests/client)\n";

  spark::SparkRunner runner;
  LiteOptions opts;
  opts.corpus = MakeCorpusOptions(profile, {"TS", "PR", "KM"},
                                  {spark::ClusterEnv::ClusterA()});
  ApplyLiteProfile(profile, &opts);
  LiteSystem system(&runner, opts);
  system.TrainOffline();

  std::string snap_dir =
      std::filesystem::temp_directory_path() / "bench_serving_snapshot";
  std::filesystem::create_directories(snap_dir);
  if (!SaveSnapshot(system, snap_dir)) {
    std::cerr << "failed to save snapshot\n";
    return 1;
  }
  auto direct = LoadedLiteModel::Load(snap_dir, &runner);
  if (direct == nullptr) {
    std::cerr << "failed to load snapshot\n";
    return 1;
  }

  std::vector<Query> queries;
  for (const char* name : {"TS", "PR", "KM"}) {
    const auto* app = spark::AppCatalog::Find(name);
    queries.push_back({app, app->MakeData(app->test_size_mb),
                       spark::ClusterEnv::ClusterA()});
  }
  std::vector<LiteSystem::Recommendation> reference;
  for (const Query& q : queries) {
    reference.push_back(direct->Recommend(*q.app, q.data, q.env));
  }

  std::vector<BenchJsonField> json_fields{
      {"cores", BenchJsonNum(static_cast<double>(cores))},
      {"requests_per_client", BenchJsonNum(reps)}};

  // --- 1. Single-client overhead vs the direct call. --------------------
  serve::ServiceOptions sopts;
  sopts.scoring.threads = 1;  // level field: both paths score 1-threaded.
  sopts.update_batch = 0;
  serve::TuningService service(&runner, sopts);
  if (!service.LoadSnapshot(snap_dir)) return 1;
  int session = service.OpenSession("bench");
  serve::ScoringOptions one_thread;
  one_thread.threads = 1;
  direct->set_scoring(one_thread);
  // Warm both paths over every query (encoder caches, metric lookups), so
  // the timed loops compare service overhead, not cache luck.
  for (const Query& q : queries) {
    (void)direct->Recommend(*q.app, q.data, q.env);
    (void)service.Recommend(session, *q.app, q.data, q.env);
  }

  // Block timing, best of alternating rounds: smoke-scale requests are a
  // few hundred microseconds, so single-pass per-request timestamps put
  // scheduler noise on the same order as the service layer's overhead (the
  // gate flaked either way at smoke scale). Each path's fastest round is
  // the run with the least interference — the steady-state cost the gate
  // is about.
  const int overhead_rounds = 7;
  const int overhead_block = reps * static_cast<int>(queries.size());
  double t_direct = std::numeric_limits<double>::infinity();
  double t_service = std::numeric_limits<double>::infinity();
  for (int round = 0; round < overhead_rounds; ++round) {
    t_direct = std::min(t_direct, TimeSeconds([&] {
      for (int r = 0; r < overhead_block; ++r) {
        const Query& q = queries[static_cast<size_t>(r) % queries.size()];
        (void)direct->Recommend(*q.app, q.data, q.env);
      }
    }));
    t_service = std::min(t_service, TimeSeconds([&] {
      for (int r = 0; r < overhead_block; ++r) {
        const Query& q = queries[static_cast<size_t>(r) % queries.size()];
        (void)service.Recommend(session, *q.app, q.data, q.env);
      }
    }));
  }
  double overhead_pct =
      t_direct > 0 ? (t_service - t_direct) / t_direct * 100.0 : 0.0;
  TablePrinter overhead_table({"Path", "Total (s)", "Per-request (ms)"});
  overhead_table.AddRow({"direct", TablePrinter::Fmt(t_direct),
                         TablePrinter::Fmt(t_direct / overhead_block * 1e3, 3)});
  overhead_table.AddRow({"service", TablePrinter::Fmt(t_service),
                         TablePrinter::Fmt(t_service / overhead_block * 1e3, 3)});
  overhead_table.Print(std::cout, "Single-client overhead");
  std::cout << "Service overhead: " << TablePrinter::Fmt(overhead_pct, 2)
            << "% (acceptance < 5%)\n\n";
  json_fields.push_back({"direct_s", BenchJsonNum(t_direct)});
  json_fields.push_back({"service_s", BenchJsonNum(t_service)});
  json_fields.push_back({"overhead_pct", BenchJsonNum(overhead_pct)});

  // --- 2. Throughput scaling across client counts. ----------------------
  TablePrinter scale_table(
      {"Clients", "Total (s)", "Req/s", "Mean latency (ms)"});
  double rps_1 = 0.0, rps_max = 0.0;
  for (int clients : {1, 2, 4, 8}) {
    serve::ServiceOptions copts;
    copts.max_pending = 512;
    copts.scoring.threads = 1;  // concurrency from clients, not scoring.
    copts.update_batch = 0;
    serve::TuningService svc(&runner, copts);
    if (!svc.LoadSnapshot(snap_dir)) return 1;
    std::vector<int> sess;
    for (int c = 0; c < clients; ++c) {
      sess.push_back(svc.OpenSession("tenant-" + std::to_string(c)));
    }
    std::atomic<int> failed{0};
    double elapsed = TimeSeconds([&] {
      std::vector<std::thread> threads;
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          for (int r = 0; r < reps; ++r) {
            const Query& q =
                queries[static_cast<size_t>(c + r) % queries.size()];
            auto resp = svc.Recommend(sess[c], *q.app, q.data, q.env);
            if (!resp.ok) ++failed;
          }
        });
      }
      for (auto& t : threads) t.join();
    });
    const double total = static_cast<double>(clients) * reps;
    const double rps = elapsed > 0 ? total / elapsed : 0.0;
    if (clients == 1) rps_1 = rps;
    rps_max = std::max(rps_max, rps);
    scale_table.AddRow({TablePrinter::Fmt(static_cast<int64_t>(clients)),
                        TablePrinter::Fmt(elapsed),
                        TablePrinter::Fmt(rps, 1),
                        TablePrinter::Fmt(elapsed / total * 1e3 *
                                              static_cast<double>(clients),
                                          3)});
    if (failed.load() != 0) {
      std::cerr << "throughput run with " << clients << " clients saw "
                << failed.load() << " failures\n";
      return 1;
    }
    std::string prefix = "clients_" + std::to_string(clients);
    json_fields.push_back({prefix + "_rps", BenchJsonNum(rps)});
    json_fields.push_back({prefix + "_elapsed_s", BenchJsonNum(elapsed)});
  }
  scale_table.Print(std::cout, "Throughput scaling");
  const double scaling = rps_1 > 0 ? rps_max / rps_1 : 0.0;
  std::cout << "Peak/1-client throughput: " << TablePrinter::Fmt(scaling, 2)
            << "x\n\n";
  json_fields.push_back({"throughput_scaling", BenchJsonNum(scaling)});

  // --- 3. Hot-swap storm under load: zero failed, zero torn. ------------
  serve::ServiceOptions hopts;
  hopts.max_pending = 512;
  hopts.scoring.threads = 1;
  hopts.update_batch = 0;
  serve::TuningService hot(&runner, hopts);
  if (!hot.LoadSnapshot(snap_dir)) return 1;
  const int swap_clients = 4;
  std::vector<int> hot_sess;
  for (int c = 0; c < swap_clients; ++c) {
    hot_sess.push_back(hot.OpenSession("tenant-" + std::to_string(c)));
  }
  std::atomic<int> hot_failed{0};
  std::atomic<int> hot_torn{0};
  std::atomic<int> swaps_done{0};
  double swap_elapsed = TimeSeconds([&] {
    std::atomic<bool> stop{false};
    std::thread swapper([&] {
      while (!stop.load()) {
        if (hot.LoadSnapshot(snap_dir)) ++swaps_done;
      }
    });
    std::vector<std::thread> threads;
    for (int c = 0; c < swap_clients; ++c) {
      threads.emplace_back([&, c] {
        for (int r = 0; r < reps; ++r) {
          const size_t qi = static_cast<size_t>(c + r) % queries.size();
          const Query& q = queries[qi];
          auto resp = hot.Recommend(hot_sess[c], *q.app, q.data, q.env);
          if (!resp.ok) {
            ++hot_failed;
          } else if (resp.rec.config != reference[qi].config ||
                     resp.rec.predicted_seconds !=
                         reference[qi].predicted_seconds) {
            ++hot_torn;  // a swap leaked into the middle of a request.
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    stop.store(true);
    swapper.join();
  });
  std::cout << "Hot-swap storm: " << swaps_done.load() << " swaps over "
            << TablePrinter::Fmt(swap_elapsed, 2) << " s against "
            << swap_clients * reps << " requests — " << hot_failed.load()
            << " failed, " << hot_torn.load() << " torn\n";
  json_fields.push_back(
      {"hot_swaps", BenchJsonNum(static_cast<double>(swaps_done.load()))});
  json_fields.push_back(
      {"hot_swap_failed", BenchJsonNum(static_cast<double>(hot_failed.load()))});
  json_fields.push_back(
      {"hot_swap_torn", BenchJsonNum(static_cast<double>(hot_torn.load()))});

  const bool pass = overhead_pct < 5.0 && hot_failed.load() == 0 &&
                    hot_torn.load() == 0 && swaps_done.load() > 0;
  std::cout << "\nAcceptance (overhead < 5%, zero failed/torn under swap "
               "storm): "
            << (pass ? "PASS" : "FAIL") << "\n";
  json_fields.push_back({"pass", BenchJsonBool(pass)});
  WriteBenchJson("BENCH_serving.json", "serving", profile, json_fields);
  std::filesystem::remove_all(snap_dir);
  return pass ? 0 : 1;
}
