// Model-distribution plane benchmark (ISSUE 10): wire efficiency of delta
// pushes, pull atomicity under a fault storm, and the cost of the N-shard
// routing layer. Exported to BENCH_modelplane.json with three gates:
//
//   1. Delta efficiency — after an adaptive update that touches a single
//      ensemble member, the delta push to a current shard must cost at
//      most 20% of a full-snapshot push's bytes.
//   2. Storm atomicity — a 100-swap storm through channels with injected
//      truncation (plus drops, corruption and reordering) must serve ZERO
//      torn or mixed-version pulls: every installed (version, blob-set)
//      pair is exactly a published one.
//   3. Fan-out overhead — serving a request through ShardedTuningService's
//      routing (4 shards) must add < 5% latency over the same requests on
//      a single-process TuningService at the same plane version
//      (best-of-rounds on both sides).
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <functional>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "lite/model_update.h"
#include "lite/snapshot.h"
#include "modelplane/channel.h"
#include "modelplane/plane_server.h"
#include "modelplane/shard_puller.h"
#include "modelplane/sharded_service.h"
#include "serve/tuning_service.h"
#include "util/rng.h"

using namespace lite;
using namespace lite::bench;

namespace {

double TimeSeconds(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct Query {
  const spark::ApplicationSpec* app;
  spark::DataSpec data;
  spark::ClusterEnv env;
};

}  // namespace

int main() {
  ScaleProfile profile = GetScaleProfile();
  const int requests = profile.name == "smoke" ? 24
                       : profile.name == "paper" ? 120
                                                 : 60;
  const int rounds = profile.name == "smoke" ? 6 : 5;
  std::cout << "Model-plane bench (scale=" << profile.name << ", " << requests
            << " requests x " << rounds << " rounds)\n";

  spark::SparkRunner runner;
  LiteOptions opts;
  opts.corpus = MakeCorpusOptions(profile, {"TS", "PR"},
                                  {spark::ClusterEnv::ClusterA()});
  ApplyLiteProfile(profile, &opts);
  // The delta gate models a production ensemble where one member's
  // fine-tune is a small fraction of the snapshot: 6 members put a single
  // necs blob well under 20% of the full push.
  opts.ensemble_size = 6;
  LiteSystem system(&runner, opts);
  system.TrainOffline();

  const std::string snap_dir =
      std::filesystem::temp_directory_path() / "bench_modelplane_snapshot";
  std::filesystem::create_directories(snap_dir);
  if (!SaveSnapshot(system, snap_dir)) {
    std::cerr << "failed to save snapshot\n";
    return 1;
  }

  serve::ServiceOptions sopts;
  sopts.scoring.threads = 1;

  // --- 1. Delta efficiency ------------------------------------------------
  modelplane::ModelPlaneServer plane;
  serve::TuningService publisher(&runner, sopts);
  modelplane::AttachPublisher(&publisher, &plane);
  if (!publisher.LoadSnapshot(snap_dir) || plane.version() != 1) {
    std::cerr << "publisher failed to publish plane version 1\n";
    return 1;
  }

  modelplane::ShardPuller puller(plane.chain());
  auto clean_pull = [&]() {
    const std::string resp =
        plane.HandleRequestFrame(puller.MakeRequestFrame());
    return !resp.empty() && puller.ApplyResponseFrame(resp).ok;
  };
  if (!clean_pull()) {
    std::cerr << "initial full pull failed\n";
    return 1;
  }
  const uint64_t full_bytes = plane.stats().full_push_bytes;

  // Single-member adaptive update (the ISSUE 10 gate scenario): fine-tune
  // ONE ensemble member on a feedback batch and hot-swap the clone in.
  // Only that member's necs blob changes bytes — every other part encodes
  // bit-identically — so the publisher's next plane version reaches
  // current shards as a small delta.
  const auto* app = spark::AppCatalog::Find("TS");
  const Query q{app, app->MakeData(app->test_size_mb),
                spark::ClusterEnv::ClusterA()};
  const spark::Config config = spark::KnobSpace::Spark16().DefaultConfig();
  const spark::AppRunResult run =
      runner.cost_model().Run(*q.app, q.data, q.env, config);
  {
    auto shadow = publisher.CurrentSnapshot()->Clone();
    const std::vector<StageInstance> batch = serve::ExtractFeedbackInstances(
        &runner, shadow->feature_space(), 8, *q.app, q.data, q.env, config,
        run, /*sentinel_labels=*/false);
    if (batch.empty()) {
      std::cerr << "feedback extraction produced no instances\n";
      return 1;
    }
    AdaptiveModelUpdater updater(UpdateOptions{});
    updater.Update(shadow->mutable_model(0), batch, batch);
    publisher.InstallSnapshot(std::move(shadow));
  }
  if (plane.version() != 2) {
    std::cerr << "single-member update did not publish plane version 2\n";
    return 1;
  }
  if (!clean_pull() || puller.installed_version() != 2) {
    std::cerr << "delta pull failed\n";
    return 1;
  }
  const uint64_t delta_bytes = plane.stats().delta_push_bytes;
  const double delta_ratio =
      full_bytes == 0 ? 1.0
                      : static_cast<double>(delta_bytes) /
                            static_cast<double>(full_bytes);
  const bool delta_pass = delta_ratio <= 0.20;
  std::cout << "full push: " << full_bytes << " B, delta push: " << delta_bytes
            << " B (ratio " << delta_ratio << ", gate <= 0.20)\n";

  // --- 2. Storm atomicity -------------------------------------------------
  // 100 publishes of synthetic snapshot-shaped blobs through heavily
  // faulted links; count installs whose blob set is not byte-identical to
  // the published set of the installed version.
  uint64_t torn = 0, storm_installs = 0, storm_failures = 0;
  {
    Rng rng(0xbe7c);
    modelplane::PlaneOptions popts;
    popts.delta_history = 4;
    modelplane::ModelPlaneServer storm_plane(popts);
    modelplane::ChannelFaultOptions faults;
    faults.drop = 0.15;
    faults.truncate = 0.25;
    faults.corrupt = 0.15;
    faults.duplicate = 0.10;
    faults.hold = 0.10;
    modelplane::QueueChannel req_q, resp_q;
    modelplane::FaultInjectedChannel req(&req_q, faults, 0xbe7c1);
    modelplane::FaultInjectedChannel resp(&resp_q, faults, 0xbe7c2);
    modelplane::ShardPuller storm_puller(storm_plane.chain());
    auto text = [&rng]() {
      std::string s = "weights";
      const size_t n = 64 + rng.Index(192);
      for (size_t i = 0; i < n; ++i)
        s += " " + std::to_string(rng.Index(1000));
      return s + "\n";
    };
    std::map<uint64_t, std::map<std::string, std::string>> published;
    std::map<std::string, std::string> blobs = {{"vocab.txt", text()},
                                                {"necs_0.txt", text()},
                                                {"necs_1.txt", text()}};
    for (int round = 0; round < 100; ++round) {
      blobs["necs_" + std::to_string(rng.Index(2)) + ".txt"] = text();
      if (rng.Bernoulli(0.2)) {
        blobs["stagehead.txt"] = text();
      } else if (rng.Bernoulli(0.2)) {
        blobs.erase("stagehead.txt");
      }
      published[storm_plane.Publish(blobs)] = blobs;
      req.Send(storm_puller.MakeRequestFrame());
      std::string frame;
      while (req.Recv(&frame)) {
        const std::string r = storm_plane.HandleRequestFrame(frame);
        if (!r.empty()) resp.Send(r);
      }
      while (resp.Recv(&frame)) storm_puller.ApplyResponseFrame(frame);
      req.Flush();
      resp.Flush();
      const uint64_t v = storm_puller.installed_version();
      if (v == 0) continue;
      if (!published.count(v) ||
          *storm_puller.installed_blobs() != published[v]) {
        ++torn;
      }
    }
    const modelplane::ShardPuller::Stats ps = storm_puller.stats();
    storm_installs = ps.full_installs + ps.delta_installs;
    storm_failures = ps.failures;
  }
  const bool storm_pass = torn == 0 && storm_installs > 0;
  std::cout << "storm: " << storm_installs << " installs, " << storm_failures
            << " rejected pulls, " << torn << " torn (gate == 0)\n";

  // --- 3. Shard fan-out overhead ------------------------------------------
  serve::TuningService reference(&runner, sopts);
  {
    auto model =
        LoadedLiteModel::LoadFromBlobs(*puller.installed_blobs(), &runner);
    if (model == nullptr) {
      std::cerr << "reference LoadFromBlobs failed\n";
      return 1;
    }
    reference.InstallSnapshot(std::move(model));
  }
  modelplane::ShardedServiceOptions fleet_opts;
  fleet_opts.shards = 4;
  fleet_opts.service = sopts;
  modelplane::ShardedTuningService fleet(&runner, &plane, fleet_opts);
  if (fleet.SyncAll() != 4) {
    std::cerr << "fleet failed to sync\n";
    return 1;
  }

  std::vector<std::string> tenants;
  std::vector<int> ref_sessions, fleet_sessions;
  for (int i = 0; i < 8; ++i) {
    tenants.push_back("tenant" + std::to_string(i));
    ref_sessions.push_back(reference.OpenSession(tenants.back(), 0));
    fleet_sessions.push_back(fleet.OpenSession(tenants.back(), 0));
  }
  double ref_s = std::numeric_limits<double>::infinity();
  double fleet_s = std::numeric_limits<double>::infinity();
  uint64_t mismatches = 0;
  for (int round = 0; round < rounds; ++round) {
    ref_s = std::min(ref_s, TimeSeconds([&] {
      for (int r = 0; r < requests; ++r) {
        (void)reference.Recommend(ref_sessions[r % 8], *q.app, q.data, q.env);
      }
    }));
    fleet_s = std::min(fleet_s, TimeSeconds([&] {
      for (int r = 0; r < requests; ++r) {
        (void)fleet.Recommend(fleet_sessions[r % 8], *q.app, q.data, q.env);
      }
    }));
  }
  // Equivalence spot-check rides along: same tenants, same plane version,
  // bit-identical responses.
  for (int i = 0; i < 8; ++i) {
    const auto want =
        reference.Recommend(ref_sessions[i], *q.app, q.data, q.env);
    const auto got = fleet.Recommend(fleet_sessions[i], *q.app, q.data, q.env);
    if (!want.ok || !got.ok || !(got.rec.config == want.rec.config) ||
        got.rec.predicted_seconds != want.rec.predicted_seconds) {
      ++mismatches;
    }
  }
  const double overhead_pct = (fleet_s / ref_s - 1.0) * 100.0;
  const bool fanout_pass = overhead_pct < 5.0 && mismatches == 0;
  std::cout << "fan-out: reference " << ref_s << " s, fleet " << fleet_s
            << " s (overhead " << overhead_pct << "%, gate < 5%); "
            << mismatches << " response mismatches\n";

  const bool pass = delta_pass && storm_pass && fanout_pass;
  WriteBenchJson(
      "BENCH_modelplane.json", "modelplane", profile,
      {
          {"requests", BenchJsonNum(requests)},
          {"rounds", BenchJsonNum(rounds)},
          {"full_push_bytes", BenchJsonNum(static_cast<double>(full_bytes))},
          {"delta_push_bytes", BenchJsonNum(static_cast<double>(delta_bytes))},
          {"delta_ratio", BenchJsonNum(delta_ratio)},
          {"delta_pass", BenchJsonBool(delta_pass)},
          {"storm_publishes", BenchJsonNum(100)},
          {"storm_installs", BenchJsonNum(static_cast<double>(storm_installs))},
          {"storm_rejected_pulls",
           BenchJsonNum(static_cast<double>(storm_failures))},
          {"storm_torn_pulls", BenchJsonNum(static_cast<double>(torn))},
          {"storm_pass", BenchJsonBool(storm_pass)},
          {"reference_s", BenchJsonNum(ref_s)},
          {"fleet_s", BenchJsonNum(fleet_s)},
          {"fanout_overhead_pct", BenchJsonNum(overhead_pct)},
          {"fanout_mismatches", BenchJsonNum(static_cast<double>(mismatches))},
          {"fanout_pass", BenchJsonBool(fanout_pass)},
          {"pass", BenchJsonBool(pass)},
      });
  std::filesystem::remove_all(snap_dir);
  std::cout << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
