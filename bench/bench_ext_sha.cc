// Extension — probing vs learning. The paper's premise (C2) is that large
// jobs are too expensive to probe repeatedly. A budget-aware prober
// (successive halving over datasize subsamples, src/tuning/sha_tuner.h)
// tests that premise directly: how much measurement budget does it take to
// match what LITE recommends for free?
#include <iostream>

#include "bench/bench_common.h"
#include "tuning/sha_tuner.h"

using namespace lite;
using namespace lite::bench;

int main() {
  ScaleProfile profile = GetScaleProfile();
  spark::SparkRunner runner;
  std::cout << "Extension — successive-halving prober vs LITE (scale="
            << profile.name << ")\n";

  LiteOptions lopts;
  lopts.corpus = MakeCorpusOptions(profile, {}, spark::ClusterEnv::AllClusters());
  ApplyLiteProfile(profile, &lopts);
  LiteSystem lite(&runner, lopts);
  lite.TrainOffline();

  spark::ClusterEnv env = spark::ClusterEnv::ClusterC();
  std::vector<double> budgets{1800, 7200, 4 * 7200};
  TablePrinter table({"Budget (s)", "SHA mean t (s)", "LITE mean t (s)",
                      "SHA mean overhead (s)", "LITE overhead (s)"});
  for (double budget : budgets) {
    double sha_sum = 0, lite_sum = 0, sha_ov = 0;
    for (const auto& app : spark::AppCatalog::All()) {
      TuningTask task;
      task.app = &app;
      task.data = app.MakeData(app.test_size_mb);
      task.env = env;
      ShaTuner sha(&runner);
      TuningResult rs = sha.Tune(task, budget);
      sha_sum += rs.best_seconds;
      sha_ov += rs.overhead_seconds;
      LiteSystem::Recommendation rec = lite.Recommend(app, task.data, env);
      lite_sum += runner.Measure(app, task.data, env, rec.config);
    }
    double n = static_cast<double>(spark::AppCatalog::Count());
    table.AddRow({TablePrinter::Fmt(budget, 0), TablePrinter::Fmt(sha_sum / n, 1),
                  TablePrinter::Fmt(lite_sum / n, 1),
                  TablePrinter::Fmt(sha_ov / n, 1), "<1"});
  }
  table.Print(std::cout, "Probing budget needed to match zero-overhead LITE");
  std::cout << "\nReading: SHA eventually wins with enough *hours of cluster "
               "time per application*; LITE reaches its quality instantly "
               "from knowledge learned on small data — the paper's C2 "
               "premise, quantified.\n";
  return 0;
}
