// Cold-start tuning: LITE recommends for an application it has *never*
// trained on. The held-out app's rare tokens and unique DAG operations map
// to out-of-vocabulary entries, yet the shared Spark-core code structure
// still carries enough signal (Section V-G).
//
//   $ ./build/examples/coldstart_tuning [AppNameOrAbbrev]
#include <iostream>

#include "lite/lite_system.h"

using namespace lite;

int main(int argc, char** argv) {
  std::string held_out = argc > 1 ? argv[1] : "TriangleCount";
  const spark::ApplicationSpec* app = spark::AppCatalog::Find(held_out);
  if (app == nullptr) {
    std::cerr << "unknown application: " << held_out << "\n";
    return 1;
  }

  spark::SparkRunner runner;
  LiteOptions options;
  options.corpus.clusters = {spark::ClusterEnv::ClusterA(),
                             spark::ClusterEnv::ClusterC()};
  options.corpus.configs_per_setting = 4;
  options.train.epochs = 15;
  // Leave the target application out of the training corpus entirely.
  for (const auto& a : spark::AppCatalog::All()) {
    if (a.name != app->name) options.corpus.apps.push_back(a.abbrev);
  }

  LiteSystem lite(&runner, options);
  std::cout << "Training LITE on " << options.corpus.apps.size()
            << " applications (holding out " << app->name << ")...\n";
  lite.TrainOffline();

  // Cold-start step: run the app once on the smallest dataset to obtain its
  // stage-level code and DAGs via instrumentation.
  spark::DataSpec smallest = app->MakeData(app->train_sizes_mb.front());
  double instr_cost = runner.Measure(*app, smallest, spark::ClusterEnv::ClusterA(),
                                     spark::KnobSpace::Spark16().DefaultConfig());
  spark::AppArtifacts art = runner.instrumenter().Instrument(*app);
  size_t oov_tokens = 0;
  for (const auto& stage : art.stages) {
    for (const auto& tok : stage.code_tokens) {
      if (lite.corpus().vocab->IdOf(tok) == TokenVocab::kOovId) ++oov_tokens;
    }
  }
  std::cout << "Instrumentation run on " << smallest.size_mb << "MB took "
            << instr_cost << "s (simulated); " << oov_tokens
            << " stage-code tokens are out-of-vocabulary for the model.\n";

  spark::DataSpec data = app->MakeData(app->test_size_mb);
  spark::ClusterEnv env = spark::ClusterEnv::ClusterC();
  LiteSystem::Recommendation rec = lite.Recommend(*app, data, env);
  double t_rec = runner.Measure(*app, data, env, rec.config);
  double t_def = runner.Measure(*app, data, env,
                                spark::KnobSpace::Spark16().DefaultConfig());
  std::cout << "\nNever-seen " << app->name << " (" << data.size_mb
            << "MB, cluster C):\n"
            << "  defaults:            " << t_def << "s\n"
            << "  LITE cold-start:     " << t_rec << "s\n"
            << "  speedup:             " << t_def / t_rec << "x\n";
  return 0;
}
