// Adaptive fleet tuning: LITE in production. A stream of large analytics
// jobs arrives; LITE recommends, the job runs, the observed execution time
// flows back as feedback, and every few jobs the model is fine-tuned with
// the adversarial Adaptive Model Update (Section IV-B). The example prints
// how target-domain prediction error falls as feedback accumulates.
//
//   $ ./build/examples/adaptive_fleet
#include <cmath>
#include <iostream>

#include "lite/lite_system.h"

using namespace lite;

int main() {
  spark::SparkRunner runner;
  LiteOptions options;
  options.corpus.clusters = {spark::ClusterEnv::ClusterA()};
  options.corpus.configs_per_setting = 4;
  options.train.epochs = 12;
  options.update_batch = 6;     // fine-tune after every 6 feedback batches.
  options.update.epochs = 3;
  LiteSystem lite(&runner, options);
  std::cout << "Offline training on small datasets (cluster A)...\n";
  lite.TrainOffline();

  spark::ClusterEnv prod = spark::ClusterEnv::ClusterC();
  CorpusBuilder builder(&runner);

  // A day's worth of production jobs: each app's large dataset, twice.
  std::vector<std::string> jobs;
  for (int round = 0; round < 2; ++round) {
    for (const auto& a : spark::AppCatalog::All()) jobs.push_back(a.abbrev);
  }

  double abs_err_sum = 0.0;
  int window = 0;
  int job_index = 0;
  for (const auto& name : jobs) {
    const auto* app = spark::AppCatalog::Find(name);
    spark::DataSpec data = app->MakeData(app->test_size_mb);

    LiteSystem::Recommendation rec = lite.Recommend(*app, data, prod);
    double actual = runner.Measure(*app, data, prod, rec.config);

    // Track |log-predicted - log-actual| to watch the domain gap shrink.
    abs_err_sum += std::fabs(std::log1p(rec.predicted_seconds) -
                             std::log1p(actual));
    ++window;
    ++job_index;

    // Feedback: LITE re-executes bookkeeping and may trigger an update.
    lite.CollectFeedback(*app, data, prod, rec.config);

    if (window == 10) {
      std::cout << "jobs " << (job_index - 9) << "-" << job_index
                << ": mean |log pred - log actual| = "
                << abs_err_sum / window
                << "  (pending feedback: " << lite.pending_feedback() << ")\n";
      abs_err_sum = 0.0;
      window = 0;
    }
  }
  if (window > 0) {
    std::cout << "final " << window << " jobs: mean |log pred - log actual| = "
              << abs_err_sum / window << "\n";
  }
  std::cout << "\nThe prediction gap on production-scale jobs narrows as the\n"
               "adversarial updates align the large-job (target) and\n"
               "small-job (source) representations.\n";
  return 0;
}
