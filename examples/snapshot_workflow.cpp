// Production deployment workflow: train once, snapshot the system to disk,
// then load it in a fresh "serving" process and recommend — no corpus
// collection or retraining on the serving side.
//
//   $ ./build/examples/snapshot_workflow [snapshot-dir]
#include <filesystem>
#include <iostream>

#include "lite/snapshot.h"

using namespace lite;

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/lite-snapshot-example";
  std::filesystem::create_directories(dir);
  spark::SparkRunner runner;

  // ---- "Training side": offline phase + snapshot.
  {
    LiteOptions options;
    options.corpus.clusters = {spark::ClusterEnv::ClusterA(),
                               spark::ClusterEnv::ClusterC()};
    options.corpus.configs_per_setting = 3;
    options.train.epochs = 10;
    options.ensemble_size = 2;
    options.num_candidates = 60;
    LiteSystem system(&runner, options);
    std::cout << "[trainer] offline phase...\n";
    system.TrainOffline();
    if (!SaveSnapshot(system, dir)) {
      std::cerr << "snapshot failed\n";
      return 1;
    }
    std::cout << "[trainer] snapshot (" << system.ensemble_size()
              << " models, vocab " << system.corpus().vocab->vocabulary_words()
              << " tokens) written to " << dir << "\n";
  }  // the training-side system is gone now.

  // ---- "Serving side": load and recommend.
  auto model = LoadedLiteModel::Load(dir, &runner);
  if (model == nullptr) {
    std::cerr << "load failed\n";
    return 1;
  }
  std::cout << "[server] snapshot loaded; serving recommendations:\n";
  spark::ClusterEnv prod = spark::ClusterEnv::ClusterC();
  const auto& space = spark::KnobSpace::Spark16();
  double total_default = 0, total_lite = 0;
  for (const char* name : {"TeraSort", "KMeans", "PageRank", "SVM"}) {
    const auto* app = spark::AppCatalog::Find(name);
    spark::DataSpec data = app->MakeData(app->test_size_mb);
    LiteSystem::Recommendation rec = model->Recommend(*app, data, prod);
    double t_rec = runner.Measure(*app, data, prod, rec.config);
    double t_def = runner.Measure(*app, data, prod, space.DefaultConfig());
    total_default += t_def;
    total_lite += t_rec;
    std::cout << "  " << name << ": " << t_def << "s (default) -> " << t_rec
              << "s (LITE, recommended in " << rec.recommend_wall_seconds
              << "s)\n";
  }
  std::cout << "[server] fleet speedup: " << total_default / total_lite
            << "x\n";
  return 0;
}
