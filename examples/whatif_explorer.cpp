// What-if explorer: sweep one knob for an application/datasize/cluster and
// print the response curve both from the simulator (ground truth) and from
// a trained NECS model (prediction) — a quick way to inspect how well the
// learned estimator captures a knob's effect.
//
//   $ ./build/examples/whatif_explorer [App] [knob-name]
//   $ ./build/examples/whatif_explorer KMeans spark.executor.memory
#include <iostream>

#include "lite/lite_system.h"

using namespace lite;

int main(int argc, char** argv) {
  std::string app_name = argc > 1 ? argv[1] : "KMeans";
  std::string knob_name = argc > 2 ? argv[2] : "spark.executor.cores";

  const spark::ApplicationSpec* app = spark::AppCatalog::Find(app_name);
  if (app == nullptr) {
    std::cerr << "unknown application: " << app_name << "\n";
    return 1;
  }
  const auto& space = spark::KnobSpace::Spark16();
  int knob = space.IndexOf(knob_name);
  if (knob < 0) {
    std::cerr << "unknown knob: " << knob_name << "\nknown knobs:\n";
    for (const auto& s : space.specs()) std::cerr << "  " << s.name << "\n";
    return 1;
  }

  spark::SparkRunner runner;
  LiteOptions options;
  options.corpus.clusters = {spark::ClusterEnv::ClusterA()};
  options.corpus.configs_per_setting = 5;
  options.train.epochs = 15;
  LiteSystem lite(&runner, options);
  std::cout << "Training NECS for the what-if model...\n";
  lite.TrainOffline();

  spark::DataSpec data = app->MakeData(app->validation_size_mb);
  spark::ClusterEnv env = spark::ClusterEnv::ClusterA();
  CorpusBuilder builder(&runner);

  const spark::KnobSpec& spec = space.spec(static_cast<size_t>(knob));
  std::cout << "\n" << app->name << " (" << data.size_mb << "MB, cluster "
            << env.name << ") — sweep of " << spec.name << "\n";
  std::cout << "value      simulated(s)   NECS-predicted(s)   bar\n";

  int steps = spec.type == spark::KnobType::kBool ? 2 : 8;
  double max_t = 0.0;
  std::vector<std::tuple<double, double, double>> rows;
  for (int i = 0; i < steps; ++i) {
    double v = spec.min_value +
               (spec.max_value - spec.min_value) * i / std::max(steps - 1, 1);
    spark::Config c = space.DefaultConfig();
    c[static_cast<size_t>(knob)] = v;
    c = space.Clamp(c);
    double t_true = runner.Measure(*app, data, env, c);
    CandidateEval ce = builder.FeaturizeCandidate(lite.corpus(), *app, data, env, c);
    double t_pred = lite.model()->PredictAppSeconds(ce);
    rows.emplace_back(c[static_cast<size_t>(knob)], t_true, t_pred);
    max_t = std::max({max_t, t_true});
  }
  for (const auto& [v, t_true, t_pred] : rows) {
    int bar = static_cast<int>(40.0 * t_true / max_t);
    printf("%-10.2f %-14.1f %-19.1f %s\n", v, t_true, t_pred,
           std::string(static_cast<size_t>(bar), '#').c_str());
  }
  std::cout << "\n(The simulator is the ground truth; NECS is what LITE uses\n"
               "to rank candidates without running them.)\n";
  return 0;
}
