// Quickstart: train LITE offline on small datasets, then get a knob
// recommendation for a large PageRank job and compare it with the Spark
// defaults.
//
//   $ ./build/examples/quickstart
#include <iostream>

#include "lite/lite_system.h"

using namespace lite;

int main() {
  // The simulated Spark deployment (see src/sparksim — it stands in for a
  // physical cluster; every Measure() call "runs" the job).
  spark::SparkRunner runner;

  // ---- Offline phase: collect stage-level instances on small datasets and
  // train the NECS estimator + adaptive candidate generator.
  LiteOptions options;
  options.corpus.clusters = {spark::ClusterEnv::ClusterA()};
  options.corpus.configs_per_setting = 4;  // sampled configs per (app, size).
  options.train.epochs = 15;
  options.num_candidates = 60;
  LiteSystem lite(&runner, options);
  std::cout << "Training LITE offline (small datasets, cluster A)...\n";
  lite.TrainOffline();
  std::cout << "  corpus: " << lite.corpus().instances.size()
            << " stage-level instances, vocabulary "
            << lite.corpus().vocab->vocabulary_words() << " tokens\n";

  // ---- Online phase: recommend knobs for a large job on the big cluster.
  const spark::ApplicationSpec* app = spark::AppCatalog::Find("PageRank");
  spark::DataSpec data = app->MakeData(app->test_size_mb);
  spark::ClusterEnv env = spark::ClusterEnv::ClusterC();
  LiteSystem::Recommendation rec = lite.Recommend(*app, data, env);

  std::cout << "\nRecommended configuration for PageRank ("
            << data.size_mb << "MB, cluster C), computed in "
            << rec.recommend_wall_seconds << "s:\n";
  const auto& space = spark::KnobSpace::Spark16();
  for (size_t d = 0; d < space.size(); ++d) {
    std::cout << "  " << space.spec(d).name << " = " << rec.config[d] << "\n";
  }

  double t_rec = runner.Measure(*app, data, env, rec.config);
  double t_def = runner.Measure(*app, data, env, space.DefaultConfig());
  std::cout << "\nExecution time with defaults:      " << t_def << "s\n"
            << "Execution time with LITE's config: " << t_rec << "s\n"
            << "Speedup: " << t_def / t_rec << "x\n";
  return 0;
}
